"""Cache geometry: sizes, associativity, and address slicing.

The machine model in Section 6 of the paper uses power-of-two caches
(32 KB 4-way L1s, a 2 MB 16-way shared L2, 64-byte blocks), so address
decomposition is exact bit slicing:

``address = | tag | set index | block offset |``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_power_of_two, check_positive


@dataclass(frozen=True)
class CacheGeometry:
    """Immutable description of a cache's shape.

    Parameters
    ----------
    size_bytes:
        Total data capacity in bytes (power of two).
    associativity:
        Ways per set. Must divide ``size_bytes / block_bytes``.
    block_bytes:
        Cache block (line) size in bytes (power of two).
    """

    size_bytes: int
    associativity: int
    block_bytes: int

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        check_power_of_two("block_bytes", self.block_bytes)
        check_positive("associativity", self.associativity)
        if self.block_bytes > self.size_bytes:
            raise ValueError(
                f"block_bytes ({self.block_bytes}) exceeds cache size "
                f"({self.size_bytes})"
            )
        if self.size_bytes % self.block_bytes != 0:
            raise ValueError(
                f"block_bytes ({self.block_bytes}) does not divide "
                f"size_bytes ({self.size_bytes})"
            )
        total_blocks = self.size_bytes // self.block_bytes
        if total_blocks % self.associativity != 0:
            raise ValueError(
                f"associativity {self.associativity} does not divide the "
                f"{total_blocks} blocks of a {self.size_bytes}-byte cache"
            )
        # The set count must be a power of two for exact bit slicing;
        # the *size* need not be (a 7-way partition view is not).
        check_power_of_two("num_sets", total_blocks // self.associativity)

    @classmethod
    def from_sets(
        cls, num_sets: int, associativity: int, block_bytes: int
    ) -> "CacheGeometry":
        """Build a geometry from set count, ways, and block size.

        Used for partition views: a 7-way slice of the 2048-set L2 is
        ``from_sets(2048, 7, 64)`` — not a power-of-two total size.
        """
        check_power_of_two("num_sets", num_sets)
        check_positive("associativity", associativity)
        check_power_of_two("block_bytes", block_bytes)
        return cls(
            size_bytes=num_sets * associativity * block_bytes,
            associativity=associativity,
            block_bytes=block_bytes,
        )

    @property
    def num_blocks(self) -> int:
        """Total number of cache blocks."""
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_blocks // self.associativity

    @property
    def offset_bits(self) -> int:
        """Number of block-offset bits."""
        return self.block_bytes.bit_length() - 1

    @property
    def index_bits(self) -> int:
        """Number of set-index bits."""
        return self.num_sets.bit_length() - 1

    @property
    def way_bytes(self) -> int:
        """Capacity of a single way across all sets.

        The paper expresses QoS cache requests in ways of the 16-way L2:
        one way of a 2 MB 16-way cache is 128 KB, so the paper's 896 KB
        request is exactly 7 ways.
        """
        return self.size_bytes // self.associativity

    # -- address slicing ---------------------------------------------------

    def block_address(self, address: int) -> int:
        """Return the block-aligned address (offset bits cleared)."""
        return address >> self.offset_bits

    def set_index(self, address: int) -> int:
        """Return the set index for ``address``."""
        return (address >> self.offset_bits) & (self.num_sets - 1)

    def tag(self, address: int) -> int:
        """Return the tag for ``address``."""
        return address >> (self.offset_bits + self.index_bits)

    def compose(self, tag: int, set_index: int) -> int:
        """Inverse of slicing: rebuild a block-aligned byte address."""
        if not 0 <= set_index < self.num_sets:
            raise ValueError(
                f"set_index {set_index} out of range [0, {self.num_sets})"
            )
        return ((tag << self.index_bits) | set_index) << self.offset_bits

    def ways_to_bytes(self, ways: int) -> int:
        """Convert a way count into bytes of capacity."""
        if not 0 <= ways <= self.associativity:
            raise ValueError(
                f"ways {ways} out of range [0, {self.associativity}]"
            )
        return ways * self.way_bytes

    def __str__(self) -> str:
        kb = self.size_bytes // 1024
        return (
            f"{kb}KB/{self.associativity}-way/{self.block_bytes}B "
            f"({self.num_sets} sets)"
        )
