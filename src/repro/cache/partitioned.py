"""Way-partitioned shared cache with QoS-aware victim selection.

This is the shared L2 of the machine model, implementing the fine-grain
per-set partitioning scheme of Section 4.1 of the paper (itself adapted
from Iyer and Nesbit et al.):

- Each core has a *target allocation counter*: the number of ways it
  should converge to in every set.
- Each set keeps a *per-set counter* per core: the number of blocks in
  that set currently owned by the core.
- On a miss, if the requesting core is under its target in the set, a
  victim is taken from an over-allocated core; otherwise the core
  replaces one of its own blocks.

The paper's QoS modification: when choosing among over-allocated cores,
blocks belonging to over-allocated *Strict or Elastic(X)* jobs are
evicted first, so those cores converge to their (possibly just reduced)
targets quickly and stolen capacity flows to Opportunistic jobs as fast
as possible.  That priority is expressed here by each core's
:class:`PartitionClass`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cache.basic import (
    HIT,
    AccessResult,
    BatchCounters,
    CacheLine,
    CoreSpec,
    WriteSpec,
    _broadcast_cores,
    _broadcast_writes,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import LruPolicy
from repro.cache.stats import CacheStats


class PartitionClass(enum.Enum):
    """Victim-selection priority class of a core's current job.

    The QoS layer maps execution modes onto these classes:
    Strict and Elastic(X) jobs are ``RESERVED``; Opportunistic jobs are
    ``BEST_EFFORT``.  Cores with no job are ``UNASSIGNED`` and their
    leftover blocks are the most preferred victims of all.
    """

    RESERVED = "reserved"
    BEST_EFFORT = "best_effort"
    UNASSIGNED = "unassigned"


@dataclass
class _CoreState:
    """Partitioning state for one core."""

    target_ways: int = 0
    partition_class: PartitionClass = PartitionClass.UNASSIGNED
    total_blocks: int = 0  # across all sets


class WayPartitionedCache:
    """Shared set-associative cache with per-set way partitioning."""

    def __init__(
        self,
        geometry: CacheGeometry,
        num_cores: int,
        *,
        name: str = "l2",
    ) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.geometry = geometry
        self.num_cores = num_cores
        self.name = name
        self.stats = CacheStats()
        self._lines: List[List[CacheLine]] = [
            [CacheLine() for _ in range(geometry.associativity)]
            for _ in range(geometry.num_sets)
        ]
        self._policies: List[LruPolicy] = [
            LruPolicy(geometry.associativity) for _ in range(geometry.num_sets)
        ]
        # per-set, per-core occupancy counters (Section 4.1).
        self._set_counters: List[List[int]] = [
            [0] * num_cores for _ in range(geometry.num_sets)
        ]
        self._cores: List[_CoreState] = [_CoreState() for _ in range(num_cores)]

    # -- partition management ------------------------------------------------

    def set_target(self, core_id: int, ways: int) -> None:
        """Set the target way allocation for ``core_id``.

        The sum of all targets must not exceed the associativity — the
        admission controller guarantees this invariant; the cache
        enforces it defensively.
        """
        self._check_core(core_id)
        if not 0 <= ways <= self.geometry.associativity:
            raise ValueError(
                f"target ways {ways} out of range "
                f"[0, {self.geometry.associativity}]"
            )
        proposed = sum(
            ways if cid == core_id else state.target_ways
            for cid, state in enumerate(self._cores)
        )
        if proposed > self.geometry.associativity:
            raise ValueError(
                f"total target ways would be {proposed}, exceeding "
                f"associativity {self.geometry.associativity}"
            )
        self._cores[core_id].target_ways = ways

    def set_class(self, core_id: int, partition_class: PartitionClass) -> None:
        """Set the victim-priority class for ``core_id``."""
        self._check_core(core_id)
        self._cores[core_id].partition_class = partition_class

    def target_of(self, core_id: int) -> int:
        """Current target way allocation of ``core_id``."""
        self._check_core(core_id)
        return self._cores[core_id].target_ways

    def class_of(self, core_id: int) -> PartitionClass:
        """Current partition class of ``core_id``."""
        self._check_core(core_id)
        return self._cores[core_id].partition_class

    def unallocated_ways(self) -> int:
        """Ways not covered by any core's target (external fragmentation)."""
        return self.geometry.associativity - sum(
            state.target_ways for state in self._cores
        )

    def release_core(self, core_id: int) -> None:
        """Mark ``core_id``'s job as departed.

        The target is zeroed and the class reset to ``UNASSIGNED``; the
        core's blocks stay resident but become the most preferred
        victims (modelling a real cache, where departed jobs' lines age
        out rather than being flushed).
        """
        self._check_core(core_id)
        self._cores[core_id].target_ways = 0
        self._cores[core_id].partition_class = PartitionClass.UNASSIGNED

    def flush_core(self, core_id: int) -> int:
        """Invalidate all blocks owned by ``core_id``; return the count."""
        self._check_core(core_id)
        flushed = 0
        for set_index, lines in enumerate(self._lines):
            for way, line in enumerate(lines):
                if line.valid and line.core_id == core_id:
                    line.valid = False
                    line.dirty = False
                    self._policies[set_index].invalidate(way)
                    self._set_counters[set_index][core_id] -= 1
                    flushed += 1
        self._cores[core_id].total_blocks -= flushed
        return flushed

    # -- occupancy inspection -------------------------------------------------

    def occupancy_of(self, core_id: int) -> int:
        """Total blocks owned by ``core_id`` across all sets."""
        self._check_core(core_id)
        return self._cores[core_id].total_blocks

    def set_occupancy(self, core_id: int, set_index: int) -> int:
        """Blocks owned by ``core_id`` in one set."""
        self._check_core(core_id)
        return self._set_counters[set_index][core_id]

    def allocation_error(self, core_id: int) -> float:
        """Mean absolute per-set deviation from the target allocation.

        Used by the partitioning ablation (DESIGN.md §5.1 / §5.3): the
        per-set scheme drives this toward zero over time, whereas the
        global-counter scheme leaves per-set occupancy unconstrained.
        """
        self._check_core(core_id)
        target = self._cores[core_id].target_ways
        total_error = sum(
            abs(counters[core_id] - target) for counters in self._set_counters
        )
        return total_error / self.geometry.num_sets

    def contains(self, address: int) -> bool:
        """Return True if the block holding ``address`` is resident."""
        set_index = self.geometry.set_index(address)
        tag = self.geometry.tag(address)
        return any(
            line.valid and line.tag == tag for line in self._lines[set_index]
        )

    # -- the access path --------------------------------------------------------

    def access(
        self, core_id: int, address: int, *, is_write: bool = False
    ) -> AccessResult:
        """Present one access from ``core_id``; fill on miss.

        On a hit the block's ownership is *not* transferred: in the
        machine model jobs do not share data, and keeping ownership
        stable keeps the per-set counters meaningful.
        """
        self._check_core(core_id)
        set_index = self.geometry.set_index(address)
        tag = self.geometry.tag(address)
        lines = self._lines[set_index]
        policy = self._policies[set_index]

        for way, line in enumerate(lines):
            if line.valid and line.tag == tag:
                policy.touch(way)
                if is_write:
                    line.dirty = True
                self.stats.record_access(core_id, hit=True)
                return HIT

        self.stats.record_access(core_id, hit=False)

        empty_way = next(
            (way for way, line in enumerate(lines) if not line.valid), None
        )
        if empty_way is not None:
            victim_way = empty_way
            evicted_address = None
            writeback = False
            victim_core: Optional[int] = None
        else:
            victim_way = self._choose_victim(core_id, set_index)
            victim_line = lines[victim_way]
            evicted_address = self.geometry.compose(victim_line.tag, set_index)
            writeback = victim_line.dirty
            victim_core = victim_line.core_id
            self.stats.record_eviction(
                victim_line.core_id, core_id, victim_line.dirty
            )
            self._set_counters[set_index][victim_line.core_id] -= 1
            self._cores[victim_line.core_id].total_blocks -= 1

        line = lines[victim_way]
        line.valid = True
        line.tag = tag
        line.dirty = is_write
        line.core_id = core_id
        policy.insert(victim_way)
        self._set_counters[set_index][core_id] += 1
        self._cores[core_id].total_blocks += 1
        self.stats.record_fill()
        return AccessResult(
            hit=False,
            evicted_address=evicted_address,
            writeback=writeback,
            victim_core=victim_core,
        )

    def access_block(
        self,
        addresses: Sequence[int],
        is_write: WriteSpec = False,
        core_ids: CoreSpec = 0,
    ) -> BatchCounters:
        """Present a batch of accesses; return the batch's counter deltas.

        Scalar ``is_write``/``core_ids`` broadcast over the batch.
        Equivalent to calling :meth:`access` per element; the fast
        backend overrides this with an allocation-free kernel.
        """
        hits = misses = evictions = writebacks = 0
        access = self.access
        for address, write, core_id in zip(
            addresses, _broadcast_writes(is_write), _broadcast_cores(core_ids)
        ):
            result = access(core_id, address, is_write=write)
            if result.hit:
                hits += 1
            else:
                misses += 1
                if result.evicted_address is not None:
                    evictions += 1
                if result.writeback:
                    writebacks += 1
        return BatchCounters(
            accesses=hits + misses,
            hits=hits,
            misses=misses,
            evictions=evictions,
            writebacks=writebacks,
        )

    # -- victim selection (Section 4.1) ---------------------------------------

    def _choose_victim(self, core_id: int, set_index: int) -> int:
        """Pick the way to evict for a miss by ``core_id`` in ``set_index``.

        Scope order:

        1. If the requester is at or above its target in this set, it
           replaces its own LRU block (the core "pays for" its own miss).
        2. Otherwise the requester is under-allocated and steals from,
           in priority order: blocks of ``UNASSIGNED`` cores (departed
           jobs), then over-allocated ``RESERVED`` cores, then
           over-allocated ``BEST_EFFORT`` cores.
        3. Fallbacks (sum of targets below associativity can leave no
           over-allocated core): the LRU ``BEST_EFFORT`` block, then the
           global LRU block.
        """
        counters = self._set_counters[set_index]
        state = self._cores[core_id]
        policy = self._policies[set_index]
        lines = self._lines[set_index]

        if counters[core_id] >= state.target_ways and counters[core_id] > 0:
            own = self._ways_of(set_index, lambda c: c == core_id)
            return policy.victim(own)

        scopes = (
            self._ways_of(
                set_index,
                lambda c: self._cores[c].partition_class
                is PartitionClass.UNASSIGNED,
            ),
            self._ways_of(
                set_index,
                lambda c: self._cores[c].partition_class
                is PartitionClass.RESERVED
                and counters[c] > self._cores[c].target_ways,
            ),
            self._ways_of(
                set_index,
                lambda c: self._cores[c].partition_class
                is PartitionClass.BEST_EFFORT
                and counters[c] > self._cores[c].target_ways,
            ),
            self._ways_of(
                set_index,
                lambda c: self._cores[c].partition_class
                is PartitionClass.BEST_EFFORT,
            ),
            [way for way, line in enumerate(lines) if line.valid],
        )
        for candidates in scopes:
            if candidates:
                return policy.victim(candidates)
        raise AssertionError("unreachable: full set has valid lines")

    def _ways_of(self, set_index: int, predicate) -> Sequence[int]:
        """Ways in ``set_index`` whose valid block's owner satisfies ``predicate``."""
        return [
            way
            for way, line in enumerate(self._lines[set_index])
            if line.valid and predicate(line.core_id)
        ]

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(
                f"core_id {core_id} out of range [0, {self.num_cores})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        targets = [state.target_ways for state in self._cores]
        return f"WayPartitionedCache({self.name}, {self.geometry}, targets={targets})"
