"""Flat-state fast cache-simulation kernel.

The reference implementations (:mod:`repro.cache.basic`,
:mod:`repro.cache.partitioned`) model each tag entry as a
:class:`~repro.cache.basic.CacheLine` object and each set's recency
order as a :class:`~repro.cache.replacement.LruPolicy` object, and they
allocate an :class:`~repro.cache.basic.AccessResult` per miss.  That is
the right shape for reading the paper's mechanisms off the code, but it
makes every trace access pay for attribute lookups, method dispatch and
object allocation — and the trace-driven loop is where every figure in
the reproduction spends its time.

This module re-implements both caches on flat state:

- One insertion-ordered ``dict`` per set, mapping ``tag`` to a packed
  ``(core_id << 1) | dirty`` integer.  The dict *is* the LRU stack:
  a hit pops and re-inserts its tag (moving it to the MRU end), so
  iteration order is LRU-first and the victim is ``next(iter(set))``.
  Only valid lines are present, so "fill an empty way first" becomes
  ``len(set) < associativity``.
- Flat integer counters (global and per-core ``[accesses, hits, misses,
  evictions_suffered, evictions_inflicted, writebacks]`` rows) instead
  of live :class:`~repro.cache.stats.CacheStats` mutation; a
  :class:`~repro.cache.stats.CacheStats` is materialised on demand by
  the ``stats`` property.
- A batch API :meth:`access_block` that drives the whole inner loop
  with locals bound once per batch and zero allocations on the hit
  path.

Equivalence to the reference implementations — identical
hit/miss/eviction/writeback/fill counters, identical victim choices,
access for access — is pinned by the differential property suite in
``tests/cache/test_fastsim_differential.py``.  The LRU victim rule
matches because a full set's valid lines are always all present in the
reference policy's recency stack, so "LRU among candidates" equals
"first candidate in LRU-first iteration order".  Backend selection
lives in :mod:`repro.cache.backend`.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cache.basic import (
    HIT,
    AccessResult,
    BatchCounters,
    CoreSpec,
    WriteSpec,
    _broadcast_cores,
    _broadcast_writes,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.partitioned import PartitionClass
from repro.cache.stats import CacheStats, CoreCounters

# Victim-priority classes as integers for the inner loop.
_RESERVED = 0
_BEST_EFFORT = 1
_UNASSIGNED = 2

_CLASS_TO_INT = {
    PartitionClass.RESERVED: _RESERVED,
    PartitionClass.BEST_EFFORT: _BEST_EFFORT,
    PartitionClass.UNASSIGNED: _UNASSIGNED,
}
_INT_TO_CLASS = {value: key for key, value in _CLASS_TO_INT.items()}


def _materialise_stats(
    totals: List[int], per_core: Dict[int, List[int]]
) -> CacheStats:
    """Build a CacheStats snapshot from flat counter state."""
    stats = CacheStats(
        accesses=totals[0],
        hits=totals[1],
        misses=totals[2],
        evictions=totals[3],
        writebacks=totals[4],
        fills=totals[5],
    )
    for core_id, row in per_core.items():
        stats.per_core[core_id] = CoreCounters(
            accesses=row[0],
            hits=row[1],
            misses=row[2],
            evictions_suffered=row[3],
            evictions_inflicted=row[4],
            writebacks=row[5],
        )
    return stats


class FastSetAssociativeCache:
    """Drop-in fast twin of :class:`~repro.cache.basic.SetAssociativeCache`.

    LRU only — the ablation policies (FIFO, Random) stay on the
    reference implementation, which the backend selector enforces.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        *,
        policy: str = "lru",
        name: str = "cache",
    ) -> None:
        if policy != "lru":
            raise ValueError(
                f"the fast backend implements LRU only, got policy "
                f"{policy!r}; use the reference backend for ablations"
            )
        self.geometry = geometry
        self.name = name
        self._sets: List[Dict[int, int]] = [
            {} for _ in range(geometry.num_sets)
        ]
        self._assoc = geometry.associativity
        self._offset_bits = geometry.offset_bits
        self._index_bits = geometry.index_bits
        self._index_mask = geometry.num_sets - 1
        # accesses, hits, misses, evictions, writebacks, fills
        self._totals = [0, 0, 0, 0, 0, 0]
        self._per_core: Dict[int, List[int]] = {}

    # -- stats -------------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Counters as a :class:`CacheStats` (fresh snapshot per call)."""
        return _materialise_stats(self._totals, self._per_core)

    def _core_row(self, core_id: int) -> List[int]:
        row = self._per_core.get(core_id)
        if row is None:
            if core_id < 0:
                raise ValueError(
                    f"the fast backend requires core_id >= 0, got {core_id}"
                )
            row = [0, 0, 0, 0, 0, 0]
            self._per_core[core_id] = row
        return row

    # -- main interface ----------------------------------------------------

    def access(
        self, address: int, *, is_write: bool = False, core_id: int = 0
    ) -> AccessResult:
        """Present one access; fill on miss; return the outcome."""
        block = address >> self._offset_bits
        set_index = block & self._index_mask
        tag = block >> self._index_bits
        lines = self._sets[set_index]
        totals = self._totals
        row = self._core_row(core_id)
        totals[0] += 1
        row[0] += 1
        meta = lines.pop(tag, -1)
        if meta >= 0:
            # Hit: move to MRU, take ownership, accumulate dirtiness.
            lines[tag] = (core_id << 1) | (meta & 1) | (1 if is_write else 0)
            totals[1] += 1
            row[1] += 1
            return HIT

        totals[2] += 1
        row[2] += 1
        evicted_address: Optional[int] = None
        writeback = False
        victim_core: Optional[int] = None
        if len(lines) >= self._assoc:
            victim_tag = next(iter(lines))
            vmeta = lines.pop(victim_tag)
            victim_core = vmeta >> 1
            writeback = (vmeta & 1) == 1
            evicted_address = (
                (victim_tag << self._index_bits) | set_index
            ) << self._offset_bits
            totals[3] += 1
            vrow = self._core_row(victim_core)
            vrow[3] += 1
            row[4] += 1
            if writeback:
                totals[4] += 1
                vrow[5] += 1
        lines[tag] = (core_id << 1) | (1 if is_write else 0)
        totals[5] += 1
        return AccessResult(
            hit=False,
            evicted_address=evicted_address,
            writeback=writeback,
            victim_core=victim_core,
        )

    def access_block(
        self,
        addresses: Sequence[int],
        is_write: WriteSpec = False,
        core_ids: CoreSpec = 0,
    ) -> BatchCounters:
        """Batch :meth:`access` with the inner loop run on flat state.

        Scalar ``is_write``/``core_ids`` broadcast over the batch.
        """
        offset_bits = self._offset_bits
        index_bits = self._index_bits
        index_mask = self._index_mask
        assoc = self._assoc
        sets = self._sets
        per_core = self._per_core
        hits = misses = evictions = writebacks = 0
        last_core = -1
        row: List[int] = []
        shifted_core = 0
        for address, write, core_id in zip(
            addresses, _broadcast_writes(is_write), _broadcast_cores(core_ids)
        ):
            if core_id != last_core:
                row = self._core_row(core_id)
                last_core = core_id
                shifted_core = core_id << 1
            row[0] += 1
            block = address >> offset_bits
            lines = sets[block & index_mask]
            tag = block >> index_bits
            meta = lines.pop(tag, -1)
            if meta >= 0:
                lines[tag] = shifted_core | (meta & 1) | write
                hits += 1
                row[1] += 1
                continue
            misses += 1
            row[2] += 1
            if len(lines) >= assoc:
                victim_tag = next(iter(lines))
                vmeta = lines.pop(victim_tag)
                evictions += 1
                victim_core = vmeta >> 1
                vrow = per_core.get(victim_core)
                if vrow is None:
                    vrow = self._core_row(victim_core)
                vrow[3] += 1
                row[4] += 1
                if vmeta & 1:
                    writebacks += 1
                    vrow[5] += 1
            lines[tag] = shifted_core | (1 if write else 0)
        totals = self._totals
        accesses = hits + misses
        totals[0] += accesses
        totals[1] += hits
        totals[2] += misses
        totals[3] += evictions
        totals[4] += writebacks
        totals[5] += misses  # every miss fills
        return BatchCounters(
            accesses=accesses,
            hits=hits,
            misses=misses,
            evictions=evictions,
            writebacks=writebacks,
        )

    # -- inspection and maintenance ----------------------------------------

    def contains(self, address: int) -> bool:
        """Return True if the block holding ``address`` is resident."""
        block = address >> self._offset_bits
        return (block >> self._index_bits) in self._sets[
            block & self._index_mask
        ]

    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return sum(len(lines) for lines in self._sets)

    def invalidate_address(self, address: int) -> bool:
        """Invalidate the block holding ``address``; True if present."""
        block = address >> self._offset_bits
        lines = self._sets[block & self._index_mask]
        return lines.pop(block >> self._index_bits, None) is not None

    def flush(self) -> int:
        """Invalidate everything; return the number of dirty lines dropped."""
        dirty = 0
        for lines in self._sets:
            for meta in lines.values():
                dirty += meta & 1
            lines.clear()
        return dirty

    def resident_blocks(self) -> List[int]:
        """Return block-aligned addresses of all resident blocks (sorted)."""
        addresses = []
        for set_index, lines in enumerate(self._sets):
            for tag in lines:
                addresses.append(
                    ((tag << self._index_bits) | set_index)
                    << self._offset_bits
                )
        return sorted(addresses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FastSetAssociativeCache({self.name}, {self.geometry})"


class FastWayPartitionedCache:
    """Drop-in fast twin of :class:`~repro.cache.partitioned.WayPartitionedCache`.

    Implements the Section 4.1 per-set partitioning scheme — per-set
    per-core occupancy counters and the QoS victim-priority order — on
    the same flat dict-per-set state as the basic fast cache.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        num_cores: int,
        *,
        name: str = "l2",
    ) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.geometry = geometry
        self.num_cores = num_cores
        self.name = name
        self._sets: List[Dict[int, int]] = [
            {} for _ in range(geometry.num_sets)
        ]
        self._set_counters: List[List[int]] = [
            [0] * num_cores for _ in range(geometry.num_sets)
        ]
        self._targets = [0] * num_cores
        self._classes = [_UNASSIGNED] * num_cores
        self._total_blocks = [0] * num_cores
        self._assoc = geometry.associativity
        self._offset_bits = geometry.offset_bits
        self._index_bits = geometry.index_bits
        self._index_mask = geometry.num_sets - 1
        self._totals = [0, 0, 0, 0, 0, 0]
        self._per_core: Dict[int, List[int]] = {}

    # -- stats -------------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Counters as a :class:`CacheStats` (fresh snapshot per call)."""
        return _materialise_stats(self._totals, self._per_core)

    def _core_row(self, core_id: int) -> List[int]:
        row = self._per_core.get(core_id)
        if row is None:
            row = [0, 0, 0, 0, 0, 0]
            self._per_core[core_id] = row
        return row

    # -- partition management ----------------------------------------------

    def set_target(self, core_id: int, ways: int) -> None:
        """Set the target way allocation for ``core_id``."""
        self._check_core(core_id)
        if not 0 <= ways <= self._assoc:
            raise ValueError(
                f"target ways {ways} out of range [0, {self._assoc}]"
            )
        proposed = sum(self._targets) - self._targets[core_id] + ways
        if proposed > self._assoc:
            raise ValueError(
                f"total target ways would be {proposed}, exceeding "
                f"associativity {self._assoc}"
            )
        self._targets[core_id] = ways

    def set_class(self, core_id: int, partition_class: PartitionClass) -> None:
        """Set the victim-priority class for ``core_id``."""
        self._check_core(core_id)
        self._classes[core_id] = _CLASS_TO_INT[partition_class]

    def target_of(self, core_id: int) -> int:
        """Current target way allocation of ``core_id``."""
        self._check_core(core_id)
        return self._targets[core_id]

    def class_of(self, core_id: int) -> PartitionClass:
        """Current partition class of ``core_id``."""
        self._check_core(core_id)
        return _INT_TO_CLASS[self._classes[core_id]]

    def unallocated_ways(self) -> int:
        """Ways not covered by any core's target."""
        return self._assoc - sum(self._targets)

    def release_core(self, core_id: int) -> None:
        """Mark ``core_id``'s job as departed (blocks stay, age out)."""
        self._check_core(core_id)
        self._targets[core_id] = 0
        self._classes[core_id] = _UNASSIGNED

    def flush_core(self, core_id: int) -> int:
        """Invalidate all blocks owned by ``core_id``; return the count."""
        self._check_core(core_id)
        flushed = 0
        for set_index, lines in enumerate(self._sets):
            owned = [
                tag for tag, meta in lines.items() if meta >> 1 == core_id
            ]
            if owned:
                for tag in owned:
                    del lines[tag]
                self._set_counters[set_index][core_id] -= len(owned)
                flushed += len(owned)
        self._total_blocks[core_id] -= flushed
        return flushed

    # -- occupancy inspection ----------------------------------------------

    def occupancy_of(self, core_id: int) -> int:
        """Total blocks owned by ``core_id`` across all sets."""
        self._check_core(core_id)
        return self._total_blocks[core_id]

    def set_occupancy(self, core_id: int, set_index: int) -> int:
        """Blocks owned by ``core_id`` in one set."""
        self._check_core(core_id)
        return self._set_counters[set_index][core_id]

    def allocation_error(self, core_id: int) -> float:
        """Mean absolute per-set deviation from the target allocation."""
        self._check_core(core_id)
        target = self._targets[core_id]
        total_error = sum(
            abs(counters[core_id] - target)
            for counters in self._set_counters
        )
        return total_error / self.geometry.num_sets

    def contains(self, address: int) -> bool:
        """Return True if the block holding ``address`` is resident."""
        block = address >> self._offset_bits
        return (block >> self._index_bits) in self._sets[
            block & self._index_mask
        ]

    # -- the access path ---------------------------------------------------

    def access(
        self, core_id: int, address: int, *, is_write: bool = False
    ) -> AccessResult:
        """Present one access from ``core_id``; fill on miss."""
        self._check_core(core_id)
        block = address >> self._offset_bits
        set_index = block & self._index_mask
        tag = block >> self._index_bits
        lines = self._sets[set_index]
        totals = self._totals
        row = self._core_row(core_id)
        totals[0] += 1
        row[0] += 1
        meta = lines.pop(tag, -1)
        if meta >= 0:
            # Hit: move to MRU; ownership is NOT transferred.
            lines[tag] = meta | (1 if is_write else 0)
            totals[1] += 1
            row[1] += 1
            return HIT

        totals[2] += 1
        row[2] += 1
        counters = self._set_counters[set_index]
        evicted_address: Optional[int] = None
        writeback = False
        victim_core: Optional[int] = None
        if len(lines) >= self._assoc:
            victim_tag = self._choose_victim_tag(core_id, lines, counters)
            vmeta = lines.pop(victim_tag)
            victim_core = vmeta >> 1
            writeback = (vmeta & 1) == 1
            evicted_address = (
                (victim_tag << self._index_bits) | set_index
            ) << self._offset_bits
            totals[3] += 1
            vrow = self._core_row(victim_core)
            vrow[3] += 1
            row[4] += 1
            if writeback:
                totals[4] += 1
                vrow[5] += 1
            counters[victim_core] -= 1
            self._total_blocks[victim_core] -= 1
        lines[tag] = (core_id << 1) | (1 if is_write else 0)
        counters[core_id] += 1
        self._total_blocks[core_id] += 1
        totals[5] += 1
        return AccessResult(
            hit=False,
            evicted_address=evicted_address,
            writeback=writeback,
            victim_core=victim_core,
        )

    def access_block(
        self,
        addresses: Sequence[int],
        is_write: WriteSpec = False,
        core_ids: CoreSpec = 0,
    ) -> BatchCounters:
        """Batch :meth:`access` with the inner loop run on flat state."""
        offset_bits = self._offset_bits
        index_bits = self._index_bits
        index_mask = self._index_mask
        assoc = self._assoc
        sets = self._sets
        set_counters = self._set_counters
        total_blocks = self._total_blocks
        hits = misses = evictions = writebacks = 0
        last_core = -1
        row: List[int] = []
        shifted_core = 0
        for address, write, core_id in zip(
            addresses, _broadcast_writes(is_write), _broadcast_cores(core_ids)
        ):
            if core_id != last_core:
                self._check_core(core_id)
                row = self._core_row(core_id)
                last_core = core_id
                shifted_core = core_id << 1
            row[0] += 1
            block = address >> offset_bits
            set_index = block & index_mask
            lines = sets[set_index]
            tag = block >> index_bits
            meta = lines.pop(tag, -1)
            if meta >= 0:
                lines[tag] = meta | write
                hits += 1
                row[1] += 1
                continue
            misses += 1
            row[2] += 1
            counters = set_counters[set_index]
            if len(lines) >= assoc:
                victim_tag = self._choose_victim_tag(core_id, lines, counters)
                vmeta = lines.pop(victim_tag)
                evictions += 1
                victim_core = vmeta >> 1
                vrow = self._core_row(victim_core)
                vrow[3] += 1
                row[4] += 1
                if vmeta & 1:
                    writebacks += 1
                    vrow[5] += 1
                counters[victim_core] -= 1
                total_blocks[victim_core] -= 1
            lines[tag] = shifted_core | (1 if write else 0)
            counters[core_id] += 1
            total_blocks[core_id] += 1
        totals = self._totals
        accesses = hits + misses
        totals[0] += accesses
        totals[1] += hits
        totals[2] += misses
        totals[3] += evictions
        totals[4] += writebacks
        totals[5] += misses
        return BatchCounters(
            accesses=accesses,
            hits=hits,
            misses=misses,
            evictions=evictions,
            writebacks=writebacks,
        )

    # -- victim selection (Section 4.1) ------------------------------------

    def _choose_victim_tag(
        self, core_id: int, lines: Dict[int, int], counters: List[int]
    ) -> int:
        """Pick the tag to evict from a full set for a miss by ``core_id``.

        Mirrors the reference
        :meth:`~repro.cache.partitioned.WayPartitionedCache._choose_victim`
        scope order exactly; "LRU block within a scope" becomes "first
        tag in LRU-first iteration order whose owner matches the scope".
        """
        targets = self._targets
        occupancy = counters[core_id]
        if occupancy >= targets[core_id] and occupancy > 0:
            for tag, meta in lines.items():
                if meta >> 1 == core_id:
                    return tag
            raise AssertionError(
                "unreachable: per-set counter says the core owns a block"
            )

        classes = self._classes
        reserved_over: Optional[int] = None
        best_effort_over: Optional[int] = None
        best_effort_any: Optional[int] = None
        for tag, meta in lines.items():
            owner = meta >> 1
            kind = classes[owner]
            if kind == _UNASSIGNED:
                return tag  # top priority: departed jobs' leftovers, LRU-first
            if kind == _RESERVED:
                if reserved_over is None and counters[owner] > targets[owner]:
                    reserved_over = tag
            else:  # _BEST_EFFORT
                if best_effort_any is None:
                    best_effort_any = tag
                if (
                    best_effort_over is None
                    and counters[owner] > targets[owner]
                ):
                    best_effort_over = tag
        if reserved_over is not None:
            return reserved_over
        if best_effort_over is not None:
            return best_effort_over
        if best_effort_any is not None:
            return best_effort_any
        return next(iter(lines))  # global LRU fallback

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(
                f"core_id {core_id} out of range [0, {self.num_cores})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FastWayPartitionedCache({self.name}, {self.geometry}, "
            f"targets={self._targets})"
        )


def chunked(iterable: Iterable[Tuple[int, bool]], size: int):
    """Yield lists of up to ``size`` items from ``iterable``.

    Helper for driving the batch API from a (possibly unbounded)
    ``(address, is_write)`` stream without materialising it whole.
    """
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    iterator = iter(iterable)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk
