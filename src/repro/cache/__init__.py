"""Trace-driven cache hierarchy substrate.

This package implements every cache mechanism the paper's QoS framework
relies on, from scratch:

- :mod:`repro.cache.geometry` — cache geometry and address slicing.
- :mod:`repro.cache.replacement` — replacement policies (LRU and
  alternatives used by ablations).
- :mod:`repro.cache.stats` — hit/miss/eviction statistics, per-core.
- :mod:`repro.cache.basic` — a plain set-associative cache (the private
  L1s of the machine model).
- :mod:`repro.cache.partitioned` — the way-partitioned shared L2 with
  per-set allocation counters and QoS-aware victim selection
  (Section 4.1 of the paper).
- :mod:`repro.cache.global_partition` — the coarse global-counter
  partitioning alternative the paper describes and rejects (kept as an
  ablation baseline).
- :mod:`repro.cache.shadow` — duplicate (shadow) tag arrays with set
  sampling, the microarchitecture support for resource stealing
  (Section 4.3).
- :mod:`repro.cache.fastsim` — flat-state fast twins of the basic and
  partitioned caches (LRU only), counter-identical to the reference
  implementations but without per-access object allocation.
- :mod:`repro.cache.backend` — the ``reference``/``fast`` backend
  selector all construction sites go through.
"""

from repro.cache.backend import (
    BACKENDS,
    default_backend,
    make_cache,
    make_partitioned_cache,
    resolve_backend,
    set_default_backend,
)
from repro.cache.basic import (
    HIT,
    AccessResult,
    BatchCounters,
    SetAssociativeCache,
)
from repro.cache.fastsim import (
    FastSetAssociativeCache,
    FastWayPartitionedCache,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.global_partition import GlobalPartitionedCache
from repro.cache.partitioned import PartitionClass, WayPartitionedCache
from repro.cache.replacement import FifoPolicy, LruPolicy, RandomPolicy
from repro.cache.shadow import ShadowTagArray
from repro.cache.stats import CacheStats

__all__ = [
    "CacheGeometry",
    "SetAssociativeCache",
    "FastSetAssociativeCache",
    "FastWayPartitionedCache",
    "AccessResult",
    "BatchCounters",
    "HIT",
    "WayPartitionedCache",
    "PartitionClass",
    "GlobalPartitionedCache",
    "ShadowTagArray",
    "CacheStats",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "BACKENDS",
    "default_backend",
    "set_default_backend",
    "resolve_backend",
    "make_cache",
    "make_partitioned_cache",
]
