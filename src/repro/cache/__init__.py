"""Trace-driven cache hierarchy substrate.

This package implements every cache mechanism the paper's QoS framework
relies on, from scratch:

- :mod:`repro.cache.geometry` — cache geometry and address slicing.
- :mod:`repro.cache.replacement` — replacement policies (LRU and
  alternatives used by ablations).
- :mod:`repro.cache.stats` — hit/miss/eviction statistics, per-core.
- :mod:`repro.cache.basic` — a plain set-associative cache (the private
  L1s of the machine model).
- :mod:`repro.cache.partitioned` — the way-partitioned shared L2 with
  per-set allocation counters and QoS-aware victim selection
  (Section 4.1 of the paper).
- :mod:`repro.cache.global_partition` — the coarse global-counter
  partitioning alternative the paper describes and rejects (kept as an
  ablation baseline).
- :mod:`repro.cache.shadow` — duplicate (shadow) tag arrays with set
  sampling, the microarchitecture support for resource stealing
  (Section 4.3).
"""

from repro.cache.basic import AccessResult, SetAssociativeCache
from repro.cache.geometry import CacheGeometry
from repro.cache.global_partition import GlobalPartitionedCache
from repro.cache.partitioned import PartitionClass, WayPartitionedCache
from repro.cache.replacement import FifoPolicy, LruPolicy, RandomPolicy
from repro.cache.shadow import ShadowTagArray
from repro.cache.stats import CacheStats

__all__ = [
    "CacheGeometry",
    "SetAssociativeCache",
    "AccessResult",
    "WayPartitionedCache",
    "PartitionClass",
    "GlobalPartitionedCache",
    "ShadowTagArray",
    "CacheStats",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
]
