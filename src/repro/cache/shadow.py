"""Duplicate (shadow) tag arrays with set sampling.

Section 4.3 of the paper: to bound the miss-rate increase that resource
stealing inflicts on an Elastic(X) job, the hardware keeps a *duplicate
tag array* that tracks what the job's cache partition would contain had
no ways been stolen.  Both tag arrays observe the same access stream, so
only their miss counts differ; when cumulative misses in the main tags
exceed the duplicate tags' by X%, stealing is cancelled.

To keep storage low the duplicate tags use *set sampling*: only every
``sample_period``-th set is duplicated (the paper samples every 8th set,
covering 1/8 of sets) and the sampled sets' behaviour stands in for the
whole cache.  For an apples-to-apples comparison this module counts the
main cache's misses on the *same sampled sets*, so the comparison is
exact on the sample rather than mixing sampled and unsampled traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.geometry import CacheGeometry
from repro.util.validation import check_positive


class ShadowTagArray:
    """Sampled duplicate tags for one core's baseline partition.

    Parameters
    ----------
    geometry:
        Geometry of the main shared cache being shadowed.
    baseline_ways:
        The job's original (pre-stealing) way allocation; the shadow
        simulates an LRU partition of exactly this many ways per set.
    sample_period:
        Every ``sample_period``-th set is duplicated (8 in the paper).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        baseline_ways: int,
        *,
        sample_period: int = 8,
    ) -> None:
        check_positive("sample_period", sample_period)
        if not 1 <= baseline_ways <= geometry.associativity:
            raise ValueError(
                f"baseline_ways {baseline_ways} out of range "
                f"[1, {geometry.associativity}]"
            )
        if sample_period > geometry.num_sets:
            raise ValueError(
                f"sample_period {sample_period} exceeds the number of sets "
                f"({geometry.num_sets})"
            )
        self.geometry = geometry
        self.baseline_ways = baseline_ways
        self.sample_period = sample_period
        # MRU-first tag lists, only for sampled sets.
        self._tags: Dict[int, List[int]] = {
            set_index: []
            for set_index in range(0, geometry.num_sets, sample_period)
        }
        self.sampled_accesses = 0
        self.shadow_misses = 0
        self.main_misses = 0
        # Lifetime count of ECC upsets injected into this array; not a
        # per-job statistic, so :meth:`reset` leaves it alone.
        self.ecc_errors = 0

    @property
    def num_sampled_sets(self) -> int:
        """How many sets the duplicate tags cover."""
        return len(self._tags)

    def is_sampled(self, address: int) -> bool:
        """Return True if ``address`` maps to a duplicated set."""
        return self.geometry.set_index(address) in self._tags

    # -- observation --------------------------------------------------------

    def observe(self, address: int, main_hit: bool) -> Optional[bool]:
        """Present one main-cache access by the shadowed core.

        ``main_hit`` is the outcome the access had in the *main* tags.
        Returns the shadow outcome (True = shadow hit) for sampled sets,
        or ``None`` when the set is not duplicated (the access is then
        ignored entirely).
        """
        set_index = self.geometry.set_index(address)
        tags = self._tags.get(set_index)
        if tags is None:
            return None
        self.sampled_accesses += 1
        if not main_hit:
            self.main_misses += 1

        tag = self.geometry.tag(address)
        if tag in tags:
            tags.remove(tag)
            tags.insert(0, tag)
            return True
        self.shadow_misses += 1
        tags.insert(0, tag)
        if len(tags) > self.baseline_ways:
            tags.pop()
        return False

    # -- fault injection -------------------------------------------------------

    def inject_ecc_error(self) -> None:
        """Model an uncorrectable ECC upset in the duplicate tags.

        The duplicate array is bookkeeping, not architectural state, so
        nothing is lost except trust: the shadow's contents and its
        accumulated miss comparison can no longer stand in for the
        unstolen baseline.  The array discards its tags and counters and
        begins a fresh observation; the *caller* (the stealing
        controller via
        :meth:`~repro.core.stealing.ResourceStealingController.on_ecc_error`)
        must react conservatively, since the job may already have been
        slowed beyond its slack without the evidence to show it.
        """
        self.ecc_errors += 1
        for tags in self._tags.values():
            tags.clear()
        self.sampled_accesses = 0
        self.shadow_misses = 0
        self.main_misses = 0

    # -- the stealing criterion ----------------------------------------------

    def miss_increase_fraction(self) -> float:
        """Cumulative extra misses of the main tags relative to the shadow.

        ``(main_misses - shadow_misses) / shadow_misses`` on the sampled
        sets, since the start of observation.  The paper compares this
        against the Elastic job's slack X.  Returns 0.0 before any
        shadow miss (nothing to normalise against), and never returns a
        negative value — the main cache can only do as well as or worse
        than its own unstolen baseline, but sampling noise could
        otherwise produce a small negative.
        """
        if self.shadow_misses == 0:
            return 0.0
        increase = (self.main_misses - self.shadow_misses) / self.shadow_misses
        return max(0.0, increase)

    def exceeds_slack(self, slack_fraction: float) -> bool:
        """True if the cumulative miss increase meets or exceeds ``slack_fraction``.

        This is the cancel condition of Section 4.3: when it fires, all
        stolen ways must be returned to the Elastic(X) job.
        """
        if slack_fraction < 0:
            raise ValueError(
                f"slack_fraction must be non-negative, got {slack_fraction}"
            )
        if self.shadow_misses == 0:
            return False
        return self.miss_increase_fraction() >= slack_fraction

    def reset(self, baseline_ways: Optional[int] = None) -> None:
        """Clear all tags and counters for a new Elastic(X) job.

        Optionally changes the baseline partition size (a new job may
        have requested a different allocation).
        """
        if baseline_ways is not None:
            if not 1 <= baseline_ways <= self.geometry.associativity:
                raise ValueError(
                    f"baseline_ways {baseline_ways} out of range "
                    f"[1, {self.geometry.associativity}]"
                )
            self.baseline_ways = baseline_ways
        for tags in self._tags.values():
            tags.clear()
        self.sampled_accesses = 0
        self.shadow_misses = 0
        self.main_misses = 0

    def storage_overhead_fraction(self) -> float:
        """Tag storage of the shadow relative to the full main tag array.

        With every 8th set sampled and ``baseline_ways`` of 16 ways
        duplicated, this is at most 1/8 — the economy that motivates set
        sampling in the paper.
        """
        shadow_entries = self.num_sampled_sets * self.baseline_ways
        main_entries = self.geometry.num_sets * self.geometry.associativity
        return shadow_entries / main_entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShadowTagArray(ways={self.baseline_ways}, "
            f"period={self.sample_period}, sets={self.num_sampled_sets}, "
            f"main_misses={self.main_misses}, shadow_misses={self.shadow_misses})"
        )
