"""Global-counter cache partitioning (the rejected alternative).

Section 4.1 of the paper describes a coarser partitioning scheme, after
Suh et al.'s modified LRU: a single *global* counter per core tracks how
many blocks the core holds across the whole cache, compared against a
global target.  The per-set distribution of a core's blocks is then
unconstrained, which makes the same job's performance vary run-to-run
depending on co-runners — exactly why the paper rejects the scheme in a
QoS setting.  It is implemented here as the baseline for the
partitioning ablation (DESIGN.md §5.1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.basic import HIT, AccessResult, CacheLine
from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import LruPolicy
from repro.cache.stats import CacheStats


class GlobalPartitionedCache:
    """Shared cache partitioned by global per-core block counters."""

    def __init__(
        self,
        geometry: CacheGeometry,
        num_cores: int,
        *,
        name: str = "l2-global",
    ) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.geometry = geometry
        self.num_cores = num_cores
        self.name = name
        self.stats = CacheStats()
        self._lines: List[List[CacheLine]] = [
            [CacheLine() for _ in range(geometry.associativity)]
            for _ in range(geometry.num_sets)
        ]
        self._policies: List[LruPolicy] = [
            LruPolicy(geometry.associativity) for _ in range(geometry.num_sets)
        ]
        # Global (whole-cache) occupancy and target, in blocks.
        self._occupancy: List[int] = [0] * num_cores
        self._target_blocks: List[int] = [0] * num_cores

    # -- partition management --------------------------------------------------

    def set_target(self, core_id: int, ways: int) -> None:
        """Set ``core_id``'s target to ``ways`` worth of blocks cache-wide."""
        self._check_core(core_id)
        if not 0 <= ways <= self.geometry.associativity:
            raise ValueError(
                f"target ways {ways} out of range "
                f"[0, {self.geometry.associativity}]"
            )
        self._target_blocks[core_id] = ways * self.geometry.num_sets

    def target_blocks_of(self, core_id: int) -> int:
        """Global block target of ``core_id``."""
        self._check_core(core_id)
        return self._target_blocks[core_id]

    def occupancy_of(self, core_id: int) -> int:
        """Blocks currently held by ``core_id`` cache-wide."""
        self._check_core(core_id)
        return self._occupancy[core_id]

    def set_occupancy(self, core_id: int, set_index: int) -> int:
        """Blocks held by ``core_id`` in one set (unconstrained here)."""
        self._check_core(core_id)
        return sum(
            1
            for line in self._lines[set_index]
            if line.valid and line.core_id == core_id
        )

    def allocation_error(self, core_id: int) -> float:
        """Mean absolute per-set deviation from a uniform target spread.

        The global scheme only constrains the cache-wide total, so this
        error stays large — the quantity the partitioning ablation
        contrasts against :meth:`WayPartitionedCache.allocation_error`.
        """
        self._check_core(core_id)
        per_set_target = self._target_blocks[core_id] / self.geometry.num_sets
        total_error = 0.0
        for set_index in range(self.geometry.num_sets):
            total_error += abs(
                self.set_occupancy(core_id, set_index) - per_set_target
            )
        return total_error / self.geometry.num_sets

    # -- the access path ----------------------------------------------------------

    def access(
        self, core_id: int, address: int, *, is_write: bool = False
    ) -> AccessResult:
        """Present one access from ``core_id``; fill on miss."""
        self._check_core(core_id)
        set_index = self.geometry.set_index(address)
        tag = self.geometry.tag(address)
        lines = self._lines[set_index]
        policy = self._policies[set_index]

        for way, line in enumerate(lines):
            if line.valid and line.tag == tag:
                policy.touch(way)
                if is_write:
                    line.dirty = True
                self.stats.record_access(core_id, hit=True)
                return HIT

        self.stats.record_access(core_id, hit=False)

        empty_way = next(
            (way for way, line in enumerate(lines) if not line.valid), None
        )
        if empty_way is not None:
            victim_way = empty_way
            evicted_address = None
            writeback = False
            victim_core: Optional[int] = None
        else:
            victim_way = self._choose_victim(core_id, set_index)
            victim_line = lines[victim_way]
            evicted_address = self.geometry.compose(victim_line.tag, set_index)
            writeback = victim_line.dirty
            victim_core = victim_line.core_id
            self.stats.record_eviction(
                victim_line.core_id, core_id, victim_line.dirty
            )
            self._occupancy[victim_line.core_id] -= 1

        line = lines[victim_way]
        line.valid = True
        line.tag = tag
        line.dirty = is_write
        line.core_id = core_id
        policy.insert(victim_way)
        self._occupancy[core_id] += 1
        self.stats.record_fill()
        return AccessResult(
            hit=False,
            evicted_address=evicted_address,
            writeback=writeback,
            victim_core=victim_core,
        )

    def _choose_victim(self, core_id: int, set_index: int) -> int:
        """Suh-style modified LRU guided by *global* counters.

        If the requester is under its global target, the victim is the
        LRU block in this set belonging to any globally over-allocated
        core; otherwise the requester's own LRU block in the set.  Both
        scopes fall back to global LRU when empty in this set — the very
        looseness that makes per-set occupancy drift.
        """
        lines = self._lines[set_index]
        policy = self._policies[set_index]
        under_target = self._occupancy[core_id] < self._target_blocks[core_id]

        if under_target:
            over_allocated = [
                way
                for way, line in enumerate(lines)
                if line.valid
                and self._occupancy[line.core_id]
                > self._target_blocks[line.core_id]
            ]
            if over_allocated:
                return policy.victim(over_allocated)
        else:
            own = [
                way
                for way, line in enumerate(lines)
                if line.valid and line.core_id == core_id
            ]
            if own:
                return policy.victim(own)
        valid = [way for way, line in enumerate(lines) if line.valid]
        return policy.victim(valid)

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(
                f"core_id {core_id} out of range [0, {self.num_cores})"
            )
