"""A plain set-associative, write-back cache.

This models the private L1 instruction and data caches of the machine
model (32 KB, 4-way, 64-byte blocks, LRU, write-back, Section 6), and
also serves as the un-partitioned L2 for the EqualPart-style baselines
that give each core a private slice.

The cache is *trace-driven*: callers present block addresses and the
cache returns hit/miss plus any eviction, without modelling data values.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Iterable, List, Optional, Sequence, Union

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats


class CacheLine:
    """One tag-array entry.

    A plain ``__slots__`` class rather than a dataclass: a 2 MB L2 has
    32k lines and every trace access reads several of their attributes,
    so the per-instance dict is pure overhead.
    """

    __slots__ = ("valid", "tag", "dirty", "core_id")

    def __init__(
        self,
        valid: bool = False,
        tag: int = 0,
        dirty: bool = False,
        core_id: int = -1,
    ) -> None:
        self.valid = valid
        self.tag = tag
        self.dirty = dirty
        self.core_id = core_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(valid={self.valid}, tag={self.tag:#x}, "
            f"dirty={self.dirty}, core_id={self.core_id})"
        )


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    Attributes
    ----------
    hit:
        True if the block was present.
    evicted_address:
        Block-aligned byte address of the victim, or ``None`` if the
        fill used an empty way (or the access hit).
    writeback:
        True if the victim was dirty (write-back traffic to the next
        level).
    victim_core:
        Core that owned the victim block, or ``None``.
    """

    hit: bool
    evicted_address: Optional[int] = None
    writeback: bool = False
    victim_core: Optional[int] = None


#: Shared result for the (overwhelmingly common) hit outcome.  Hits carry
#: no victim information, so every hit is observationally identical and
#: all access paths return this one frozen instance instead of
#: allocating a fresh ``AccessResult`` per hit.
HIT = AccessResult(hit=True)


@dataclass(frozen=True)
class BatchCounters:
    """Counter deltas accumulated over one :meth:`access_block` call."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses / accesses over the batch (0.0 for an empty batch)."""
        return self.misses / self.accesses if self.accesses else 0.0


WriteSpec = Union[bool, Sequence[bool]]
CoreSpec = Union[int, Sequence[int]]


def _broadcast_writes(is_write: WriteSpec) -> Iterable[bool]:
    if isinstance(is_write, (bool, int)):
        return repeat(bool(is_write))
    return is_write


def _broadcast_cores(core_ids: CoreSpec) -> Iterable[int]:
    if isinstance(core_ids, int):
        return repeat(core_ids)
    return core_ids


class SetAssociativeCache:
    """Single-level set-associative cache with a pluggable policy."""

    def __init__(
        self,
        geometry: CacheGeometry,
        *,
        policy: str = "lru",
        name: str = "cache",
    ) -> None:
        self.geometry = geometry
        self.name = name
        self.stats = CacheStats()
        self._lines: List[List[CacheLine]] = [
            [CacheLine() for _ in range(geometry.associativity)]
            for _ in range(geometry.num_sets)
        ]
        self._policies: List[ReplacementPolicy] = [
            make_policy(policy, geometry.associativity)
            for _ in range(geometry.num_sets)
        ]

    # -- main interface ----------------------------------------------------

    def access(self, address: int, *, is_write: bool = False, core_id: int = 0) -> AccessResult:
        """Present one access; fill on miss; return the outcome."""
        set_index = self.geometry.set_index(address)
        tag = self.geometry.tag(address)
        lines = self._lines[set_index]
        policy = self._policies[set_index]

        for way, line in enumerate(lines):
            if line.valid and line.tag == tag:
                policy.touch(way)
                if is_write:
                    line.dirty = True
                line.core_id = core_id
                self.stats.record_access(core_id, hit=True)
                return HIT

        # Miss: fill, evicting if the set is full.
        self.stats.record_access(core_id, hit=False)
        empty_way = next(
            (way for way, line in enumerate(lines) if not line.valid), None
        )
        if empty_way is not None:
            victim_way = empty_way
            evicted_address = None
            writeback = False
            victim_core: Optional[int] = None
        else:
            victim_way = policy.victim(range(len(lines)))
            victim_line = lines[victim_way]
            evicted_address = self.geometry.compose(victim_line.tag, set_index)
            writeback = victim_line.dirty
            victim_core = victim_line.core_id
            self.stats.record_eviction(victim_line.core_id, core_id, victim_line.dirty)

        line = lines[victim_way]
        line.valid = True
        line.tag = tag
        line.dirty = is_write
        line.core_id = core_id
        policy.insert(victim_way)
        self.stats.record_fill()
        return AccessResult(
            hit=False,
            evicted_address=evicted_address,
            writeback=writeback,
            victim_core=victim_core,
        )

    def access_block(
        self,
        addresses: Sequence[int],
        is_write: WriteSpec = False,
        core_ids: CoreSpec = 0,
    ) -> BatchCounters:
        """Present a batch of accesses; return the batch's counter deltas.

        ``is_write`` and ``core_ids`` may be scalars (broadcast over the
        batch) or per-access sequences.  The batch is exactly equivalent
        to calling :meth:`access` once per element; the fast backend
        overrides this with an allocation-free kernel.
        """
        hits = misses = evictions = writebacks = 0
        access = self.access
        for address, write, core_id in zip(
            addresses, _broadcast_writes(is_write), _broadcast_cores(core_ids)
        ):
            result = access(address, is_write=write, core_id=core_id)
            if result.hit:
                hits += 1
            else:
                misses += 1
                if result.evicted_address is not None:
                    evictions += 1
                if result.writeback:
                    writebacks += 1
        return BatchCounters(
            accesses=hits + misses,
            hits=hits,
            misses=misses,
            evictions=evictions,
            writebacks=writebacks,
        )

    # -- inspection and maintenance -----------------------------------------

    def contains(self, address: int) -> bool:
        """Return True if the block holding ``address`` is resident."""
        set_index = self.geometry.set_index(address)
        tag = self.geometry.tag(address)
        return any(
            line.valid and line.tag == tag for line in self._lines[set_index]
        )

    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return sum(
            1 for lines in self._lines for line in lines if line.valid
        )

    def invalidate_address(self, address: int) -> bool:
        """Invalidate the block holding ``address``; True if it was present."""
        set_index = self.geometry.set_index(address)
        tag = self.geometry.tag(address)
        for way, line in enumerate(self._lines[set_index]):
            if line.valid and line.tag == tag:
                line.valid = False
                line.dirty = False
                self._policies[set_index].invalidate(way)
                return True
        return False

    def flush(self) -> int:
        """Invalidate everything; return the number of dirty lines dropped."""
        dirty = 0
        for set_index, lines in enumerate(self._lines):
            for way, line in enumerate(lines):
                if line.valid:
                    if line.dirty:
                        dirty += 1
                    line.valid = False
                    line.dirty = False
                    self._policies[set_index].invalidate(way)
        return dirty

    def resident_blocks(self) -> List[int]:
        """Return block-aligned addresses of all resident blocks (sorted)."""
        addresses = []
        for set_index, lines in enumerate(self._lines):
            for line in lines:
                if line.valid:
                    addresses.append(self.geometry.compose(line.tag, set_index))
        return sorted(addresses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SetAssociativeCache({self.name}, {self.geometry})"
