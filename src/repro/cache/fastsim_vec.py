"""Vectorised (numpy) batch LRU cache-simulation kernel.

:mod:`repro.cache.fastsim` removed the per-access object overhead of
the reference cache but still walks the trace one access at a time in
Python bytecode.  This module vectorises the batch path: the cache
state lives in numpy arrays and :meth:`access_block` processes whole
address batches with array operations.

The obstacle to vectorising an LRU cache is that accesses to the *same
set* are sequentially dependent (each one can change the recency order
and contents the next one observes), while accesses to *different*
sets are independent.  The kernel exploits exactly that split with a
**lockstep-over-sets** schedule:

1. Stable-sort the batch by set index and compute each access's rank
   within its set's group.  Rank ``r`` accesses form *round* ``r``.
2. Within one round every set appears at most once, so the whole round
   is data-parallel: gather the touched sets' tag/meta/recency rows,
   match tags, apply hits and misses with scatter stores, and advance.
3. Rounds execute in order, so the ``k``-th access to any given set
   observes exactly the state left by its ``k-1`` predecessors —
   access-for-access the same schedule the scalar kernel runs, merely
   regrouped across independent sets.

Recency is a per-line integer stamp from a monotonically increasing
clock (one tick per round, plus one per scalar access).  Each set gets
at most one new stamp per round, so stamps are unique within a set and
``argmin(stamp)`` is exactly the dict-ordered kernel's "first tag in
LRU-first iteration order".  All counters are order-independent sums
folded once per batch, so totals and per-core rows are byte-identical
to the reference — pinned, like the ``fast`` backend, by
``tests/cache/test_fastsim_differential.py``.

State layout (per line, shaped ``(num_sets, associativity)``):

- ``_tags`` — the block tag, or ``-1`` for an empty way.  Real tags
  are non-negative, so the sentinel can never match and "valid" needs
  no separate array on the hot path.
- ``_meta`` — ``(owner_core << 1) | dirty``, the same packing the flat
  dict kernel uses.
- ``_stamp`` — last-touch clock value (the LRU order).
- ``_fill`` (per set) — number of occupied ways.  Ways ``[0, fill)``
  are occupied and ``[fill, assoc)`` empty; :meth:`invalidate_address`
  compacts the hole to preserve the invariant (way positions carry no
  observable meaning — recency lives in the stamps).

The round width is bounded by the number of *distinct sets* the batch
touches, so vectorisation pays off on wide caches (hundreds+ of sets)
and loses to the flat dict kernel on narrow ones, where rounds are a
few dozen lanes and per-round numpy dispatch dominates.  The backend
selector keeps ``fast`` the default; ``fast-vec`` is opt-in.

Scope: the basic set-associative LRU cache only.  The way-partitioned
QoS cache's victim scan is priority-ordered over classes and per-set
occupancy counters — sequential by design — so the ``fast-vec``
backend delegates partitioned caches to
:class:`~repro.cache.fastsim.FastWayPartitionedCache` (see
:mod:`repro.cache.backend`).

numpy is an optional dependency (the ``[vec]`` extra); importing this
module without it is fine, constructing the cache is not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

try:  # pragma: no cover - exercised implicitly by both branches
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less environments
    np = None  # type: ignore[assignment]

from repro.cache.basic import (
    HIT,
    AccessResult,
    BatchCounters,
    CoreSpec,
    WriteSpec,
)
from repro.cache.fastsim import _materialise_stats
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats

HAS_NUMPY = np is not None


def require_numpy() -> None:
    """Raise a pointed error when numpy is unavailable."""
    if np is None:
        raise RuntimeError(
            "the fast-vec backend requires numpy, which is not "
            "installed; install the optional extra (pip install "
            "'.[vec]') or select the 'fast' backend"
        )


class FastVecSetAssociativeCache:
    """Vectorised twin of :class:`~repro.cache.fastsim.FastSetAssociativeCache`.

    LRU only, like the fast backend; the backend selector falls back to
    the reference implementation for ablation policies.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        *,
        policy: str = "lru",
        name: str = "cache",
    ) -> None:
        require_numpy()
        if policy != "lru":
            raise ValueError(
                f"the fast-vec backend implements LRU only, got policy "
                f"{policy!r}; use the reference backend for ablations"
            )
        self.geometry = geometry
        self.name = name
        self._assoc = geometry.associativity
        self._offset_bits = geometry.offset_bits
        self._index_bits = geometry.index_bits
        self._index_mask = geometry.num_sets - 1
        shape = (geometry.num_sets, geometry.associativity)
        self._tags = np.full(shape, -1, dtype=np.int64)
        self._meta = np.zeros(shape, dtype=np.int64)
        self._stamp = np.zeros(shape, dtype=np.int64)
        self._fill = np.zeros(geometry.num_sets, dtype=np.int64)
        self._clock = 1
        # accesses, hits, misses, evictions, writebacks, fills
        self._totals = [0, 0, 0, 0, 0, 0]
        self._per_core: Dict[int, List[int]] = {}

    # -- stats -------------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Counters as a :class:`CacheStats` (fresh snapshot per call)."""
        return _materialise_stats(self._totals, self._per_core)

    def _core_row(self, core_id: int) -> List[int]:
        row = self._per_core.get(core_id)
        if row is None:
            if core_id < 0:
                raise ValueError(
                    f"the fast-vec backend requires core_id >= 0, "
                    f"got {core_id}"
                )
            row = [0, 0, 0, 0, 0, 0]
            self._per_core[core_id] = row
        return row

    # -- main interface ----------------------------------------------------

    def access(
        self, address: int, *, is_write: bool = False, core_id: int = 0
    ) -> AccessResult:
        """Present one access; fill on miss; return the outcome."""
        block = address >> self._offset_bits
        set_index = block & self._index_mask
        tag = block >> self._index_bits
        totals = self._totals
        row = self._core_row(core_id)
        totals[0] += 1
        row[0] += 1
        set_tags = self._tags[set_index]
        match = set_tags == tag
        way = int(match.argmax())
        if match[way]:
            # Hit: refresh recency, take ownership, accumulate dirtiness.
            meta = int(self._meta[set_index, way])
            self._meta[set_index, way] = (
                (core_id << 1) | (meta & 1) | (1 if is_write else 0)
            )
            self._stamp[set_index, way] = self._clock
            self._clock += 1
            totals[1] += 1
            row[1] += 1
            return HIT

        totals[2] += 1
        row[2] += 1
        fill = int(self._fill[set_index])
        evicted_address: Optional[int] = None
        writeback = False
        victim_core: Optional[int] = None
        if fill >= self._assoc:
            way = int(self._stamp[set_index].argmin())
            vmeta = int(self._meta[set_index, way])
            victim_core = vmeta >> 1
            writeback = (vmeta & 1) == 1
            evicted_address = (
                (int(set_tags[way]) << self._index_bits) | int(set_index)
            ) << self._offset_bits
            totals[3] += 1
            vrow = self._core_row(victim_core)
            vrow[3] += 1
            row[4] += 1
            if writeback:
                totals[4] += 1
                vrow[5] += 1
        else:
            way = fill
            self._fill[set_index] = fill + 1
        self._tags[set_index, way] = tag
        self._meta[set_index, way] = (core_id << 1) | (1 if is_write else 0)
        self._stamp[set_index, way] = self._clock
        self._clock += 1
        totals[5] += 1
        return AccessResult(
            hit=False,
            evicted_address=evicted_address,
            writeback=writeback,
            victim_core=victim_core,
        )

    def access_block(
        self,
        addresses: Sequence[int],
        is_write: WriteSpec = False,
        core_ids: CoreSpec = 0,
    ) -> BatchCounters:
        """Batch :meth:`access` as lockstep-over-sets array rounds."""
        addr = np.asarray(addresses, dtype=np.int64)
        n = int(addr.shape[0])
        writes = cores = None
        if not isinstance(is_write, (bool, int)):
            writes = np.asarray(is_write, dtype=np.int64)
            n = min(n, int(writes.shape[0]))
        if not isinstance(core_ids, int):
            cores = np.asarray(core_ids, dtype=np.int64)
            n = min(n, int(cores.shape[0]))
        if n == 0:
            return BatchCounters()
        # zip semantics, like the scalar kernels: the shortest input
        # bounds the batch.
        addr = addr[:n]
        if writes is None:
            writes = np.full(n, 1 if is_write else 0, dtype=np.int64)
        else:
            writes = (writes[:n] != 0).astype(np.int64)
        if cores is None:
            cores = np.full(n, core_ids, dtype=np.int64)
        else:
            cores = cores[:n]
        if int(cores.min()) < 0:
            raise ValueError(
                f"the fast-vec backend requires core_id >= 0, "
                f"got {int(cores.min())}"
            )

        block = addr >> self._offset_bits
        sidx = block & self._index_mask
        btag = block >> self._index_bits

        # Rank each access within its set's group: rank r accesses form
        # round r, in which every set appears at most once.  ``sel``
        # permutes the batch into round-major order, so each round is a
        # contiguous slice (views, not copies) of the permuted inputs.
        order = np.argsort(sidx, kind="stable")
        ssort = sidx[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(ssort[1:], ssort[:-1], out=new_group[1:])
        starts = np.flatnonzero(new_group)
        group_len = np.diff(np.append(starts, n))
        rank = np.arange(n) - np.repeat(starts, group_len)
        sel = order[np.argsort(rank, kind="stable")]
        offsets = np.concatenate(([0], np.cumsum(np.bincount(rank))))
        set_sel = sidx[sel]
        tag_sel = btag[sel]
        core_sel = cores[sel]
        write_sel = writes[sel]

        # Per-access outcomes in round-major order; per-core counters
        # fold from these once, after the loop (scatter-adds inside the
        # round loop would dominate narrow rounds).
        hit_sel = np.empty(n, dtype=bool)
        victim_core_sel = np.full(n, -1, dtype=np.int64)
        victim_dirty_sel = np.zeros(n, dtype=bool)
        assoc = self._assoc
        tags = self._tags
        meta = self._meta
        stamp = self._stamp
        clock = self._clock

        for start, stop in zip(offsets[:-1], offsets[1:]):
            rs = set_sel[start:stop]
            rt = tag_sel[start:stop]
            match = tags[rs] == rt[:, None]
            hit = match.any(axis=1)
            hit_sel[start:stop] = hit
            ways = match.argmax(axis=1)
            if hit.any():
                hs = rs[hit]
                hw = ways[hit]
                old = meta[hs, hw]
                meta[hs, hw] = (
                    (core_sel[start:stop][hit] << 1)
                    | (old & 1)
                    | write_sel[start:stop][hit]
                )
                stamp[hs, hw] = clock
            miss = ~hit
            if miss.any():
                ms = rs[miss]
                fill = self._fill[ms]
                full = fill == assoc
                way = fill
                if full.any():
                    fs = ms[full]
                    victim_way = np.argmin(stamp[fs], axis=1)
                    way[full] = victim_way
                    vmeta = meta[fs, victim_way]
                    full_pos = start + np.flatnonzero(miss)[full]
                    victim_core_sel[full_pos] = vmeta >> 1
                    victim_dirty_sel[full_pos] = (vmeta & 1).astype(bool)
                    if not full.all():
                        self._fill[ms[~full]] += 1
                else:
                    self._fill[ms] += 1
                tags[ms, way] = rt[miss]
                meta[ms, way] = (
                    (core_sel[start:stop][miss] << 1)
                    | write_sel[start:stop][miss]
                )
                stamp[ms, way] = clock
            clock += 1

        self._clock = clock
        hits = int(hit_sel.sum())
        misses = n - hits
        evicted = victim_core_sel >= 0
        written_back = evicted & victim_dirty_sel
        evictions = int(evicted.sum())
        writebacks = int(written_back.sum())
        totals = self._totals
        totals[0] += n
        totals[1] += hits
        totals[2] += misses
        totals[3] += evictions
        totals[4] += writebacks
        totals[5] += misses  # every miss fills

        num_rows = max(
            int(cores.max()) + 1,
            max(self._per_core, default=-1) + 1,
        )
        deltas = np.zeros((num_rows, 6), dtype=np.int64)
        deltas[:, 0] = np.bincount(core_sel, minlength=num_rows)
        deltas[:, 1] = np.bincount(core_sel[hit_sel], minlength=num_rows)
        deltas[:, 2] = deltas[:, 0] - deltas[:, 1]
        deltas[:, 3] = np.bincount(
            victim_core_sel[evicted], minlength=num_rows
        )
        deltas[:, 4] = np.bincount(core_sel[evicted], minlength=num_rows)
        deltas[:, 5] = np.bincount(
            victim_core_sel[written_back], minlength=num_rows
        )
        for core in np.flatnonzero(deltas.any(axis=1)):
            row = self._core_row(int(core))
            for field in range(6):
                row[field] += int(deltas[core, field])
        return BatchCounters(
            accesses=n,
            hits=hits,
            misses=misses,
            evictions=evictions,
            writebacks=writebacks,
        )

    # -- inspection and maintenance ----------------------------------------

    def contains(self, address: int) -> bool:
        """Return True if the block holding ``address`` is resident."""
        block = address >> self._offset_bits
        set_index = block & self._index_mask
        tag = block >> self._index_bits
        return bool((self._tags[set_index] == tag).any())

    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return int(self._fill.sum())

    def invalidate_address(self, address: int) -> bool:
        """Invalidate the block holding ``address``; True if present.

        Compacts the set (last occupied way moves into the hole) so the
        prefix-filled invariant survives; way positions carry no
        observable meaning — recency lives in the stamps.
        """
        block = address >> self._offset_bits
        set_index = block & self._index_mask
        tag = block >> self._index_bits
        match = self._tags[set_index] == tag
        way = int(match.argmax())
        if not match[way]:
            return False
        last = int(self._fill[set_index]) - 1
        if way != last:
            self._tags[set_index, way] = self._tags[set_index, last]
            self._meta[set_index, way] = self._meta[set_index, last]
            self._stamp[set_index, way] = self._stamp[set_index, last]
        self._tags[set_index, last] = -1
        self._fill[set_index] = last
        return True

    def flush(self) -> int:
        """Invalidate everything; return the number of dirty lines dropped."""
        occupied = np.arange(self._assoc) < self._fill[:, None]
        dirty = int((((self._meta & 1) != 0) & occupied).sum())
        self._tags[:] = -1
        self._fill[:] = 0
        return dirty

    def resident_blocks(self) -> List[int]:
        """Return block-aligned addresses of all resident blocks (sorted)."""
        sets, ways = np.nonzero(self._tags >= 0)
        addresses = (
            (self._tags[sets, ways] << self._index_bits) | sets
        ) << self._offset_bits
        return sorted(int(address) for address in addresses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FastVecSetAssociativeCache({self.name}, {self.geometry})"
