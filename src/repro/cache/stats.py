"""Cache statistics counters.

Tracks hits/misses/evictions/writebacks, both globally and per core.
Per-core accounting is essential for the QoS framework: the resource
stealing criterion (Section 4.2) bounds the *per-job* increase in L2
misses, and Figure 8(a) reports per-mode miss rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CoreCounters:
    """Per-core access counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions_suffered: int = 0  # this core's blocks evicted by anyone
    evictions_inflicted: int = 0  # victims chosen on this core's misses
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0.0 before any access)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Hits / accesses (0.0 before any access)."""
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class CacheStats:
    """Aggregate and per-core cache statistics."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    fills: int = 0
    per_core: Dict[int, CoreCounters] = field(default_factory=dict)

    def core(self, core_id: int) -> CoreCounters:
        """Return (creating on first use) the counters for ``core_id``."""
        if core_id not in self.per_core:
            self.per_core[core_id] = CoreCounters()
        return self.per_core[core_id]

    def record_access(self, core_id: int, hit: bool) -> None:
        """Record one access and its outcome."""
        self.accesses += 1
        counters = self.core(core_id)
        counters.accesses += 1
        if hit:
            self.hits += 1
            counters.hits += 1
        else:
            self.misses += 1
            counters.misses += 1

    def record_eviction(self, victim_core: int, by_core: int, dirty: bool) -> None:
        """Record an eviction of ``victim_core``'s block on ``by_core``'s miss."""
        self.evictions += 1
        self.core(victim_core).evictions_suffered += 1
        self.core(by_core).evictions_inflicted += 1
        if dirty:
            self.writebacks += 1
            self.core(victim_core).writebacks += 1

    def record_fill(self) -> None:
        """Record a block fill (miss completing)."""
        self.fills += 1

    @property
    def miss_rate(self) -> float:
        """Global misses / accesses (0.0 before any access)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Global hits / accesses (0.0 before any access)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "CacheStats":
        """Return a deep copy usable as a baseline for interval deltas."""
        copy = CacheStats(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            writebacks=self.writebacks,
            fills=self.fills,
        )
        for core_id, counters in self.per_core.items():
            copy.per_core[core_id] = CoreCounters(
                accesses=counters.accesses,
                hits=counters.hits,
                misses=counters.misses,
                evictions_suffered=counters.evictions_suffered,
                evictions_inflicted=counters.evictions_inflicted,
                writebacks=counters.writebacks,
            )
        return copy

    def delta_since(self, baseline: "CacheStats") -> "CacheStats":
        """Return counters accumulated since ``baseline`` was snapshot."""
        delta = CacheStats(
            accesses=self.accesses - baseline.accesses,
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            evictions=self.evictions - baseline.evictions,
            writebacks=self.writebacks - baseline.writebacks,
            fills=self.fills - baseline.fills,
        )
        for core_id, counters in self.per_core.items():
            base = baseline.per_core.get(core_id, CoreCounters())
            delta.per_core[core_id] = CoreCounters(
                accesses=counters.accesses - base.accesses,
                hits=counters.hits - base.hits,
                misses=counters.misses - base.misses,
                evictions_suffered=counters.evictions_suffered
                - base.evictions_suffered,
                evictions_inflicted=counters.evictions_inflicted
                - base.evictions_inflicted,
                writebacks=counters.writebacks - base.writebacks,
            )
        return delta
