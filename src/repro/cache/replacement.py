"""Replacement policies for set-associative caches.

The machine model uses LRU everywhere (Section 6), but the partitioned
L2's *victim scope* is decided by the partitioning layer — the policy
here only orders blocks *within* whatever candidate scope it is given.
FIFO and Random are provided for ablation benches that quantify how much
the paper's results depend on LRU ordering.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

from repro.util.rng import DeterministicRng


class ReplacementPolicy(Protocol):
    """Within-set block ordering protocol.

    A policy instance is owned by one cache set.  ``touch`` is called on
    every access (hit or fill) with the way index used; ``victim``
    selects which of the candidate ways to evict.
    """

    def touch(self, way: int) -> None:
        """Record an access to ``way`` (most-recently-used update)."""
        ...

    def insert(self, way: int) -> None:
        """Record a fill of ``way`` with a brand-new block."""
        ...

    def invalidate(self, way: int) -> None:
        """Record that ``way`` no longer holds a valid block."""
        ...

    def victim(self, candidates: Sequence[int]) -> int:
        """Choose the way to evict among ``candidates`` (non-empty)."""
        ...


class LruPolicy:
    """True-LRU recency stack.

    Maintains a most-recent-first list of way indices.  ``victim``
    returns the candidate deepest in the stack (least recently used).
    Ways never touched sit below all touched ways and are victimised
    first in insertion order.
    """

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        self.associativity = associativity
        # Most-recently-used first. Starts empty; ways appear on first use.
        self._stack: List[int] = []

    def touch(self, way: int) -> None:
        self._check_way(way)
        if way in self._stack:
            self._stack.remove(way)
        self._stack.insert(0, way)

    def insert(self, way: int) -> None:
        self.touch(way)

    def invalidate(self, way: int) -> None:
        self._check_way(way)
        if way in self._stack:
            self._stack.remove(way)

    def victim(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ValueError("victim() requires at least one candidate")
        candidate_set = set(candidates)
        # Candidates not in the stack were never touched: evict those first,
        # in ascending way order for determinism.
        untouched = sorted(candidate_set.difference(self._stack))
        if untouched:
            return untouched[0]
        for way in reversed(self._stack):
            if way in candidate_set:
                return way
        raise AssertionError("unreachable: every candidate is tracked")

    def recency_order(self) -> List[int]:
        """Return ways most-recent-first (for tests and shadow tags)."""
        return list(self._stack)

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.associativity:
            raise ValueError(
                f"way {way} out of range [0, {self.associativity})"
            )


class FifoPolicy:
    """First-in-first-out: eviction order is fill order, hits don't move."""

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        self.associativity = associativity
        self._queue: List[int] = []  # oldest first

    def touch(self, way: int) -> None:
        # Hits do not change FIFO order.
        if way not in self._queue:
            self._queue.append(way)

    def insert(self, way: int) -> None:
        if way in self._queue:
            self._queue.remove(way)
        self._queue.append(way)

    def invalidate(self, way: int) -> None:
        if way in self._queue:
            self._queue.remove(way)

    def victim(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ValueError("victim() requires at least one candidate")
        candidate_set = set(candidates)
        untouched = sorted(candidate_set.difference(self._queue))
        if untouched:
            return untouched[0]
        for way in self._queue:
            if way in candidate_set:
                return way
        raise AssertionError("unreachable: every candidate is tracked")


class RandomPolicy:
    """Uniform-random victim selection (deterministic via seeded RNG)."""

    def __init__(self, associativity: int, rng: Optional[DeterministicRng] = None) -> None:
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        self.associativity = associativity
        self._rng = rng if rng is not None else DeterministicRng(0, "random-policy")

    def touch(self, way: int) -> None:
        pass

    def insert(self, way: int) -> None:
        pass

    def invalidate(self, way: int) -> None:
        pass

    def victim(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ValueError("victim() requires at least one candidate")
        return self._rng.choice(sorted(candidates))


POLICY_FACTORIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, associativity: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name ('lru', 'fifo', 'random')."""
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"expected one of {sorted(POLICY_FACTORIES)}"
        ) from None
    return factory(associativity)
