"""Cache-backend selection: reference object model vs fast flat kernel.

Two implementations of the same cache semantics coexist:

- ``reference`` — :mod:`repro.cache.basic` / :mod:`repro.cache.partitioned`,
  the readable object model that mirrors the paper's mechanisms and
  supports every replacement policy.
- ``fast`` — :mod:`repro.cache.fastsim`, the flat-state LRU kernel that
  produces identical counters (pinned by the differential test suite)
  at a fraction of the per-access cost.
- ``fast-vec`` — :mod:`repro.cache.fastsim_vec`, the numpy batch LRU
  kernel (optional ``[vec]`` extra) that vectorises ``access_block``
  for single caches; partitioned caches fall back to the fast flat
  kernel, whose QoS victim scan is sequential by design.  Same
  byte-identical counter contract, same differential suite.

Construction sites go through :func:`make_cache` /
:func:`make_partitioned_cache` so one ``--cache-backend`` flag (or the
``REPRO_CACHE_BACKEND`` environment variable, which also reaches
multiprocessing workers) switches the whole machine model.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional, Union

from repro.cache.basic import SetAssociativeCache
from repro.cache.fastsim import (
    FastSetAssociativeCache,
    FastWayPartitionedCache,
)
from repro.cache.fastsim_vec import (
    FastVecSetAssociativeCache,
    require_numpy,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.partitioned import WayPartitionedCache
from repro.obs import get_observer

BACKENDS = ("reference", "fast", "fast-vec")

#: Any single-level cache, any backend.
AnyCache = Union[
    SetAssociativeCache, FastSetAssociativeCache, FastVecSetAssociativeCache
]
#: Any way-partitioned shared cache, either backend.
AnyPartitionedCache = Union[WayPartitionedCache, FastWayPartitionedCache]

_ENV_VAR = "REPRO_CACHE_BACKEND"
_default_backend: Optional[str] = None  # None = env var or "fast"


def resolve_backend(name: Optional[str]) -> str:
    """Normalise a backend request: explicit name > session default.

    Raises ``ValueError`` for unknown names so typos fail at
    construction, not deep inside a sweep.
    """
    if name is None:
        name = default_backend()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown cache backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def default_backend() -> str:
    """The backend used when a construction site passes ``backend=None``."""
    if _default_backend is not None:
        return _default_backend
    return os.environ.get(_ENV_VAR, "fast")


def set_default_backend(name: Optional[str]) -> None:
    """Set the session-wide default backend (``None`` restores env/fast).

    Also mirrors the choice into ``REPRO_CACHE_BACKEND`` so spawned
    multiprocessing workers inherit it.
    """
    global _default_backend
    if name is not None and name not in BACKENDS:
        raise ValueError(
            f"unknown cache backend {name!r}; expected one of {BACKENDS}"
        )
    _default_backend = name
    if name is None:
        os.environ.pop(_ENV_VAR, None)
    else:
        os.environ[_ENV_VAR] = name


@contextlib.contextmanager
def forced_backend(name: str) -> Iterator[str]:
    """Temporarily pin the session default backend to ``name``.

    Saves and restores both the in-process default and the
    ``REPRO_CACHE_BACKEND`` environment mirror, so multiprocessing
    workers spawned inside the block inherit the forced choice and the
    session is left exactly as found afterwards — even on exceptions.
    The differential harness (:mod:`repro.verify.differential`) runs
    each arm of a backend pair inside one of these blocks.
    """
    if name not in BACKENDS:
        raise ValueError(
            f"unknown cache backend {name!r}; expected one of {BACKENDS}"
        )
    saved_default = _default_backend
    saved_env = os.environ.get(_ENV_VAR)
    set_default_backend(name)
    try:
        yield name
    finally:
        set_default_backend(saved_default)
        if saved_env is None:
            os.environ.pop(_ENV_VAR, None)
        else:
            os.environ[_ENV_VAR] = saved_env


def make_cache(
    geometry: CacheGeometry,
    *,
    policy: str = "lru",
    name: str = "cache",
    backend: Optional[str] = None,
) -> AnyCache:
    """Build a single-level cache on the selected backend.

    The fast kernels hard-code LRU; requesting another policy silently
    falls back to the reference implementation so ablations (FIFO,
    Random) keep working under ``--cache-backend fast``/``fast-vec``.
    Selecting ``fast-vec`` without numpy installed raises at
    construction (install the ``[vec]`` extra), rather than silently
    degrading a benchmark to a different kernel.
    """
    chosen = resolve_backend(backend)
    if policy != "lru":
        chosen = "reference"
    if chosen == "fast-vec":
        require_numpy()
    obs = get_observer()
    if obs.enabled:
        obs.metrics.counter(
            "cache.builds", backend=chosen, kind="single"
        ).inc()
    if chosen == "fast-vec":
        return FastVecSetAssociativeCache(geometry, policy=policy, name=name)
    if chosen == "fast":
        return FastSetAssociativeCache(geometry, policy=policy, name=name)
    return SetAssociativeCache(geometry, policy=policy, name=name)


def make_partitioned_cache(
    geometry: CacheGeometry,
    num_cores: int,
    *,
    name: str = "l2",
    backend: Optional[str] = None,
) -> AnyPartitionedCache:
    """Build a way-partitioned shared cache on the selected backend.

    ``fast-vec`` delegates to the fast flat kernel here: the QoS
    victim-priority scan walks classes and per-set occupancy counters
    in order, which does not vectorise, and the partitioned cache is
    not the trace-profiling hot path the vec kernel targets.
    """
    chosen = resolve_backend(backend)
    if chosen == "fast-vec":
        chosen = "fast"
    obs = get_observer()
    if obs.enabled:
        obs.metrics.counter(
            "cache.builds", backend=chosen, kind="partitioned"
        ).inc()
    if chosen == "fast":
        return FastWayPartitionedCache(geometry, num_cores, name=name)
    return WayPartitionedCache(geometry, num_cores, name=name)


def record_lookup_span(
    trace,
    trace_id: str,
    *,
    level: str,
    start: float,
    latency: float,
    hit: bool,
    parent=None,
):
    """Record one closed ``<level>.lookup`` span on ``trace``.

    The shared vocabulary for cache-lookup spans — every layer that
    traces a lookup (the hierarchy walk, ablation drivers, tests) goes
    through here so breakdowns aggregate across call sites by name.
    Returns the span.
    """
    return trace.span(
        trace_id,
        f"{level}.lookup",
        start,
        start + latency,
        parent=parent,
        hit=hit,
    )


def record_cache_stats(cache, *, scope: str) -> None:
    """Pull a cache's hit/miss counters into the metrics registry.

    Snapshot-style (called once per run/segment, never per access) so
    the hot access path stays untouched — the zero-cost-when-disabled
    contract of :mod:`repro.obs`.  Works with either backend: both
    expose ``stats`` objects with ``hits``/``misses`` totals, and the
    partitioned variants expose per-core stats.
    """
    obs = get_observer()
    if not obs.enabled:
        return
    stats = getattr(cache, "stats", None)
    if stats is None:
        return
    hits = getattr(stats, "hits", None)
    misses = getattr(stats, "misses", None)
    if hits is not None:
        obs.metrics.gauge(f"cache.{scope}.hits").set(hits)
    if misses is not None:
        obs.metrics.gauge(f"cache.{scope}.misses").set(misses)
