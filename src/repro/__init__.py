"""repro — reproduction of "A Framework for Providing Quality of Service
in Chip Multi-Processors" (Guo, Solihin, Zhao, Iyer — MICRO 2007).

The public API re-exports the pieces a downstream user composes:

- QoS specification and modes: :class:`ResourceVector`,
  :class:`TimeslotRequest`, :class:`QoSTarget`, :class:`ExecutionMode`.
- Admission control: :class:`LocalAdmissionController`,
  :class:`GlobalAdmissionController`, :class:`Job`.
- Resource stealing: :class:`ResourceStealingController`,
  :class:`ShadowTagArray`.
- The machine substrate: :class:`CacheGeometry`,
  :class:`WayPartitionedCache`, :class:`CpiModel`, :class:`CmpNode`.
- Workloads and simulation: :data:`BENCHMARKS`,
  :func:`single_benchmark_workload`, :func:`mixed_workload`,
  :class:`QoSSystemSimulator`, :class:`EqualPartSimulator`,
  :func:`run_all_configurations`.
- Fault injection & resilience: :class:`FaultConfig`,
  :class:`FaultSchedule`, :class:`RetryPolicy`,
  :class:`InvariantChecker`, :func:`checkpoint_simulator`,
  :func:`resume_simulator`, :class:`ResilienceReport`.

See ``examples/quickstart.py`` for the canonical end-to-end usage.
"""

from repro.analysis.runner import (
    normalised_throughputs,
    run_all_configurations,
    run_configuration,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.partitioned import PartitionClass, WayPartitionedCache
from repro.cache.shadow import ShadowTagArray
from repro.core.admission import AdmissionDecision, LocalAdmissionController
from repro.core.config import (
    ALL_STRICT,
    ALL_STRICT_AUTODOWN,
    CONFIGURATIONS,
    EQUAL_PART,
    HYBRID_1,
    HYBRID_2,
    ModeMixConfig,
)
from repro.core.cluster import ClusterJobProfile, ClusterSimulator, size_cluster
from repro.core.gac import GlobalAdmissionController
from repro.core.ipc_manager import IpcManagedJob, IpcTargetManager
from repro.core.job import Job, JobState
from repro.core.metrics import (
    DeadlineReport,
    DowngradeRecord,
    ResilienceReport,
    ThroughputReport,
)
from repro.core.modes import ExecutionMode, ModeKind
from repro.core.partition_manager import PartitionManager
from repro.core.spec import (
    IpcTarget,
    MissRateTarget,
    PRESET_TARGETS,
    QoSTarget,
    ResourceVector,
    TimeslotRequest,
)
from repro.core.stealing import ResourceStealingController
from repro.cpu.cpi import CpiModel
from repro.faults import (
    FaultConfig,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    InvariantChecker,
    InvariantViolation,
    RetryPolicy,
    SimulationCheckpoint,
    checkpoint_simulator,
    load_checkpoint,
    resume_simulator,
    save_checkpoint,
)
from repro.sim.cmp import CmpNode
from repro.sim.config import MachineConfig, SimulationConfig
from repro.sim.engine import RunBudget
from repro.sim.equalpart import EqualPartSimulator
from repro.sim.system import QoSSystemSimulator, SystemResult
from repro.workloads.benchmarks import BENCHMARKS, REPRESENTATIVES, get_benchmark
from repro.workloads.composer import (
    JobSpec,
    WorkloadSpec,
    mixed_workload,
    single_benchmark_workload,
)
from repro.workloads.profiler import MissRatioCurve, get_curve, profile_benchmark

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # spec & modes
    "ResourceVector",
    "TimeslotRequest",
    "QoSTarget",
    "IpcTarget",
    "MissRateTarget",
    "PRESET_TARGETS",
    "ExecutionMode",
    "ModeKind",
    # admission
    "Job",
    "JobState",
    "LocalAdmissionController",
    "AdmissionDecision",
    "GlobalAdmissionController",
    "ClusterSimulator",
    "ClusterJobProfile",
    "size_cluster",
    "IpcTargetManager",
    "IpcManagedJob",
    # stealing & partitioning
    "ResourceStealingController",
    "ShadowTagArray",
    "PartitionManager",
    "PartitionClass",
    "WayPartitionedCache",
    "CacheGeometry",
    # machine & simulation
    "CpiModel",
    "CmpNode",
    "MachineConfig",
    "SimulationConfig",
    "QoSSystemSimulator",
    "EqualPartSimulator",
    "SystemResult",
    # configurations
    "ModeMixConfig",
    "ALL_STRICT",
    "HYBRID_1",
    "HYBRID_2",
    "ALL_STRICT_AUTODOWN",
    "EQUAL_PART",
    "CONFIGURATIONS",
    # workloads
    "BENCHMARKS",
    "REPRESENTATIVES",
    "get_benchmark",
    "JobSpec",
    "WorkloadSpec",
    "single_benchmark_workload",
    "mixed_workload",
    "MissRatioCurve",
    "profile_benchmark",
    "get_curve",
    # runners & metrics
    "run_configuration",
    "run_all_configurations",
    "normalised_throughputs",
    "DeadlineReport",
    "ThroughputReport",
    # faults & resilience
    "FaultConfig",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "RetryPolicy",
    "InvariantChecker",
    "InvariantViolation",
    "SimulationCheckpoint",
    "checkpoint_simulator",
    "save_checkpoint",
    "load_checkpoint",
    "resume_simulator",
    "RunBudget",
    "ResilienceReport",
    "DowngradeRecord",
]
