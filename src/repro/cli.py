"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro fig5 bzip2          # Figure 5 panels for a workload
    python -m repro fig5 Mix-1          # or a Table 3 mix
    python -m repro fig7                # All-Strict vs AutoDown traces
    python -m repro fig1                # the motivation series
    python -m repro curves bzip2 hmmer  # print miss-ratio curves
    python -m repro fig4                # the sensitivity scatter
    python -m repro cluster --size      # capacity-plan a server

The heavier figures profile their benchmarks on first use (a few
seconds each); curves are memoised for the life of the process.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import misscache
from repro.analysis.export import results_to_dict, write_json
from repro.analysis.gantt import render_gantt
from repro.analysis.parallel import parallel_map
from repro.analysis.report import (
    deadline_table,
    downgrade_ladder_lines,
    miss_cache_lines,
    observability_lines,
    resilience_table,
    sensitivity_table,
    slo_table,
    throughput_table,
    trace_table,
    wall_clock_table,
)
from repro.analysis.runner import run_all_configurations
from repro.analysis.sensitivity import sensitivity_points
from repro.cache.backend import BACKENDS, set_default_backend
from repro.core.config import CONFIGURATIONS
from repro.faults import (
    FaultConfig,
    checkpoint_simulator,
    load_checkpoint,
    resume_simulator,
    save_checkpoint,
)
from repro.obs import Observer, reset_observer, set_observer
from repro.sim.engine import RunBudget
from repro.sim.system import QoSSystemSimulator
from repro.util.tables import format_table
from repro.workloads.benchmarks import BENCHMARKS, get_benchmark
from repro.workloads.composer import mixed_workload, single_benchmark_workload
from repro.core.cluster import ClusterJobProfile, ClusterSimulator, size_cluster
from repro.core.spec import PRESET_TARGETS
from repro.workloads.profiler import get_curve, load_curves, save_curves

WORKLOAD_CHOICES = sorted(BENCHMARKS) + ["Mix-1", "Mix-2"]


def _cmd_list(_: argparse.Namespace) -> int:
    print("benchmarks:", ", ".join(sorted(BENCHMARKS)))
    print("mixes: Mix-1, Mix-2")
    print(
        "commands: fig1, fig4, fig5 <workload>, fig6 <workload>, "
        "fig7 [workload], curves <benchmarks...>, faults [workload]"
    )
    return 0


def _cmd_fig1(_: argparse.Namespace) -> int:
    profile = get_benchmark("bzip2")
    curve = get_curve(profile)
    model = profile.cpi_model()
    solo = model.ipc(curve.mpi(16))
    target = solo * 2 / 3
    rows = []
    for instances in (1, 2, 3, 4):
        ipc = model.ipc(curve.mpi(16 / instances))
        rows.append(
            [instances, ipc, "met" if ipc >= target else "MISSED"]
        )
    print(
        format_table(
            ["instances", "per-instance IPC", f"target {target:.3f}"],
            rows,
            title="Figure 1 — bzip2 under equal partitioning",
        )
    )
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    print("profiling all fifteen benchmarks …", file=sys.stderr)
    points = sensitivity_points(jobs=args.jobs)
    print(sensitivity_table(points, title="Figure 4 — sensitivity"))
    for line in miss_cache_lines():
        print(line)
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    curves = load_curves(args.curves) if args.curves else None
    results = run_all_configurations(
        args.workload, curves=curves, jobs=args.jobs, policy=args.policy
    )
    print(deadline_table(results, title=f"Figure 5a — {args.workload}"))
    print()
    print(throughput_table(results, title=f"Figure 5b — {args.workload}"))
    for line in miss_cache_lines():
        print(line)
    if args.json:
        path = write_json(results_to_dict(results), args.json)
        print(f"\nwrote {path}")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    results = run_all_configurations(
        args.workload, jobs=args.jobs, policy=args.policy
    )
    for config, result in results.items():
        print(wall_clock_table(result, title=f"Figure 6 — {config}"))
        print()
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    results = run_all_configurations(
        args.workload,
        configurations=["All-Strict", "All-Strict+AutoDown"],
        record_trace=True,
        jobs=args.jobs,
        policy=args.policy,
    )
    for config, result in results.items():
        print(f"Figure 7 — {config}")
        print(render_gantt(result.jobs, result.trace))
        print()
        print(trace_table(result, title=f"{config} — job details"))
        if result.slo is not None:
            print()
            print(slo_table(result, title=f"{config} — SLO monitor"))
        print(
            f"makespan: {result.makespan_cycles / 1e6:.0f} Mcycles\n"
        )
    return 0


def _cmd_curves(args: argparse.Namespace) -> int:
    for name in args.benchmarks:
        curve = get_curve(get_benchmark(name))
        rows = [
            [ways, curve.points[ways], curve.mpi(ways)]
            for ways in sorted(curve.points)
            if ways > 0
        ]
        print(
            format_table(
                ["ways", "miss rate", "misses/instruction"],
                rows,
                title=f"miss-ratio curve — {name}",
                float_format=".4f",
            )
        )
        print()
    return 0


def _profile_worker(name: str):
    """Profile one benchmark (module-level so ``--jobs`` can pickle it)."""
    return name, get_curve(get_benchmark(name))


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile miss-ratio curves and save them for later runs."""
    names = args.benchmarks if args.benchmarks else sorted(BENCHMARKS)
    unknown = sorted(set(names) - set(BENCHMARKS))
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    print(f"profiling {len(names)} benchmark(s) …", file=sys.stderr)
    curves = dict(parallel_map(_profile_worker, names, jobs=args.jobs))
    path = save_curves(curves, args.out)
    print(f"wrote {len(curves)} curve(s) to {path}")
    for line in miss_cache_lines():
        print(line)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Run a workload under fault injection and print the resilience report."""
    if args.resume:
        checkpoint = load_checkpoint(args.resume)
        print(f"resumed: {checkpoint.describe()}", file=sys.stderr)
        simulator = resume_simulator(checkpoint)
    else:
        configuration = CONFIGURATIONS[args.config]
        if configuration.equal_partition:
            print(
                "fault injection requires the QoS simulator; pick a "
                "non-EqualPart --config",
                file=sys.stderr,
            )
            return 2
        if args.workload in ("Mix-1", "Mix-2"):
            workload = mixed_workload(args.workload, configuration)
        else:
            workload = single_benchmark_workload(args.workload, configuration)
        fault_config = FaultConfig(
            seed=args.fault_seed,
            core_failure_rate=args.core_rate,
            core_stall_rate=args.stall_rate,
            bandwidth_degradation_rate=args.bandwidth_rate,
            ecc_error_rate=args.ecc_rate,
        )
        simulator = QoSSystemSimulator(workload, fault_config=fault_config)

    budget = None
    if args.max_events is not None or args.max_seconds is not None:
        budget = RunBudget(
            max_events=args.max_events, max_wall_seconds=args.max_seconds
        )
    result = simulator.run(budget=budget)

    if result.partial:
        print(
            f"run aborted early ({result.abort_reason}); partial report",
            file=sys.stderr,
        )
        if args.checkpoint:
            path = save_checkpoint(
                checkpoint_simulator(simulator), args.checkpoint
            )
            print(f"checkpoint written to {path}", file=sys.stderr)
    name = args.config if not args.resume else "resumed run"
    if result.resilience is not None:
        print(resilience_table(result, title=f"Fault injection — {name}"))
        ladder = downgrade_ladder_lines(result)
        if ladder:
            print("\ndowngrade ladder:")
            for line in ladder:
                print(f"  {line}")
        if result.fault_timeline_digest:
            print(f"\nfault timeline digest: {result.fault_timeline_digest}")
    print()
    print(trace_table(result, title="job details"))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Inspect and compare observability artifacts from past runs."""
    from repro.obs.diff import diff_snapshots
    from repro.obs.export import (
        load_events_jsonl,
        load_metrics_jsonl,
        summary_dict,
        write_prometheus,
        write_summary_json,
    )

    if args.obs_command == "summarize":
        records = load_metrics_jsonl(args.metrics)
        events = load_events_jsonl(args.events) if args.events else None
        summary = summary_dict(records, events)
        rows = [
            ["metric series", summary["series"]],
            *[
                [
                    "  summaries" if kind == "summary" else f"  {kind}s",
                    count,
                ]
                for kind, count in sorted(
                    summary["series_by_type"].items()
                )
            ],
            ["counter total", summary["counter_total"]],
        ]
        if events is not None:
            rows.append(["events", summary["events"]])
            rows.append(["event kinds", len(summary["event_kinds"])])
        print(
            format_table(
                ["series", "value"], rows, title=f"obs — {args.metrics}"
            )
        )
        if args.prometheus_out:
            path = write_prometheus(records, args.prometheus_out)
            print(f"prometheus text written to {path}")
        if args.summary_out:
            path = write_summary_json(
                records, args.summary_out, events
            )
            print(f"summary JSON written to {path}")
        return 0

    if args.obs_command == "top":
        records = load_metrics_jsonl(args.metrics)
        counters = sorted(
            (
                record
                for record in records
                if record["type"] == "counter"
            ),
            key=lambda record: (-record["value"], record["name"]),
        )
        rows = [
            [record["name"], record["value"]]
            for record in counters[: args.count]
        ]
        print(
            format_table(
                ["counter", "value"],
                rows,
                title=f"top {args.count} counters — {args.metrics}",
            )
        )
        return 0

    if args.obs_command == "diff":
        baseline = load_metrics_jsonl(args.baseline)
        current = load_metrics_jsonl(args.current)
        report = diff_snapshots(
            baseline,
            current,
            rel_tol=args.rel_tol,
            abs_tol=args.abs_tol,
        )
        for line in report.lines():
            print(line)
        return 0 if report.clean else 1

    raise AssertionError(f"unknown obs command {args.obs_command!r}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Orchestrate scenario sweeps over the content-addressed store."""
    from repro.analysis.sweep import (
        diff_reports,
        load_report,
        load_sweep_file,
        run_sweep,
        sweep_status,
    )

    if args.sweep_command == "run":
        try:
            spec = load_sweep_file(args.spec)
        except (OSError, ValueError) as error:
            print(f"sweep: {error}", file=sys.stderr)
            return 2
        outcome = run_sweep(
            spec,
            store_dir=args.store_dir,
            jobs=args.jobs,
            progress_out=not args.no_progress,
        )
        rows = [
            [
                point["label"],
                point["figures_of_merit"]["deadline_hit_rate"],
                point["figures_of_merit"]["makespan_cycles"] / 1e6,
                int(point["figures_of_merit"]["steal_transfers"]),
                int(point["figures_of_merit"]["rejections"]),
            ]
            for point in outcome.report["points"]
        ]
        print(
            format_table(
                [
                    "point",
                    "deadline hit",
                    "makespan (Mcyc)",
                    "steals",
                    "rejections",
                ],
                rows,
                title=f"sweep {spec.name} — {len(spec.points)} point(s)",
            )
        )
        print(
            f"results store: {outcome.served_from_store} point(s) served "
            f"from store, {outcome.executed} executed "
            f"({outcome.store_dir})"
        )
        print(f"report written to {outcome.report_path}")
        for line in miss_cache_lines():
            print(line)
        if args.baseline:
            try:
                baseline = load_report(
                    args.baseline, store_dir=args.store_dir
                )
            except (OSError, ValueError) as error:
                print(f"sweep: {error}", file=sys.stderr)
                return 2
            report = diff_reports(
                baseline,
                outcome.report,
                rel_tol=args.rel_tol,
                abs_tol=args.abs_tol,
            )
            print(f"baseline: {args.baseline}")
            for line in report.lines():
                print(line)
            return 0 if report.clean else 1
        return 0

    if args.sweep_command == "status":
        try:
            spec = load_sweep_file(args.spec)
        except (OSError, ValueError) as error:
            print(f"sweep: {error}", file=sys.stderr)
            return 2
        status = sweep_status(spec, store_dir=args.store_dir)
        print(
            f"sweep {spec.name}: {len(status.done)}/"
            f"{len(spec.points)} point(s) in store, "
            f"{len(status.missing)} missing"
        )
        for label in status.missing:
            print(f"  missing: {label}")
        return 0

    if args.sweep_command == "diff":
        try:
            baseline = load_report(
                args.baseline, store_dir=args.store_dir
            )
            current = load_report(
                args.current, store_dir=args.store_dir
            )
        except (OSError, ValueError) as error:
            print(f"sweep: {error}", file=sys.stderr)
            return 2
        report = diff_reports(
            baseline,
            current,
            rel_tol=args.rel_tol,
            abs_tol=args.abs_tol,
        )
        for line in report.lines():
            print(line)
        return 0 if report.clean else 1

    raise AssertionError(f"unknown sweep command {args.sweep_command!r}")


def _cmd_verify(args: argparse.Namespace) -> int:
    """Differential / metamorphic / fuzz verification (repro.verify)."""
    import json as _json

    from repro.verify import (
        Scenario,
        parse_budget,
        replay_case,
        run_diff,
        run_fuzz,
        run_laws,
    )

    if args.verify_command == "diff":
        if args.fig:
            scenario = Scenario.for_figure(args.fig, seed=args.seed)
            if (
                args.pair_backend != scenario.fast_backend
                or args.pair_policy != scenario.pair_policy
            ):
                import dataclasses as _dataclasses

                scenario = _dataclasses.replace(
                    scenario,
                    fast_backend=args.pair_backend,
                    pair_policy=args.pair_policy,
                )
        else:
            scenario = Scenario(
                workload=args.workload,
                configurations=tuple(args.configs)
                if args.configs
                else ("All-Strict", "All-Strict+AutoDown"),
                count=args.count,
                seed=args.seed,
                jobs=args.pair_jobs,
                fast_backend=args.pair_backend,
                pair_policy=args.pair_policy,
            )
        report = run_diff(
            scenario,
            pairs=tuple(args.pairs),
            rel_tol=args.rel_tol,
            abs_tol=args.abs_tol,
        )
    elif args.verify_command == "laws":
        report = run_laws(
            args.seed, names=args.laws or None, policy=args.policy
        )
    elif args.verify_command == "fuzz":
        report = run_fuzz(
            args.seed,
            budget_seconds=parse_budget(args.budget),
            max_cases=args.max_cases,
            out=args.out,
            rel_tol=args.rel_tol,
            abs_tol=args.abs_tol,
            pairs=tuple(args.pairs) if args.pairs else None,
        )
    elif args.verify_command == "replay":
        report = replay_case(
            args.case, rel_tol=args.rel_tol, abs_tol=args.abs_tol
        )
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(
            f"unknown verify command {args.verify_command!r}"
        )

    for line in report.lines():
        print(line)
    if args.json:
        from pathlib import Path

        path = Path(args.json)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            _json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {path}")
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the admission/allocation server until drained (SIGTERM)."""
    import asyncio

    from repro.serve import ServerConfig, serve_main

    config = ServerConfig(
        host=args.host,
        port=args.port,
        cores=args.cores,
        cache_ways=args.cache_ways,
        bandwidth_share=args.bandwidth_share,
        queue_limit=args.queue_limit,
        max_inflight=args.max_inflight,
        max_loop_lag=args.max_loop_lag,
        default_timeout=args.default_timeout,
        drain_grace=args.drain_grace,
        breaker_trip_after=args.breaker_trip_after,
        breaker_recover_after=args.breaker_recover_after,
        seed=args.seed,
        metrics_out=args.serve_metrics_out,
        events_out=args.serve_events_out,
        history_capacity=args.history_capacity,
        sample_every=args.sample_every,
        history_out=args.serve_history_out,
        flight_out=args.serve_flight_out,
        flight_window=args.flight_window,
        policy=args.policy,
    )
    return asyncio.run(serve_main(config))


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Offer a seeded bursty schedule to a running server; report."""
    import asyncio
    import json as _json

    from repro.serve import LoadConfig, LoadGenerator, build_schedule

    config = LoadConfig(
        seed=args.seed,
        requests=args.requests,
        tenants=args.tenants,
        mean_rate=args.mean_rate,
        burst_factor=args.burst_factor,
    )
    schedule = build_schedule(config)
    generator = LoadGenerator(
        args.host, args.port,
        connections=args.connections,
        time_scale=args.time_scale,
    )
    report = asyncio.run(generator.run(schedule))
    payload = report.to_dict()
    server = payload.pop("server", None)
    print(_json.dumps(payload, indent=2, sort_keys=True))
    if server is not None:
        accounting = server.get("accounting", {})
        print(
            f"server: offered={accounting.get('offered')} "
            f"admitted={accounting.get('admitted')} "
            f"rejected={accounting.get('rejected')} "
            f"shed={accounting.get('shed')} "
            f"conserves={accounting.get('conserves')}"
        )
    if args.json:
        from repro.util.atomicio import write_atomic_text

        payload["server"] = server
        write_atomic_text(
            args.json,
            _json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        print(f"report written to {args.json}")
    if not report.conserves:
        return 1
    return 0 if report.transport_errors == 0 else 1


def _http_get_json(host: str, port: int, path: str) -> dict:
    """One stdlib GET returning parsed JSON (the ``repro top`` poll)."""
    import http.client
    import json as _json

    connection = http.client.HTTPConnection(host, port, timeout=5.0)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        payload = response.read()
        if response.status != 200:
            raise OSError(
                f"GET {path} -> {response.status}: "
                f"{payload[:200].decode('utf-8', 'replace')}"
            )
        return _json.loads(payload)
    finally:
        connection.close()


def _cmd_top(args: argparse.Namespace) -> int:
    """Live ANSI dashboard over a serve target or a sweep stream.

    Three sources, in precedence order: ``--sweep`` tails a progress
    stream, ``--history``/``--stats`` render flushed artefacts (the
    deterministic CI mode), and otherwise ``--host``/``--port`` poll a
    running server.  ``--once`` prints a single frame with no escape
    codes — rendering is pure, so the same inputs give the same bytes.
    """
    import json as _json
    import time as _time
    from pathlib import Path

    from repro.obs.dashboard import render_serve_frame, render_sweep_frame
    from repro.obs.timeseries import load_history_jsonl

    def one_frame() -> str:
        if args.sweep:
            path = Path(args.sweep)
            if not path.is_file():
                from repro.analysis.store import ResultStore
                from repro.analysis.sweep import progress_path_for

                path = progress_path_for(
                    ResultStore(args.store_dir), args.sweep
                )
            if not path.is_file():
                raise OSError(f"no sweep progress stream at {path}")
            return render_sweep_frame(load_history_jsonl(path))
        if args.history or args.stats:
            stats = (
                _json.loads(Path(args.stats).read_text())
                if args.stats
                else {}
            )
            history = None
            if args.history:
                records = load_history_jsonl(args.history)
                history = {"samples": records}
            return render_serve_frame(stats, history)
        stats = _http_get_json(args.host, args.port, "/stats")
        history = _http_get_json(args.host, args.port, "/metrics/history")
        return render_serve_frame(stats, history)

    try:
        if args.once:
            sys.stdout.write(one_frame())
            return 0
        frames = 0
        while True:
            frame = one_frame()
            sys.stdout.write("\x1b[2J\x1b[H" + frame)
            sys.stdout.flush()
            frames += 1
            if args.frames is not None and frames >= args.frames:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except OSError as error:
        print(f"top: {error}", file=sys.stderr)
        return 2


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Capacity-plan a CMP server for a gold/silver mix (Figure 2)."""
    profiles = [
        ClusterJobProfile(
            name="gold",
            weight=0.3,
            resources=PRESET_TARGETS["large"],
            mean_wall_clock=1.0,
            deadline_multiplier=1.2,
        ),
        ClusterJobProfile(
            name="silver",
            weight=0.7,
            resources=PRESET_TARGETS["medium"],
            mean_wall_clock=0.6,
            deadline_multiplier=2.0,
        ),
    ]
    if args.size:
        nodes = size_cluster(
            profiles=profiles,
            mean_interarrival=args.interarrival,
            target_acceptance=args.target,
        )
        print(
            f"smallest cluster for {args.target:.0%} acceptance at mean "
            f"inter-arrival {args.interarrival}s: {nodes} node(s)"
        )
        return 0
    report = ClusterSimulator(
        num_nodes=args.nodes,
        profiles=profiles,
        mean_interarrival=args.interarrival,
    ).run(horizon=50.0)
    print(
        f"{args.nodes} node(s): accepted {report.accepted}/"
        f"{report.submitted} ({report.acceptance_rate:.0%}), mean core "
        f"load {report.mean_load:.0%}, counter-offers "
        f"{report.counter_offers}"
    )
    for name in ("gold", "silver"):
        print(
            f"  {name}: {report.class_acceptance_rate(name):.0%} accepted"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from the MICRO 2007 CMP QoS paper",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    # Performance knobs shared by every simulation command.
    perf = argparse.ArgumentParser(add_help=False)
    perf.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run independent simulation points across N processes "
        "(0 = all cores; default 1 = serial)",
    )
    perf.add_argument(
        "--cache-backend", choices=BACKENDS, default=None,
        help="cache implementation: the fast flat kernel (default) or "
        "the reference object model",
    )
    perf.add_argument(
        "--no-miss-cache", action="store_true",
        help="disable the on-disk miss-curve store (always re-profile)",
    )
    perf.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable observability and write the metrics snapshot "
        "(JSONL, one series per line) here",
    )
    perf.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="enable observability and write the structured event "
        "stream (JSONL, schema v1) here",
    )
    perf.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable observability and write the causal span trees "
        "(JSONL, one span per line) here",
    )

    # Closed-loop policy selection, shared by the commands that drive
    # the QoS simulator (repro.core.policy registry names).
    from repro.core.policy import policy_names

    policy_parent = argparse.ArgumentParser(add_help=False)
    policy_parent.add_argument(
        "--policy", choices=policy_names(), default=None,
        help="run under a closed-loop adaptive policy (static wrappers "
        "are trajectory-identical to no policy; default none)",
    )

    commands.add_parser("list", help="list workloads and commands")

    commands.add_parser(
        "fig1", help="Figure 1 motivation series", parents=[perf]
    )
    commands.add_parser(
        "fig4", help="Figure 4 sensitivity scatter", parents=[perf]
    )

    fig5 = commands.add_parser(
        "fig5", help="Figure 5 panels", parents=[perf, policy_parent]
    )
    fig5.add_argument("workload", choices=WORKLOAD_CHOICES)
    fig5.add_argument(
        "--json", help="also write the results to this JSON file"
    )
    fig5.add_argument(
        "--curves", help="load pre-profiled curves from this JSON file"
    )

    fig6 = commands.add_parser(
        "fig6",
        help="Figure 6 wall-clock candles",
        parents=[perf, policy_parent],
    )
    fig6.add_argument("workload", choices=WORKLOAD_CHOICES)

    fig7 = commands.add_parser(
        "fig7",
        help="Figure 7 execution traces",
        parents=[perf, policy_parent],
    )
    fig7.add_argument(
        "workload", nargs="?", default="bzip2", choices=WORKLOAD_CHOICES
    )

    curves = commands.add_parser(
        "curves", help="print miss-ratio curves", parents=[perf]
    )
    curves.add_argument(
        "benchmarks", nargs="+", choices=sorted(BENCHMARKS)
    )

    profile = commands.add_parser(
        "profile",
        help="profile miss-ratio curves to a JSON file",
        parents=[perf],
    )
    profile.add_argument(
        "benchmarks", nargs="*",
        help="benchmarks to profile (default: all fifteen)",
    )
    profile.add_argument("--out", default="curves.json")

    faults = commands.add_parser(
        "faults",
        help="fault-injection run with a resilience report",
        parents=[perf],
    )
    faults.add_argument(
        "workload", nargs="?", default="bzip2", choices=WORKLOAD_CHOICES
    )
    faults.add_argument(
        "--config", default="All-Strict",
        choices=[
            name
            for name, config in CONFIGURATIONS.items()
            if not config.equal_partition
        ],
        help="Table 2 configuration to run under",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed for the deterministic fault schedule",
    )
    faults.add_argument(
        "--core-rate", type=float, default=4.0,
        help="core failures per simulated second",
    )
    faults.add_argument(
        "--stall-rate", type=float, default=0.0,
        help="transient core stalls per simulated second",
    )
    faults.add_argument(
        "--bandwidth-rate", type=float, default=0.0,
        help="bandwidth brown-outs per simulated second",
    )
    faults.add_argument(
        "--ecc-rate", type=float, default=0.0,
        help="duplicate-tag ECC errors per simulated second",
    )
    faults.add_argument(
        "--max-events", type=int, default=None,
        help="abort gracefully after this many events",
    )
    faults.add_argument(
        "--max-seconds", type=float, default=None,
        help="abort gracefully after this much wall-clock time",
    )
    faults.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a resumable checkpoint here if the run aborts early",
    )
    faults.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from a checkpoint written by --checkpoint",
    )

    obs = commands.add_parser(
        "obs", help="inspect and diff observability artifacts"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)

    obs_summarize = obs_commands.add_parser(
        "summarize", help="roll up one run's metrics/events artifacts"
    )
    obs_summarize.add_argument(
        "metrics", help="metrics snapshot (JSONL from --metrics-out)"
    )
    obs_summarize.add_argument(
        "--events", default=None,
        help="event stream (JSONL from --events-out) to include",
    )
    obs_summarize.add_argument(
        "--prometheus-out", default=None, metavar="PATH",
        help="also write the Prometheus text exposition here",
    )
    obs_summarize.add_argument(
        "--summary-out", default=None, metavar="PATH",
        help="also write the summary roll-up as canonical JSON here",
    )

    obs_top = obs_commands.add_parser(
        "top", help="largest counters in a metrics snapshot"
    )
    obs_top.add_argument("metrics")
    obs_top.add_argument(
        "-n", "--count", type=int, default=10,
        help="how many counters to show",
    )

    obs_diff = obs_commands.add_parser(
        "diff", help="regression-compare two metrics snapshots"
    )
    obs_diff.add_argument("baseline", help="baseline metrics snapshot")
    obs_diff.add_argument("current", help="current metrics snapshot")
    obs_diff.add_argument(
        "--rel-tol", type=float, default=0.0,
        help="relative tolerance per series (default: exact)",
    )
    obs_diff.add_argument(
        "--abs-tol", type=float, default=0.0,
        help="absolute tolerance per series (default: exact)",
    )

    sweep = commands.add_parser(
        "sweep",
        help="resumable scenario sweeps over the results store",
    )
    sweep_commands = sweep.add_subparsers(dest="sweep_command", required=True)

    sweep_store = argparse.ArgumentParser(add_help=False)
    sweep_store.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="results store directory (default: "
        "$REPRO_RESULT_STORE_DIR or ~/.cache/repro-qos/results)",
    )
    sweep_tol = argparse.ArgumentParser(add_help=False)
    sweep_tol.add_argument(
        "--rel-tol", type=float, default=0.0,
        help="relative tolerance per figure of merit (default: exact)",
    )
    sweep_tol.add_argument(
        "--abs-tol", type=float, default=0.0,
        help="absolute tolerance per figure of merit (default: exact)",
    )

    sweep_run = sweep_commands.add_parser(
        "run",
        help="run a sweep file; stored points are skipped (resume = rerun)",
        parents=[perf, sweep_store, sweep_tol],
    )
    sweep_run.add_argument("spec", help="versioned JSON sweep file")
    sweep_run.add_argument(
        "--no-progress", action="store_true",
        help="skip the heartbeat stream "
        "(<store>/sweeps/<name>.progress.jsonl)",
    )
    sweep_run.add_argument(
        "--baseline", default=None, metavar="SWEEP",
        help="after the run, regression-diff against this sweep "
        "(a report path or a sweep name in the store); dirty diff "
        "exits 1",
    )

    sweep_status_cmd = sweep_commands.add_parser(
        "status",
        help="which points of a sweep file are already in the store",
        parents=[sweep_store],
    )
    sweep_status_cmd.add_argument("spec", help="versioned JSON sweep file")

    sweep_diff = sweep_commands.add_parser(
        "diff",
        help="regression-compare two sweep reports",
        parents=[sweep_store, sweep_tol],
    )
    sweep_diff.add_argument(
        "baseline", help="baseline sweep (report path or name in store)"
    )
    sweep_diff.add_argument(
        "current", help="current sweep (report path or name in store)"
    )

    verify = commands.add_parser(
        "verify",
        help="differential, metamorphic, and fuzz verification",
    )
    verify_commands = verify.add_subparsers(
        dest="verify_command", required=True
    )

    # Tolerances shared by every verify subcommand (default: exact).
    verify_tol = argparse.ArgumentParser(add_help=False)
    verify_tol.add_argument(
        "--rel-tol", type=float, default=0.0,
        help="relative tolerance per compared value (default: exact)",
    )
    verify_tol.add_argument(
        "--abs-tol", type=float, default=0.0,
        help="absolute tolerance per compared value (default: exact)",
    )
    verify_tol.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the machine-readable report here",
    )

    verify_diff = verify_commands.add_parser(
        "diff",
        help="paired executions: backend / jobs / faults / policy "
        "agreement",
        parents=[verify_tol],
    )
    verify_diff.add_argument(
        "--fig", choices=["fig5", "fig7"], default=None,
        help="verify the scenario behind a reproduced figure",
    )
    verify_diff.add_argument(
        "--workload", default="bzip2", choices=WORKLOAD_CHOICES,
        help="workload for a custom scenario (ignored with --fig)",
    )
    verify_diff.add_argument(
        "--configs", nargs="+", default=None,
        choices=sorted(CONFIGURATIONS), metavar="CONFIG",
        help="configuration subset for a custom scenario",
    )
    verify_diff.add_argument(
        "--count", type=int, default=10,
        help="jobs per workload in a custom scenario",
    )
    verify_diff.add_argument("--seed", type=int, default=0)
    verify_diff.add_argument(
        "--pairs", nargs="+", default=["backend", "jobs", "faults"],
        choices=["backend", "jobs", "faults", "policy"],
        help="differential pairs to run",
    )
    verify_diff.add_argument(
        "--pair-jobs", type=int, default=2, metavar="N",
        help="worker count for the parallel arm of the jobs pair",
    )
    verify_diff.add_argument(
        "--pair-backend", default="fast", choices=["fast", "fast-vec"],
        help="fast arm of the backend pair (fast-vec needs numpy)",
    )
    verify_diff.add_argument(
        "--pair-policy", default="grow-shrink",
        choices=["grow-shrink", "bandwidth-steal"],
        help="adaptive policy whose disabled variant the policy pair "
        "checks against the wrapped static mode",
    )

    verify_laws = verify_commands.add_parser(
        "laws",
        help="metamorphic paper-level laws",
        parents=[verify_tol],
    )
    verify_laws.add_argument("--seed", type=int, default=0)
    verify_laws.add_argument(
        "--laws", nargs="+", default=None, metavar="LAW",
        help="subset of laws to check (default: all)",
    )
    verify_laws.add_argument(
        "--policy", default=None, metavar="POLICY",
        help="run the policy conformance laws instead, for one "
        "registered policy or 'all'",
    )

    verify_fuzz = verify_commands.add_parser(
        "fuzz",
        help="seeded scenario fuzzing with shrinking",
        parents=[verify_tol],
    )
    verify_fuzz.add_argument("--seed", type=int, default=0)
    verify_fuzz.add_argument(
        "--budget", default="60s",
        help="time budget, e.g. 60s or 2m (default 60s)",
    )
    verify_fuzz.add_argument(
        "--max-cases", type=int, default=None,
        help="stop after this many cases even within budget",
    )
    verify_fuzz.add_argument(
        "--out", default="verify-case.json", metavar="PATH",
        help="where to write a shrunk failing case",
    )
    verify_fuzz.add_argument(
        "--pairs", nargs="+", default=None,
        choices=["backend", "jobs", "faults", "policy"],
        help="pin the differential pairs (default: random per case)",
    )

    verify_replay = verify_commands.add_parser(
        "replay",
        help="re-run a saved verify-case.json",
        parents=[verify_tol],
    )
    verify_replay.add_argument(
        "case", help="path to a verify-case.json written by fuzz"
    )

    serve = commands.add_parser(
        "serve",
        help="run the admission/allocation server (SIGTERM drains)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8181,
        help="TCP port (0 = pick a free one and print it)",
    )
    serve.add_argument("--cores", type=int, default=4)
    serve.add_argument("--cache-ways", type=int, default=16)
    serve.add_argument("--bandwidth-share", type=float, default=1.0)
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="bounded admit queue; beyond it requests are shed",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=256,
        help="in-flight admissions above which health degrades",
    )
    serve.add_argument(
        "--max-loop-lag", type=float, default=0.25,
        help="event-loop lag (seconds) that counts as overload",
    )
    serve.add_argument(
        "--default-timeout", type=float, default=2.0,
        help="decision deadline for requests that do not set one",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=5.0,
        help="seconds to let queued work finish during drain",
    )
    serve.add_argument(
        "--breaker-trip-after", type=int, default=5,
        help="consecutive overloaded ticks before degrading a rung",
    )
    serve.add_argument(
        "--breaker-recover-after", type=int, default=20,
        help="consecutive healthy ticks before recovering a rung",
    )
    serve.add_argument("--seed", type=int, default=0)
    # dest names avoid the shared --metrics-out/--events-out plumbing:
    # the server owns its observer for its whole lifetime and flushes
    # artifacts at drain, not at command exit.
    serve.add_argument(
        "--metrics-out", dest="serve_metrics_out", default=None,
        metavar="PATH",
        help="write the final metrics snapshot here on drain",
    )
    serve.add_argument(
        "--events-out", dest="serve_events_out", default=None,
        metavar="PATH",
        help="write the event stream here on drain",
    )
    serve.add_argument(
        "--history-out", dest="serve_history_out", default=None,
        metavar="PATH",
        help="write the metric history (JSONL) here on drain",
    )
    serve.add_argument(
        "--flight-out", dest="serve_flight_out", default=None,
        metavar="PATH",
        help="flight-recorder dump target (written on breaker trip "
        "and on drain)",
    )
    serve.add_argument(
        "--history-capacity", type=int, default=512,
        help="history ring capacity; overflow halves resolution",
    )
    serve.add_argument(
        "--sample-every", type=int, default=4,
        help="housekeeping ticks between history samples",
    )
    serve.add_argument(
        "--flight-window", type=float, default=30.0,
        help="seconds of telemetry the flight recorder retains",
    )
    serve.add_argument(
        "--policy", choices=policy_names(), default=None,
        help="advisory closed-loop policy observing server health "
        "each housekeeping tick (decisions surface in /stats)",
    )

    loadgen = commands.add_parser(
        "loadgen",
        help="drive a running server with seeded bursty load",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8181)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--requests", type=int, default=500)
    loadgen.add_argument("--tenants", type=int, default=8)
    loadgen.add_argument(
        "--mean-rate", type=float, default=100.0,
        help="offered requests/second (mean; bursts exceed it)",
    )
    loadgen.add_argument(
        "--burst-factor", type=float, default=4.0,
        help="on-phase rate multiplier (1 = smooth Poisson)",
    )
    loadgen.add_argument(
        "--connections", type=int, default=8,
        help="concurrent keep-alive client connections",
    )
    loadgen.add_argument(
        "--time-scale", type=float, default=1.0,
        help="multiply all inter-arrival gaps (0.1 = 10x faster)",
    )
    loadgen.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the load report as JSON here",
    )

    top = commands.add_parser(
        "top",
        help="live dashboard over a serve target or sweep progress",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8181)
    top.add_argument(
        "--stats", default=None, metavar="PATH",
        help="render a saved /stats JSON payload instead of polling",
    )
    top.add_argument(
        "--history", default=None, metavar="PATH",
        help="render a saved metric-history JSONL instead of polling",
    )
    top.add_argument(
        "--sweep", default=None, metavar="NAME_OR_PATH",
        help="tail a sweep progress stream (name in the store, or a "
        "*.progress.jsonl path)",
    )
    top.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="results store for --sweep by name",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one frame (no escape codes) and exit",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between live frames",
    )
    top.add_argument(
        "--frames", type=int, default=None,
        help="stop after this many live frames (default: until ^C)",
    )

    cluster = commands.add_parser(
        "cluster", help="capacity-plan a multi-node server (Figure 2)"
    )
    cluster.add_argument("--nodes", type=int, default=4)
    cluster.add_argument(
        "--interarrival", type=float, default=0.3,
        help="mean job inter-arrival time in seconds",
    )
    cluster.add_argument(
        "--size", action="store_true",
        help="find the smallest cluster meeting --target acceptance",
    )
    cluster.add_argument("--target", type=float, default=0.95)
    return parser


HANDLERS = {
    "list": _cmd_list,
    "fig1": _cmd_fig1,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "curves": _cmd_curves,
    "faults": _cmd_faults,
    "cluster": _cmd_cluster,
    "profile": _cmd_profile,
    "obs": _cmd_obs,
    "sweep": _cmd_sweep,
    "verify": _cmd_verify,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "top": _cmd_top,
}


def _run_observed(args: argparse.Namespace) -> int:
    """Run the command with a live observer; write artifacts afterwards.

    The observer is installed for exactly one command invocation and
    restored in ``finally``, so repeated ``main()`` calls in one
    process (tests, notebooks) each start from empty registries —
    which is what makes the JSONL artifacts byte-identical across
    identically-seeded runs.
    """
    metrics_out = getattr(args, "metrics_out", None)
    events_out = getattr(args, "events_out", None)
    trace_out = getattr(args, "trace_out", None)
    observer = Observer()
    set_observer(observer)
    try:
        code = HANDLERS[args.command](args)
        footer = observability_lines()
    finally:
        reset_observer()
    if metrics_out:
        path = observer.metrics.write_jsonl(metrics_out)
        print(f"metrics written to {path}")
    if events_out:
        path = observer.events.write_jsonl(events_out)
        print(f"events written to {path}")
    if trace_out:
        path = observer.trace.write_jsonl(trace_out)
        print(f"trace written to {path}")
    for line in footer:
        print(line)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    # The perf knobs are session-wide: the setters mirror into the
    # environment so --jobs workers inherit them.
    if getattr(args, "cache_backend", None) is not None:
        set_default_backend(args.cache_backend)
    if getattr(args, "no_miss_cache", False):
        misscache.set_enabled(False)
    if (
        getattr(args, "metrics_out", None)
        or getattr(args, "events_out", None)
        or getattr(args, "trace_out", None)
    ):
        # --jobs N is fine here: parallel_map captures each worker's
        # telemetry and merges it deterministically, so the artifacts
        # match a serial run byte for byte.
        return _run_observed(args)
    return HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
