"""Fixed-latency DRAM model.

The machine model (Section 6 of the paper) uses a 4 GB main memory with
a 300-cycle access latency.  Bandwidth contention is layered on top by
:mod:`repro.mem.bandwidth`; this module provides the un-contended
latency plus accounting of reads and write-backs so the bandwidth model
can compute bus utilisation.
"""

from __future__ import annotations

from repro.util.validation import check_non_negative, check_positive


class DramModel:
    """Main memory with a constant access latency and traffic counters."""

    def __init__(
        self,
        *,
        latency_cycles: float = 300.0,
        size_bytes: int = 4 * 1024**3,
    ) -> None:
        check_non_negative("latency_cycles", latency_cycles)
        check_positive("size_bytes", size_bytes)
        self.latency_cycles = latency_cycles
        self.size_bytes = size_bytes
        self.reads = 0
        self.writebacks = 0
        # Fault injection: extra cycles added to every access while a
        # degradation window is active (e.g. a rank operating in a
        # reduced-power or error-retry state).  Zero by default, so
        # fault-free runs are byte-identical to the pre-fault model.
        self._latency_penalty_cycles = 0.0
        self.degraded_accesses = 0

    # -- fault injection --------------------------------------------------------

    @property
    def effective_latency_cycles(self) -> float:
        """Access latency including any active fault penalty."""
        return self.latency_cycles + self._latency_penalty_cycles

    @property
    def is_degraded(self) -> bool:
        """Whether a latency-degradation window is currently active."""
        return self._latency_penalty_cycles > 0.0

    def apply_latency_penalty(self, extra_cycles: float) -> None:
        """Start a degradation window adding ``extra_cycles`` per access."""
        check_non_negative("extra_cycles", extra_cycles)
        self._latency_penalty_cycles += extra_cycles

    def clear_latency_penalty(self) -> None:
        """End all degradation windows, restoring the nominal latency."""
        self._latency_penalty_cycles = 0.0

    def access(self, address: int) -> float:
        """Service one read (L2 miss fill); return its latency in cycles.

        Addresses beyond the memory size indicate a broken workload
        generator, so they fail loudly rather than wrapping silently.
        """
        if not 0 <= address < self.size_bytes:
            raise ValueError(
                f"address {address:#x} outside the {self.size_bytes}-byte "
                "main memory"
            )
        self.reads += 1
        if self._latency_penalty_cycles > 0.0:
            self.degraded_accesses += 1
            return self.effective_latency_cycles
        return self.latency_cycles

    def access_traced(
        self,
        address: int,
        *,
        trace,
        trace_id: str,
        now: float = 0.0,
        parent=None,
    ):
        """Serve one read and record it as a ``dram.access`` span.

        ``trace`` is a :class:`repro.obs.trace.TraceLog`; the span runs
        from ``now`` (cycles) for the access latency and notes whether a
        degradation window inflated it.  Returns ``(latency, span)``.
        """
        degraded = self.is_degraded
        latency = self.access(address)
        span = trace.span(
            trace_id,
            "dram.access",
            now,
            now + latency,
            parent=parent,
            degraded=degraded,
        )
        return latency, span

    def record_writeback(self) -> None:
        """Account one dirty-victim write-back (bandwidth only)."""
        self.writebacks += 1

    @property
    def total_transfers(self) -> int:
        """Reads plus write-backs — the unit of bus traffic."""
        return self.reads + self.writebacks

    def traffic_bytes(self, block_bytes: int) -> int:
        """Total bytes moved over the memory bus so far."""
        check_positive("block_bytes", block_bytes)
        return self.total_transfers * block_bytes

    def reset_counters(self) -> None:
        """Zero the traffic counters (e.g. between measurement intervals)."""
        self.reads = 0
        self.writebacks = 0
