"""Main-memory substrate.

- :mod:`repro.mem.dram` — fixed-latency DRAM model (300 cycles, 4 GB in
  the machine model) with access accounting.
- :mod:`repro.mem.bandwidth` — memory-bus bandwidth model (6.4 GB/s
  peak) with M/M/1-style queueing inflation and the Little's-law
  saturation guard from footnote 2 of the paper, which is what lets the
  resource-stealing controller disable itself at bus saturation.
- :mod:`repro.mem.fair_queue` — start-time fair-queuing bus scheduler,
  the substrate for bandwidth as a reserved RUM resource (the paper's
  stated future work, after Nesbit et al.'s VPC memory controller).
"""

from repro.mem.bandwidth import BandwidthModel
from repro.mem.dram import DramModel
from repro.mem.fair_queue import FairQueueBus, FcfsBus

__all__ = ["DramModel", "BandwidthModel", "FairQueueBus", "FcfsBus"]
