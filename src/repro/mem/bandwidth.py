"""Memory-bus bandwidth and queueing model.

The machine model gives the memory bus a 6.4 GB/s peak (Section 6).
Footnote 2 of the paper invokes Little's law: prior to saturation,
queueing delay on the bus is roughly constant, so resource stealing can
treat the L2 miss penalty ``tm`` as fixed — but stealing must be
*disabled* when the bus saturates, since extra misses then inflate
``tm`` for everyone.

We model the bus as an M/M/1-like server: given an offered load (bytes
per second of miss and write-back traffic), utilisation is
``rho = offered / peak`` and the queueing multiplier on the miss penalty
is ``1 / (1 - rho)``, clamped at a configurable saturation threshold.
"""

from __future__ import annotations

from typing import List

from repro.obs import get_observer
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_probability,
)


class BandwidthModel:
    """Shared memory-bus contention model."""

    def __init__(
        self,
        *,
        peak_bytes_per_second: float = 6.4e9,
        clock_hz: float = 2.0e9,
        block_bytes: int = 64,
        saturation_threshold: float = 0.9,
    ) -> None:
        check_positive("peak_bytes_per_second", peak_bytes_per_second)
        check_positive("clock_hz", clock_hz)
        check_positive("block_bytes", block_bytes)
        check_fraction("saturation_threshold", saturation_threshold)
        if saturation_threshold == 0:
            raise ValueError("saturation_threshold must be positive")
        self.peak_bytes_per_second = peak_bytes_per_second
        self.clock_hz = clock_hz
        self.block_bytes = block_bytes
        self.saturation_threshold = saturation_threshold
        # Active brown-out derates (fault injection).  Factors stack
        # multiplicatively: two overlapping 0.5× windows leave 25% of
        # peak.  With the stack empty the effective peak is *exactly*
        # ``peak_bytes_per_second`` (multiplying by nothing, not by a
        # float 1.0 product), keeping fault-free runs byte-identical.
        self._derate_factors: List[float] = []

    # -- fault injection --------------------------------------------------------

    @property
    def derate_factor(self) -> float:
        """Product of the active derate factors (1.0 when healthy)."""
        factor = 1.0
        for value in self._derate_factors:
            factor *= value
        return factor

    @property
    def effective_peak_bytes_per_second(self) -> float:
        """Peak bandwidth after any active brown-out derates."""
        if not self._derate_factors:
            return self.peak_bytes_per_second
        return self.peak_bytes_per_second * self.derate_factor

    def apply_derate(self, factor: float) -> None:
        """Start a brown-out: multiply the bus peak by ``factor``."""
        check_probability("factor", factor)
        if factor == 0:
            raise ValueError("a zero derate factor would sever the bus")
        self._derate_factors.append(factor)
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("mem.bus.derates_applied").inc()
            obs.metrics.gauge("mem.bus.derate_factor").set(
                self.derate_factor
            )

    def remove_derate(self, factor: float) -> None:
        """End one previously-applied brown-out window."""
        try:
            self._derate_factors.remove(factor)
        except ValueError:
            raise ValueError(
                f"no active derate with factor {factor} to remove"
            ) from None
        obs = get_observer()
        if obs.enabled:
            obs.metrics.gauge("mem.bus.derate_factor").set(
                self.derate_factor
            )

    # -- utilisation ------------------------------------------------------------

    def utilisation(self, transfers_per_cycle: float) -> float:
        """Bus utilisation for an aggregate block-transfer rate.

        ``transfers_per_cycle`` is the sum over running jobs of their L2
        misses plus write-backs per cycle.
        """
        if transfers_per_cycle < 0:
            raise ValueError(
                f"transfers_per_cycle must be non-negative, got "
                f"{transfers_per_cycle}"
            )
        offered = transfers_per_cycle * self.block_bytes * self.clock_hz
        return offered / self.effective_peak_bytes_per_second

    def utilisation_from_jobs(self, per_job_mpc: list) -> float:
        """Utilisation from a list of per-job misses-per-cycle values."""
        return self.utilisation(sum(per_job_mpc))

    # -- queueing ----------------------------------------------------------------

    def is_saturated(self, transfers_per_cycle: float) -> bool:
        """True when utilisation reaches the saturation threshold.

        The resource-stealing controller checks this and refuses to
        steal (footnote 2 of the paper): past this point extra misses
        raise everyone's effective miss penalty.
        """
        return self.utilisation(transfers_per_cycle) >= self.saturation_threshold

    @property
    def service_cycles(self) -> float:
        """Cycles the bus needs to move one cache block.

        64 bytes over 6.4 GB/s at 2 GHz is 20 cycles — the service time
        of the M/M/1 bus server.  Only this portion of a miss queues;
        the DRAM array access itself does not shrink with bus load.
        A brown-out derate stretches the service time proportionally.
        """
        return (
            self.block_bytes * self.clock_hz
            / self.effective_peak_bytes_per_second
        )

    def queueing_delay_cycles(self, transfers_per_cycle: float) -> float:
        """Mean extra cycles a miss waits for the bus (M/M/1 wait).

        ``W_q = S * rho / (1 - rho)`` with rho clamped at the saturation
        threshold (real buses back-pressure rather than diverge).  Per
        footnote 2 / Little's law, this stays small — a few cycles on a
        300-cycle miss — until utilisation approaches saturation.
        """
        rho = min(
            self.utilisation(transfers_per_cycle), self.saturation_threshold
        )
        return self.service_cycles * rho / (1.0 - rho)

    def penalty_multiplier(
        self, transfers_per_cycle: float, base_penalty: float
    ) -> float:
        """Multiplier on ``base_penalty`` from bus queueing."""
        check_positive("base_penalty", base_penalty)
        return 1.0 + self.queueing_delay_cycles(transfers_per_cycle) / base_penalty

    def breakdown(
        self, transfers_per_cycle: float, base_penalty: float
    ) -> dict:
        """One-call latency decomposition for an offered load.

        Returns utilisation, queueing delay, the penalty multiplier,
        and the saturation verdict together so instrumentation sites
        (``QoSSystemSimulator._recompute``) publish a consistent set of
        gauges from a single evaluation.  The multiplier and verdict
        are computed with the exact expressions of
        :meth:`penalty_multiplier` and :meth:`is_saturated`, so
        switching a call site to ``breakdown`` cannot move a simulated
        trajectory.
        """
        check_positive("base_penalty", base_penalty)
        utilisation = self.utilisation(transfers_per_cycle)
        queueing = self.queueing_delay_cycles(transfers_per_cycle)
        return {
            "utilisation": utilisation,
            "queueing_delay_cycles": queueing,
            "penalty_multiplier": 1.0 + queueing / base_penalty,
            "saturated": utilisation >= self.saturation_threshold,
        }

    def max_transfers_per_cycle(self) -> float:
        """Block transfers per cycle at 100% bus utilisation."""
        return self.effective_peak_bytes_per_second / (
            self.block_bytes * self.clock_hz
        )
