"""Fair-queuing memory-bus scheduler (the paper's future work).

Section 3.2 notes that a complete RUM QoS target "would include
off-chip bandwidth rate"; the paper leaves bandwidth partitioning to
future work, citing Nesbit et al.'s Virtual Private Caches, which pair
cache partitions with a **fair-queuing memory controller**.  This
module implements that substrate so bandwidth can be a first-class
reserved resource:

- Each core is assigned a bandwidth *share* (fraction of the bus).
- Every request is stamped with its virtual start time
  ``VST = max(arrival, last_VFT(core))`` (the core's previous virtual
  finish being ``VFT = VST + service / share``), and the bus serves the
  *eligible* — already-arrived — pending request with the smallest VST
  (start-time fair queuing, SFQ).
- The guarantee: a core with share φ observes service no worse than a
  private bus of capacity φ · peak, *regardless* of how aggressively
  other cores inject — the property FCFS lacks.
- The scheduler is work-conserving: unused shares are consumed by
  whoever is backlogged.

A FCFS baseline is included for the ablation bench that demonstrates
the isolation property.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List

from repro.obs import get_observer
from repro.obs.trace import derive_trace_id
from repro.util.stats import RunningStats
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CompletedRequest:
    """One serviced memory request."""

    core_id: int
    arrival: float
    start: float
    finish: float

    @property
    def latency(self) -> float:
        """Queueing + service time, in cycles."""
        return self.finish - self.arrival


@dataclass
class _PendingRequest:
    core_id: int
    arrival: float
    tag: float  # virtual start time (fair queue) or arrival (FCFS)
    sequence: int


class _BusBase:
    """Common machinery: request intake, busy tracking, statistics."""

    def __init__(self, *, service_cycles: float = 20.0) -> None:
        check_positive("service_cycles", service_cycles)
        self.service_cycles = service_cycles
        self._pending: List[tuple] = []  # heap of (tag, seq, request)
        self._sequence = itertools.count()
        self._bus_free_at = 0.0
        self.completed: List[CompletedRequest] = []
        self.per_core_latency: Dict[int, RunningStats] = {}

    def _tag(self, core_id: int, arrival: float) -> float:
        raise NotImplementedError

    def submit(self, core_id: int, arrival: float) -> None:
        """Queue one block request from ``core_id`` at cycle ``arrival``."""
        check_non_negative("arrival", arrival)
        request = _PendingRequest(
            core_id=core_id,
            arrival=arrival,
            tag=self._tag(core_id, arrival),
            sequence=next(self._sequence),
        )
        heapq.heappush(
            self._pending, (request.tag, request.sequence, request)
        )

    def drain(self) -> List[CompletedRequest]:
        """Serve every queued request; return completions.

        Requests are assumed already submitted (offline schedule).  At
        each service decision the bus picks the smallest-tag request
        *among those already arrived* by the bus-free time; only when
        nothing has arrived does it idle, jumping the clock to the
        earliest pending arrival.  Serving strictly in global tag order
        instead (the old behaviour) let the bus sit idle waiting for a
        small-tag request's arrival while an arrived larger-tag request
        was pending — violating the work-conservation property promised
        above.
        """
        obs = get_observer()
        emit_grants = obs.enabled
        # Not-yet-arrived requests, ordered by arrival (ties: tag, seq).
        arrivals: List[tuple] = [
            (request.arrival, tag, seq, request)
            for tag, seq, request in self._pending
        ]
        heapq.heapify(arrivals)
        self._pending = []
        # Arrived requests, ordered by tag (ties: submission order).
        eligible: List[tuple] = []
        while arrivals or eligible:
            if not eligible:
                # Idle bus, nothing arrived: jump to the next arrival.
                self._bus_free_at = max(
                    self._bus_free_at, arrivals[0][0]
                )
            while arrivals and arrivals[0][0] <= self._bus_free_at:
                arrival, tag, seq, request = heapq.heappop(arrivals)
                heapq.heappush(eligible, (tag, seq, request))
            _, _, request = heapq.heappop(eligible)
            start = max(self._bus_free_at, request.arrival)
            finish = start + self.service_cycles
            self._bus_free_at = finish
            completed = CompletedRequest(
                core_id=request.core_id,
                arrival=request.arrival,
                start=start,
                finish=finish,
            )
            self.completed.append(completed)
            self.per_core_latency.setdefault(
                request.core_id, RunningStats()
            ).add(completed.latency)
            if emit_grants:
                obs.metrics.counter(
                    "mem.fairqueue.grants", core=request.core_id
                ).inc()
                obs.events.emit(
                    "bus_grant",
                    start,
                    core_id=request.core_id,
                    arrival=request.arrival,
                    finish=finish,
                    tag=request.tag,
                )
                # One trace per request, named by (core, submission
                # sequence): a bus.request root split into the queueing
                # wait and the service occupancy, so per-request latency
                # decomposes by cause.
                trace_id = derive_trace_id(
                    "bus", request.core_id, request.sequence
                )
                root = obs.trace.span(
                    trace_id,
                    "bus.request",
                    request.arrival,
                    finish,
                    core=request.core_id,
                    tag=request.tag,
                )
                obs.trace.span(
                    trace_id, "bus.queue", request.arrival, start, parent=root
                )
                obs.trace.span(
                    trace_id, "bus.service", start, finish, parent=root
                )
        return self.completed

    def mean_latency(self, core_id: int) -> float:
        """Mean request latency seen by ``core_id``."""
        try:
            return self.per_core_latency[core_id].mean
        except KeyError:
            raise ValueError(f"core {core_id} issued no requests") from None


class FcfsBus(_BusBase):
    """First-come-first-served baseline: no isolation whatsoever."""

    def _tag(self, core_id: int, arrival: float) -> float:
        return arrival


class FairQueueBus(_BusBase):
    """Start-time fair-queuing bus with per-core shares."""

    def __init__(
        self,
        shares: Dict[int, float],
        *,
        service_cycles: float = 20.0,
    ) -> None:
        super().__init__(service_cycles=service_cycles)
        if not shares:
            raise ValueError("at least one core share is required")
        total = sum(shares.values())
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"shares sum to {total}, exceeding the bus capacity"
            )
        for core_id, share in shares.items():
            if share <= 0:
                raise ValueError(
                    f"share for core {core_id} must be positive, got "
                    f"{share}"
                )
        self.shares = dict(shares)
        self._last_vft: Dict[int, float] = {
            core_id: 0.0 for core_id in shares
        }

    def _tag(self, core_id: int, arrival: float) -> float:
        try:
            share = self.shares[core_id]
        except KeyError:
            raise ValueError(
                f"core {core_id} has no bandwidth share"
            ) from None
        # Start-time fair queuing tags by the *virtual start*: the later
        # of the request's arrival (virtual time ~ real time here) and
        # the core's previous virtual finish.  The finish — start plus
        # service inflated by 1/share — only advances the core's VFT
        # chain; tagging by the finish (the old behaviour) is SFQ's
        # sibling FFQ, which penalises low-share cores' first requests
        # by their whole inflated service time.
        start = max(arrival, self._last_vft[core_id])
        self._last_vft[core_id] = start + self.service_cycles / share
        return start

    def set_share(self, core_id: int, share: float) -> bool:
        """Retarget ``core_id``'s share at runtime; return True iff changed.

        The policy engine's actuation-idempotence law relies on the no-op
        check: re-applying an already-applied share returns ``False`` and
        leaves the VFT chain untouched.  New cores start their VFT chain at
        zero, exactly as at construction.
        """
        if share <= 0:
            raise ValueError(
                f"share for core {core_id} must be positive, got {share}"
            )
        current = self.shares.get(core_id)
        if current == share:
            return False
        others = sum(s for c, s in self.shares.items() if c != core_id)
        if others + share > 1.0 + 1e-9:
            raise ValueError(
                f"share {share} for core {core_id} would push the total to "
                f"{others + share}, exceeding the bus capacity"
            )
        self.shares[core_id] = share
        self._last_vft.setdefault(core_id, 0.0)
        return True

    def guaranteed_latency_bound(self, core_id: int, backlog: int) -> float:
        """Worst-case latency of the ``backlog``-th queued request.

        A core with share φ is served at least at rate φ/service, so
        its k-th backlogged request finishes within ``k * service / φ``
        plus one residual service time (the request in flight when it
        arrived) — the classic fair-queuing bound.
        """
        check_positive("backlog", backlog)
        share = self.shares[core_id]
        return backlog * self.service_cycles / share + self.service_cycles
