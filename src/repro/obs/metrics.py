"""The metrics registry: named counters, gauges, and histograms.

Every subsystem that used to keep ad-hoc dicts of counts (cache stats,
LAC bookkeeping, fault tallies) can publish through one registry
instead, so a run's numbers are inspectable in one place and exportable
as machine-readable JSONL (the reproducibility argument of the gem5
standardization work).

Names are hierarchical dotted paths (``cache.l2.core0.misses``); an
optional label mapping refines a name without exploding the namespace
(``counter("mem.bus.grants", core=3)``).  Labels are canonicalised into
the metric key in sorted order, so the same label set always maps to
the same series.

Snapshots are deterministic: keys are emitted sorted, values reflect
only what was recorded (never the host wall clock), and histogram
buckets serialise in edge order — two identically-seeded runs produce
byte-identical exports.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.util.stats import Histogram, RunningStats, SampleStats

MetricValue = Union[int, float]


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical series key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not name:
        raise ValueError("metric name must be non-empty")
    if not labels:
        return name
    rendered = ",".join(
        f"{key}={labels[key]}" for key in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: MetricValue = 0

    def inc(self, amount: MetricValue = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(
                f"counters only increase; got increment {amount}"
            )
        self.value += amount


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: MetricValue = 0

    def set(self, value: MetricValue) -> None:
        """Record the current value."""
        self.value = value

    def add(self, delta: MetricValue) -> None:
        """Shift the current value by ``delta``."""
        self.value += delta


class MetricsRegistry:
    """Process-local registry of named metric series.

    Series are created on first touch, so instrumentation sites never
    need a registration step; the same ``(name, labels)`` always
    returns the same underlying object.
    """

    def __init__(self, *, record_samples: bool = False) -> None:
        # ``record_samples`` makes summaries retain their raw samples
        # (``SampleStats``) so a parent registry can merge them by exact
        # replay — the worker-telemetry mode of ``parallel_map``.
        self._record_samples = record_samples
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._summaries: Dict[str, RunningStats] = {}

    # -- series accessors -------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = metric_key(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = metric_key(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(
        self, name: str, *, bucket_width: float = 1.0, **labels: object
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use.

        ``bucket_width`` only applies at creation; later calls return
        the existing histogram unchanged.
        """
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(
                bucket_width=bucket_width
            )
        return histogram

    def summary(self, name: str, **labels: object) -> RunningStats:
        """Streaming mean/min/max/variance series, created on first use."""
        key = metric_key(name, labels)
        summary = self._summaries.get(key)
        if summary is None:
            summary = self._summaries[key] = (
                SampleStats() if self._record_samples else RunningStats()
            )
        return summary

    # -- merging ----------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one.

        The deterministic-aggregation contract of ``parallel_map``:
        applying each worker's registry *in input order* reproduces the
        serial run's registry exactly —

        - counters add (commutative; integer increments are exact),
        - gauges take the incoming value (last write in input order
          wins, matching serial execution order),
        - histogram bucket tables add (integers, exact),
        - summaries replay the incoming side's retained samples when it
          recorded them (bit-exact vs serial), falling back to pairwise
          Welford merge (exact count/min/max, mean to float rounding).
        """
        for key, counter in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                mine = self._counters[key] = Counter()
            mine.value += counter.value
        for key, gauge in other._gauges.items():
            mine = self._gauges.get(key)
            if mine is None:
                mine = self._gauges[key] = Gauge()
            mine.value = gauge.value
        for key, histogram in other._histograms.items():
            current = self._histograms.get(key)
            if current is None:
                current = Histogram(bucket_width=histogram.bucket_width)
            self._histograms[key] = current.merge(histogram)
        for key, summary in other._summaries.items():
            mine = self._summaries.get(key)
            samples = getattr(summary, "samples", None)
            if samples is not None:
                if mine is None:
                    mine = self._summaries[key] = (
                        SampleStats()
                        if self._record_samples
                        else RunningStats()
                    )
                for value in samples:
                    mine.add(value)
            elif mine is None:
                self._summaries[key] = RunningStats().merge(summary)
            else:
                self._summaries[key] = mine.merge(summary)

    # -- export -----------------------------------------------------------------

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
            + len(self._summaries)
        )

    def snapshot(self) -> List[dict]:
        """All series as plain records, sorted by (type, key).

        The records contain only simulation-derived values, so the
        snapshot of a seeded run is reproducible byte for byte.
        """
        records: List[dict] = []
        for key in sorted(self._counters):
            records.append(
                {
                    "type": "counter",
                    "name": key,
                    "value": self._counters[key].value,
                }
            )
        for key in sorted(self._gauges):
            records.append(
                {
                    "type": "gauge",
                    "name": key,
                    "value": self._gauges[key].value,
                }
            )
        for key in sorted(self._histograms):
            histogram = self._histograms[key]
            records.append(
                {
                    "type": "histogram",
                    "name": key,
                    "bucket_width": histogram.bucket_width,
                    "count": histogram.count,
                    "buckets": [
                        [edge, count] for edge, count in histogram.buckets()
                    ],
                }
            )
        for key in sorted(self._summaries):
            summary = self._summaries[key]
            record = {
                "type": "summary",
                "name": key,
                "count": summary.count,
                "mean": summary.mean,
            }
            if summary.count:
                record["min"] = summary.minimum
                record["max"] = summary.maximum
            records.append(record)
        return records

    def to_jsonl_lines(self) -> Iterator[str]:
        """One compact, key-sorted JSON object per series."""
        for record in self.snapshot():
            yield json.dumps(record, sort_keys=True, separators=(",", ":"))

    def write_jsonl(self, path) -> str:
        """Write the snapshot to ``path`` as JSONL; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.to_jsonl_lines():
                handle.write(line + "\n")
        return str(path)

    def scalar_series(self) -> Dict[str, MetricValue]:
        """Counters and gauges as one flat ``{key: value}`` mapping.

        The time-series sampler's read path: scalars are what a
        history stream can difference into rates, and skipping the
        histogram/summary serialisation keeps the periodic sample
        cheap.  Keys are the canonical metric keys; counters and
        gauges share the namespace (they never collide in practice —
        instrument sites pick one type per name).
        """
        series: Dict[str, MetricValue] = {}
        for key in sorted(self._counters):
            series[key] = self._counters[key].value
        for key in sorted(self._gauges):
            series[key] = self._gauges[key].value
        return series

    def value_of(self, name: str, **labels: object) -> Optional[MetricValue]:
        """Counter or gauge value by key, or ``None`` if never touched.

        A read-only probe for tests and report footers — unlike the
        accessors it does not create the series.
        """
        key = metric_key(name, labels)
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return None

    def totals(self) -> Tuple[int, MetricValue]:
        """(number of series, sum of all counter values) for footers."""
        return (
            len(self),
            sum(counter.value for counter in self._counters.values()),
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: MetricValue = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: MetricValue) -> None:
        pass

    def add(self, delta: MetricValue) -> None:
        pass


class _NullHistogram(Histogram):
    def add(self, value: float) -> None:
        pass


class _NullSummary(RunningStats):
    def add(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram(bucket_width=1.0)
_NULL_SUMMARY = _NullSummary()


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments are shared no-ops.

    The disabled observer's metrics sink.  A plain ``MetricsRegistry``
    here would make every *unguarded* ``obs.metrics`` call on the null
    observer allocate and accumulate series for the life of the process
    — a slow leak that also broke the zero-cost-when-disabled contract.
    The accessors hand back singletons that record nothing, so the
    backing dicts stay empty and ``snapshot()`` stays ``[]`` forever.
    """

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, *, bucket_width: float = 1.0, **labels: object
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def summary(self, name: str, **labels: object) -> RunningStats:
        return _NULL_SUMMARY
