"""``repro.obs`` — structured observability for the simulator stack.

Coordinated pieces (the MGSim-style monitoring layer the ROADMAP
calls for):

- :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges,
  histograms and summaries with hierarchical dotted names and labels.
- :class:`~repro.obs.events.EventLog` — an append-only, seed-
  deterministic JSONL event stream with a versioned schema.
- :class:`~repro.obs.trace.TraceLog` — causal span trees (request
  traces) with ids derived from simulated identity, never randomness.
- :class:`~repro.obs.profiler.PhaseProfiler` — context-manager spans
  measuring per-phase wall clock and engine event counts.
- :class:`~repro.obs.slo.SloMonitor` — projection-based QoS/SLO
  violation tracking (driven by the system simulator).
- :mod:`repro.obs.export` / :mod:`repro.obs.diff` — Prometheus-text
  and summary-JSON exporters, and cross-run regression diffing.

An :class:`Observer` bundles the sinks.  Instrumentation sites fetch
the process-wide observer with :func:`get_observer` and guard with
``obs.enabled``::

    obs = get_observer()
    if obs.enabled:
        obs.events.emit("admission", now, job_id=3, accepted=True)

The default observer is :data:`NULL_OBSERVER` — disabled, with no-op
sinks — so an un-instrumented run pays one attribute check per
instrumentation site and nothing else (the zero-cost-when-disabled
contract; ``bench_perf_kernel`` guards the budget).  The CLI installs a
live observer when ``--metrics-out``/``--events-out`` is given.

Determinism contract: everything written to the metrics/events JSONL
files derives from simulated state only (simulated times, seeded
draws, counter values).  Host wall clock appears solely in the
human-facing profiler footer, never in the files, so two runs of the
same seeded command produce byte-identical artefacts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.events import (
    SCHEMA_VERSION,
    EventLog,
    EventSchemaError,
    validate_jsonl,
    validate_record,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    NullMetricsRegistry,
    metric_key,
)
from repro.obs.profiler import PhaseProfiler, PhaseRecord
from repro.obs.timeseries import (
    HISTORY_VERSION,
    FlightRecorder,
    HistoryRing,
    HistorySchemaError,
    HistoryWriter,
    MetricsSampler,
    history_point,
    load_history_jsonl,
    validate_history_jsonl,
    validate_history_record,
    write_history_jsonl,
)
from repro.obs.slo import (
    JobSloSummary,
    SloMonitor,
    SloReport,
)
from repro.obs.trace import (
    NullTraceLog,
    Span,
    TraceError,
    TraceLog,
    derive_trace_id,
)

__all__ = [
    "SCHEMA_VERSION",
    "Counter",
    "EventLog",
    "EventSchemaError",
    "FlightRecorder",
    "Gauge",
    "HISTORY_VERSION",
    "HistoryRing",
    "HistorySchemaError",
    "HistoryWriter",
    "JobSloSummary",
    "MetricsSampler",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullMetricsRegistry",
    "NullTraceLog",
    "Observer",
    "PhaseProfiler",
    "PhaseRecord",
    "SloMonitor",
    "SloReport",
    "Span",
    "TraceError",
    "TraceLog",
    "derive_trace_id",
    "get_observer",
    "history_point",
    "load_history_jsonl",
    "metric_key",
    "observed",
    "reset_observer",
    "set_observer",
    "validate_history_jsonl",
    "validate_history_record",
    "validate_jsonl",
    "validate_record",
    "write_history_jsonl",
]


class Observer:
    """A live observability hub: registry + events + traces + profiler."""

    enabled = True

    def __init__(self, *, record_samples: bool = False) -> None:
        # ``record_samples`` flows to the registry so worker observers
        # retain summary samples for the exact-replay merge in
        # ``parallel_map`` (see MetricsRegistry.merge).
        self.metrics = MetricsRegistry(record_samples=record_samples)
        self.events = EventLog()
        self.trace = TraceLog()
        self.profiler = PhaseProfiler()

    def footer_lines(self) -> List[str]:
        """Human-facing summary for CLI/report footers.

        Includes host wall-clock per phase — fine for a footer, which
        is why this never goes into the deterministic JSONL artefacts.
        """
        series, counted = self.metrics.totals()
        summary = (
            f"observability: {len(self.events)} events "
            f"({len(self.events.kinds())} kinds), {series} metric series "
            f"(counter total {counted})"
        )
        if len(self.trace):
            summary += (
                f", {len(self.trace)} spans "
                f"({len(self.trace.trace_ids())} traces)"
            )
        lines = [summary]
        lines.extend(f"  phase {line}" for line in self.profiler.lines())
        return lines

    def absorb(self, other: "Observer") -> None:
        """Fold another observer's telemetry into this one.

        The parent-side half of the worker-telemetry contract: metrics
        merge (counters add, gauges last-write-wins, summaries replay),
        events rebase onto this log's sequence space, trace spans append
        verbatim (their ids embed the traced identity), and profiler
        phases accumulate.  Applying workers in input order reproduces
        the serial run's telemetry.
        """
        self.metrics.merge(other.metrics)
        self.events.extend_rebased(other.events.records)
        self.trace.merge(other.trace)
        self.profiler.merge(other.profiler)


class _NullEventLog(EventLog):
    """Event sink that drops everything."""

    def emit(self, kind: str, t: float, **fields: object) -> None:
        pass


class _NullProfiler(PhaseProfiler):
    """Profiler whose spans cost nothing and record nothing."""

    @contextmanager
    def span(self, name: str, *, event_source=None) -> Iterator[PhaseRecord]:
        yield PhaseRecord(name)


class NullObserver(Observer):
    """Disabled observer: the default, with no-op sinks.

    ``enabled`` is False, so guarded sites skip it entirely; the no-op
    sinks make even unguarded calls safe and allocation-free.  The
    metrics sink matters most: a live registry here would let unguarded
    ``obs.metrics`` calls accumulate series in a process-global object
    for the life of the process (a slow leak that also skewed the first
    *enabled* observer installed afterwards in long-lived processes
    that reused the registry object).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self.metrics = NullMetricsRegistry()
        self.events = _NullEventLog()
        self.trace = NullTraceLog()
        self.profiler = _NullProfiler()


#: The process default: observability off.
NULL_OBSERVER = NullObserver()

_observer: Observer = NULL_OBSERVER


def get_observer() -> Observer:
    """The process-wide observer (``NULL_OBSERVER`` unless installed)."""
    return _observer


def set_observer(observer: Observer) -> None:
    """Install ``observer`` as the process-wide sink."""
    global _observer
    _observer = observer


def reset_observer() -> None:
    """Restore the disabled default."""
    set_observer(NULL_OBSERVER)


@contextmanager
def observed(observer: Optional[Observer] = None) -> Iterator[Observer]:
    """Scope a live observer: install on entry, restore on exit.

    ``with observed() as obs:`` is the test-friendly way to capture a
    block's events and metrics without leaking global state.
    """
    if observer is None:
        observer = Observer()
    previous = get_observer()
    set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)
