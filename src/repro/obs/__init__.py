"""``repro.obs`` — structured observability for the simulator stack.

Three coordinated pieces (the MGSim-style monitoring layer the ROADMAP
calls for):

- :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges,
  histograms and summaries with hierarchical dotted names and labels.
- :class:`~repro.obs.events.EventLog` — an append-only, seed-
  deterministic JSONL event stream with a versioned schema.
- :class:`~repro.obs.profiler.PhaseProfiler` — context-manager spans
  measuring per-phase wall clock and engine event counts.

An :class:`Observer` bundles the three.  Instrumentation sites fetch
the process-wide observer with :func:`get_observer` and guard with
``obs.enabled``::

    obs = get_observer()
    if obs.enabled:
        obs.events.emit("admission", now, job_id=3, accepted=True)

The default observer is :data:`NULL_OBSERVER` — disabled, with no-op
sinks — so an un-instrumented run pays one attribute check per
instrumentation site and nothing else (the zero-cost-when-disabled
contract; ``bench_perf_kernel`` guards the budget).  The CLI installs a
live observer when ``--metrics-out``/``--events-out`` is given.

Determinism contract: everything written to the metrics/events JSONL
files derives from simulated state only (simulated times, seeded
draws, counter values).  Host wall clock appears solely in the
human-facing profiler footer, never in the files, so two runs of the
same seeded command produce byte-identical artefacts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.events import (
    SCHEMA_VERSION,
    EventLog,
    EventSchemaError,
    validate_jsonl,
    validate_record,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, metric_key
from repro.obs.profiler import PhaseProfiler, PhaseRecord

__all__ = [
    "SCHEMA_VERSION",
    "Counter",
    "EventLog",
    "EventSchemaError",
    "Gauge",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observer",
    "PhaseProfiler",
    "PhaseRecord",
    "get_observer",
    "metric_key",
    "observed",
    "set_observer",
    "validate_jsonl",
    "validate_record",
]


class Observer:
    """A live observability hub: registry + event log + profiler."""

    enabled = True

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.events = EventLog()
        self.profiler = PhaseProfiler()

    def footer_lines(self) -> List[str]:
        """Human-facing summary for CLI/report footers.

        Includes host wall-clock per phase — fine for a footer, which
        is why this never goes into the deterministic JSONL artefacts.
        """
        series, counted = self.metrics.totals()
        lines = [
            f"observability: {len(self.events)} events "
            f"({len(self.events.kinds())} kinds), {series} metric series "
            f"(counter total {counted})",
        ]
        lines.extend(f"  phase {line}" for line in self.profiler.lines())
        return lines


class _NullEventLog(EventLog):
    """Event sink that drops everything."""

    def emit(self, kind: str, t: float, **fields: object) -> None:
        pass


class _NullProfiler(PhaseProfiler):
    """Profiler whose spans cost nothing and record nothing."""

    @contextmanager
    def span(self, name: str, *, event_source=None) -> Iterator[PhaseRecord]:
        yield PhaseRecord(name)


class NullObserver(Observer):
    """Disabled observer: the default, with no-op sinks.

    ``enabled`` is False, so guarded sites skip it entirely; the no-op
    sinks make even unguarded calls safe (and allocation-free for the
    event log).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self.events = _NullEventLog()
        self.profiler = _NullProfiler()


#: The process default: observability off.
NULL_OBSERVER = NullObserver()

_observer: Observer = NULL_OBSERVER


def get_observer() -> Observer:
    """The process-wide observer (``NULL_OBSERVER`` unless installed)."""
    return _observer


def set_observer(observer: Observer) -> None:
    """Install ``observer`` as the process-wide sink."""
    global _observer
    _observer = observer


def reset_observer() -> None:
    """Restore the disabled default."""
    set_observer(NULL_OBSERVER)


@contextmanager
def observed(observer: Optional[Observer] = None) -> Iterator[Observer]:
    """Scope a live observer: install on entry, restore on exit.

    ``with observed() as obs:`` is the test-friendly way to capture a
    block's events and metrics without leaking global state.
    """
    if observer is None:
        observer = Observer()
    previous = get_observer()
    set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)
