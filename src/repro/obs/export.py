"""Exporters over metrics snapshots: Prometheus text and summary JSON.

The registry's JSONL snapshot is the canonical artefact (byte-stable,
diffable, checked into CI baselines).  This module derives the two
*presentation* formats people actually paste into other tools:

- :func:`prometheus_lines` — the Prometheus text exposition format
  (``# TYPE`` headers, dotted names flattened to underscores, labels
  quoted), so a run's numbers drop straight into promtool or a
  Grafana "explore" box.
- :func:`summary_dict` — a compact roll-up (series counts by type,
  counter totals, event-kind tallies) for the ``repro obs summarize``
  command and the summary-JSON artefact.

Both are pure functions over parsed snapshot records, so they work on
a live registry (``registry.snapshot()``) and on a loaded artefact
(:func:`load_metrics_jsonl`) alike.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterator, List, Optional, Tuple

# DOTALL + \Z so label values containing newlines still parse — the
# exposition renderer escapes them, but the canonical key carries them
# raw.
_KEY_RE = re.compile(
    r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?\Z", re.DOTALL
)

_INVALID_PROM_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a canonical series key back into ``(name, labels)``.

    Inverse of :func:`repro.obs.metrics.metric_key` for the label
    values' string forms: ``"mem.bus.grants{core=3}"`` →
    ``("mem.bus.grants", {"core": "3"})``.
    """
    match = _KEY_RE.match(key)
    if match is None or not match.group("name"):
        raise ValueError(f"unparsable metric key {key!r}")
    name = match.group("name")
    rendered = match.group("labels")
    labels: Dict[str, str] = {}
    if rendered:
        for part in rendered.split(","):
            label, _, value = part.partition("=")
            if not label:
                raise ValueError(f"unparsable label {part!r} in {key!r}")
            labels[label] = value
    return name, labels


def _prometheus_name(name: str) -> str:
    """Flatten a dotted series name into the Prometheus charset."""
    flattened = _INVALID_PROM_CHARS.sub("_", name)
    if flattened and flattened[0].isdigit():
        flattened = "_" + flattened
    return flattened


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format.

    Backslash, double quote, and newline are the three characters the
    format reserves inside quoted label values.  Order matters:
    backslashes first, or the escapes themselves get re-escaped.
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prometheus_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{_prometheus_name(key)}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + rendered + "}"


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    # Prometheus spells the special values NaN/+Inf/-Inf — Python's
    # repr ("nan"/"inf") is not parseable by promtool.
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def prometheus_lines(records: List[dict]) -> Iterator[str]:
    """Render snapshot records in the Prometheus text format.

    Histograms become the conventional ``_bucket``/``_count`` series
    with cumulative ``le`` edges; summaries become ``_count``/``_mean``
    (plus min/max gauges when present).  Output order follows the
    snapshot, which is already sorted — so the text is deterministic.
    """
    typed_header_done: Dict[str, str] = {}

    def header(name: str, prom_type: str) -> Iterator[str]:
        if typed_header_done.get(name) != prom_type:
            typed_header_done[name] = prom_type
            yield f"# TYPE {name} {prom_type}"

    for record in records:
        name, labels = parse_metric_key(record["name"])
        flat = _prometheus_name(name)
        kind = record["type"]
        if kind == "counter":
            yield from header(flat + "_total", "counter")
            yield (
                f"{flat}_total{_prometheus_labels(labels)} "
                f"{_format_value(record['value'])}"
            )
        elif kind == "gauge":
            yield from header(flat, "gauge")
            yield (
                f"{flat}{_prometheus_labels(labels)} "
                f"{_format_value(record['value'])}"
            )
        elif kind == "histogram":
            yield from header(flat, "histogram")
            cumulative = 0
            width = record["bucket_width"]
            for edge, count in record["buckets"]:
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(edge + width)
                yield (
                    f"{flat}_bucket{_prometheus_labels(bucket_labels)} "
                    f"{cumulative}"
                )
            infinity_labels = dict(labels)
            infinity_labels["le"] = "+Inf"
            yield (
                f"{flat}_bucket{_prometheus_labels(infinity_labels)} "
                f"{record['count']}"
            )
            yield (
                f"{flat}_count{_prometheus_labels(labels)} "
                f"{record['count']}"
            )
        elif kind == "summary":
            yield from header(flat, "summary")
            yield (
                f"{flat}_count{_prometheus_labels(labels)} "
                f"{record['count']}"
            )
            yield (
                f"{flat}_mean{_prometheus_labels(labels)} "
                f"{_format_value(record['mean'])}"
            )
            for bound in ("min", "max"):
                if bound in record:
                    yield (
                        f"{flat}_{bound}{_prometheus_labels(labels)} "
                        f"{_format_value(record[bound])}"
                    )
        else:
            raise ValueError(f"unknown snapshot record type {kind!r}")


def prometheus_text(records: List[dict]) -> str:
    """The full Prometheus exposition as one string (for ``/metrics``).

    An empty snapshot renders as the empty string — a lone ``"\\n"``
    is not a valid exposition body.
    """
    lines = list(prometheus_lines(records))
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def summary_dict(
    records: List[dict], events: Optional[List[dict]] = None
) -> dict:
    """Compact roll-up of a run's telemetry for ``repro obs summarize``.

    Deterministic: all values derive from the artefacts, keys sort on
    serialisation.
    """
    by_type: Dict[str, int] = {}
    counter_total: float = 0
    top_counters: List[Tuple[str, object]] = []
    for record in records:
        by_type[record["type"]] = by_type.get(record["type"], 0) + 1
        if record["type"] == "counter":
            counter_total += record["value"]
            top_counters.append((record["name"], record["value"]))
    top_counters.sort(key=lambda item: (-item[1], item[0]))
    summary = {
        "series": len(records),
        "series_by_type": by_type,
        "counter_total": counter_total,
        "top_counters": [
            {"name": name, "value": value}
            for name, value in top_counters[:10]
        ],
    }
    if events is not None:
        kinds: Dict[str, int] = {}
        for event in events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        summary["events"] = len(events)
        summary["event_kinds"] = kinds
        if events:
            summary["t_first"] = events[0]["t"]
            summary["t_last"] = events[-1]["t"]
    return summary


# -- artefact loading ---------------------------------------------------------------


def _load_jsonl(path) -> List[dict]:
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number + 1}: invalid JSON: {error}"
                ) from None
    return records


def load_metrics_jsonl(path) -> List[dict]:
    """Parse a metrics snapshot written by ``MetricsRegistry.write_jsonl``."""
    records = _load_jsonl(path)
    for record in records:
        if "type" not in record or "name" not in record:
            raise ValueError(
                f"{path}: not a metrics snapshot (record {record!r})"
            )
    return records


def load_events_jsonl(path) -> List[dict]:
    """Parse an event stream written by ``EventLog.write_jsonl``."""
    records = _load_jsonl(path)
    for record in records:
        if "kind" not in record or "t" not in record:
            raise ValueError(
                f"{path}: not an event stream (record {record!r})"
            )
    return records


def write_prometheus(records: List[dict], path) -> str:
    """Write the Prometheus text rendering to ``path``; returns path."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in prometheus_lines(records):
            handle.write(line + "\n")
    return str(path)


def write_summary_json(
    records: List[dict], path, events: Optional[List[dict]] = None
) -> str:
    """Write the summary roll-up to ``path`` as canonical JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            summary_dict(records, events),
            handle,
            sort_keys=True,
            separators=(",", ":"),
        )
        handle.write("\n")
    return str(path)
