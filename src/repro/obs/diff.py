"""Cross-run regression diffing over metrics snapshots.

``repro obs diff`` and the CI ``obs-regression`` gate both reduce to
one question: *did this run's numbers move beyond tolerance relative
to a baseline run?*  :func:`diff_snapshots` answers it over two parsed
metrics snapshots:

- counters and gauges compare by value,
- histograms compare by sample count (their value-side content lives
  in the bucket table, which the byte-level artefact comparison in CI
  already covers),
- summaries compare by count and mean,
- series present on only one side are reported as added/removed —
  an instrumentation-coverage change is a regression signal too —
  and so are compared *fields* present on only one side of a shared
  series (e.g. a summary that lost its ``mean``).

A delta is **within tolerance** when ``|b - a| <= max(abs_tol,
rel_tol * max(|a|, |b|))`` — the symmetric form, so diffing A against
B flags exactly when diffing B against A does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Change classifications, in report order.
ADDED = "added"
REMOVED = "removed"
CHANGED = "changed"


@dataclass(frozen=True)
class SeriesDelta:
    """One out-of-tolerance difference between two snapshots."""

    kind: str  # ADDED / REMOVED / CHANGED
    series: str  # canonical metric key, qualified by field for summaries
    baseline: Optional[float]
    current: Optional[float]

    def describe(self) -> str:
        """One report line."""
        if self.kind == ADDED:
            return f"+ {self.series} = {self.current} (not in baseline)"
        if self.kind == REMOVED:
            return f"- {self.series} = {self.baseline} (gone from current)"
        delta = self.current - self.baseline  # type: ignore[operator]
        sign = "+" if delta >= 0 else ""
        return (
            f"~ {self.series}: {self.baseline} -> {self.current} "
            f"({sign}{delta:.6g})"
        )


@dataclass(frozen=True)
class DiffReport:
    """Outcome of one snapshot comparison."""

    deltas: Tuple[SeriesDelta, ...]
    series_compared: int

    @property
    def clean(self) -> bool:
        """True when every compared series stayed within tolerance."""
        return not self.deltas

    def lines(self) -> List[str]:
        """Human-facing report, deterministic order."""
        if self.clean:
            return [
                f"obs diff: {self.series_compared} series compared, "
                "no regressions"
            ]
        header = (
            f"obs diff: {len(self.deltas)} regression(s) across "
            f"{self.series_compared} series"
        )
        return [header] + [
            "  " + delta.describe() for delta in self.deltas
        ]


def _within(a: float, b: float, *, rel_tol: float, abs_tol: float) -> bool:
    return abs(b - a) <= max(abs_tol, rel_tol * max(abs(a), abs(b)))


def _comparable_values(record: dict) -> Dict[str, float]:
    """The numeric fields a snapshot record is compared on."""
    kind = record["type"]
    if kind in ("counter", "gauge"):
        return {"": float(record["value"])}
    if kind == "histogram":
        return {".count": float(record["count"])}
    if kind == "summary":
        values = {".count": float(record["count"])}
        # A summary can legitimately lack its ``mean`` (an exporter
        # that dropped the field); the shared-series loop reports the
        # asymmetry as an added/removed field rather than crashing —
        # or, worse, silently passing — here.
        if "mean" in record:
            values[".mean"] = float(record["mean"])
        return values
    raise ValueError(f"unknown snapshot record type {kind!r}")


def diff_snapshots(
    baseline: List[dict],
    current: List[dict],
    *,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> DiffReport:
    """Compare two metrics snapshots; returns out-of-tolerance deltas.

    With default (zero) tolerances this is an exact comparison — the
    mode the acceptance criterion uses on two identically-seeded runs.
    Deltas come back sorted (added, removed, changed; series name
    within each class) so the report is deterministic.
    """
    if rel_tol < 0 or abs_tol < 0:
        raise ValueError("tolerances must be non-negative")

    def index(records: List[dict]) -> Dict[Tuple[str, str], dict]:
        table: Dict[Tuple[str, str], dict] = {}
        for record in records:
            table[(record["type"], record["name"])] = record
        return table

    base_index = index(baseline)
    current_index = index(current)

    deltas: List[SeriesDelta] = []
    for key in sorted(current_index.keys() - base_index.keys()):
        record = current_index[key]
        for suffix, value in sorted(_comparable_values(record).items()):
            deltas.append(
                SeriesDelta(
                    kind=ADDED,
                    series=record["name"] + suffix,
                    baseline=None,
                    current=value,
                )
            )
    for key in sorted(base_index.keys() - current_index.keys()):
        record = base_index[key]
        for suffix, value in sorted(_comparable_values(record).items()):
            deltas.append(
                SeriesDelta(
                    kind=REMOVED,
                    series=record["name"] + suffix,
                    baseline=value,
                    current=None,
                )
            )
    shared = sorted(base_index.keys() & current_index.keys())
    for key in shared:
        base_values = _comparable_values(base_index[key])
        current_values = _comparable_values(current_index[key])
        # Union of field suffixes: a field present on only one side is
        # a coverage regression (REMOVED/ADDED), never a silent pass —
        # e.g. a summary whose ``mean`` vanished from the current run.
        for suffix in sorted(base_values.keys() | current_values.keys()):
            a = base_values.get(suffix)
            b = current_values.get(suffix)
            if a is None:
                deltas.append(
                    SeriesDelta(
                        kind=ADDED,
                        series=base_index[key]["name"] + suffix,
                        baseline=None,
                        current=b,
                    )
                )
            elif b is None:
                deltas.append(
                    SeriesDelta(
                        kind=REMOVED,
                        series=base_index[key]["name"] + suffix,
                        baseline=a,
                        current=None,
                    )
                )
            elif not _within(a, b, rel_tol=rel_tol, abs_tol=abs_tol):
                deltas.append(
                    SeriesDelta(
                        kind=CHANGED,
                        series=base_index[key]["name"] + suffix,
                        baseline=a,
                        current=b,
                    )
                )

    order = {ADDED: 0, REMOVED: 1, CHANGED: 2}
    deltas.sort(key=lambda delta: (order[delta.kind], delta.series))
    return DiffReport(
        deltas=tuple(deltas),
        series_compared=len(shared),
    )
