"""Terminal dashboard rendering for ``repro top``.

Pure functions from telemetry payloads (a ``/stats`` dict, the
``/metrics/history`` samples, a sweep progress stream) to fixed-width
text frames.  Everything run-varying comes *in through the arguments*
— no wall clock, no randomness, no environment reads — so rendering
the same payload twice yields byte-identical frames.  That is what
makes ``repro top --once`` a CI-checkable artefact rather than a toy:
the determinism lives here, and the polling loop in the CLI only
decides *when* to call these functions.

Layout is plain ANSI-free text by default; the live loop in the CLI
adds the screen-clear escape around whole frames, never inside them.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.export import parse_metric_key

#: Eight-level Unicode bars, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

#: Frame width every renderer targets (content may be narrower).
FRAME_WIDTH = 64


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Render the last ``width`` values as eight-level bars.

    Scaling is per-call min/max; a constant (or single-point) series
    renders at the lowest level, so a flat line reads as flat.
    """
    tail = [float(v) for v in values][-width:]
    if not tail:
        return ""
    low = min(tail)
    high = max(tail)
    span = high - low
    if span <= 0 or not math.isfinite(span):
        return SPARK_GLYPHS[0] * len(tail)
    top = len(SPARK_GLYPHS) - 1
    return "".join(
        SPARK_GLYPHS[min(top, int((value - low) / span * top))]
        for value in tail
    )


def progress_bar(done: float, total: float, width: int = 28) -> str:
    """A ``[#####.....] done/total`` cell with clamped fill."""
    total = max(total, 1.0)
    fraction = min(1.0, max(0.0, done / total))
    filled = int(round(fraction * width))
    return (
        "[" + "#" * filled + "." * (width - filled) + "]"
        f" {int(done)}/{int(total)}"
    )


def _series_from_samples(
    samples: Sequence[dict], key: str
) -> List[Tuple[float, float]]:
    """(t, value) pairs for one metric key across history samples."""
    points: List[Tuple[float, float]] = []
    for sample in samples:
        series = sample.get("series") or {}
        if key in series:
            points.append((float(sample["t"]), float(series[key])))
    return points


def _rates(points: Sequence[Tuple[float, float]]) -> List[float]:
    """Per-second deltas between successive (t, counter) points."""
    rates: List[float] = []
    for (t0, v0), (t1, v1) in zip(points, points[1:]):
        dt = t1 - t0
        if dt > 0:
            rates.append(max(0.0, (v1 - v0) / dt))
    return rates


def _fmt(value: float, digits: int = 1) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return str(value)
    if float(value).is_integer() and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.{digits}f}"


def _tenant_fractions(samples: Sequence[dict]) -> List[Tuple[str, int, int]]:
    """(tenant, offered, violations) from the newest sample, sorted."""
    if not samples:
        return []
    series: Dict[str, float] = samples[-1].get("series") or {}
    offered: Dict[str, int] = {}
    violations: Dict[str, int] = {}
    for key, value in series.items():
        try:
            name, labels = parse_metric_key(key)
        except ValueError:
            continue
        tenant = labels.get("tenant")
        if tenant is None:
            continue
        if name == "serve.tenant.offered":
            offered[tenant] = int(value)
        elif name == "serve.tenant.violations":
            violations[tenant] = int(value)
    return [
        (tenant, offered[tenant], violations.get(tenant, 0))
        for tenant in sorted(offered)
    ]


# -- serve mode ---------------------------------------------------------------


def render_serve_frame(
    stats: dict, history: Optional[dict] = None
) -> str:
    """One ``repro top`` frame for a serve target.

    ``stats`` is the ``GET /stats`` payload; ``history`` the
    ``GET /metrics/history`` payload (or ``None`` when unavailable —
    the frame degrades to the snapshot-only view).
    """
    accounting = stats.get("accounting", {})
    breaker = stats.get("breaker", {})
    health = stats.get("health", {})
    samples = (history or {}).get("samples", [])

    lines: List[str] = []
    title = "repro top — serve"
    uptime = stats.get("uptime")
    if uptime is not None:
        title += f"  up {_fmt(float(uptime))}s"
    if stats.get("draining"):
        title += "  DRAINING"
    lines.append(title)
    meta: List[str] = []
    if "cache_backend" in stats:
        meta.append(f"backend {stats['cache_backend']}")
    if "fingerprint" in stats:
        meta.append(f"code {str(stats['fingerprint'])[:12]}")
    if history is not None:
        meta.append(
            f"history {len(samples)} samples"
            f" (stride {history.get('stride', 1)})"
        )
    if meta:
        lines.append("  ".join(meta))
    lines.append("-" * FRAME_WIDTH)

    # The conservation triple: the law the serve layer is built around.
    offered = accounting.get("offered", 0)
    admitted = accounting.get("admitted", 0)
    rejected = accounting.get("rejected", 0)
    shed = accounting.get("shed", 0)
    mark = "=" if accounting.get("conserves", True) else "≠ BROKEN"
    lines.append(
        f"offered {offered} {mark} admitted {admitted}"
        f" + rejected {rejected} + shed {shed}"
        f"  (downgraded {accounting.get('downgraded', 0)})"
    )

    # Breaker rung on the degradation ladder.
    rung = breaker.get("rung", 0)
    ladder = ["STRICT", "ELASTIC", "OPPORTUNISTIC", "BEST_EFFORT"]
    cells = "".join(
        "■" if index <= rung else "□" for index in range(len(ladder))
    )
    state = breaker.get("ceiling", ladder[min(rung, 3)].lower())
    flag = "  OPEN" if breaker.get("open") else ""
    lines.append(
        f"breaker [{cells}] ceiling={state}{flag}"
        f"  transitions={breaker.get('transitions', 0)}"
    )
    lines.append(
        f"health  {health.get('state', '?')}"
        f"  pressure={_fmt(float(health.get('pressure', 0.0)), 3)}"
        f"  queue={stats.get('queue_depth', 0)}"
        f"  inflight={stats.get('inflight', 0)}"
    )

    # Advisory adaptive policy, when the server runs one.
    policy = stats.get("policy")
    if policy:
        granted = "granted" if policy.get("granted") else "idle"
        lines.append(
            f"policy  {policy.get('name', '?')}"
            f"  bus={granted}"
            f"  decisions={policy.get('decisions', 0)}"
        )

    # Rate sparklines from successive history samples.
    if samples:
        lines.append("-" * FRAME_WIDTH)
        for key, label in (
            ("serve.offered", "offered/s"),
            ("serve.queue_depth", "queue    "),
            ("serve.health.pressure", "pressure "),
        ):
            points = _series_from_samples(samples, key)
            if key == "serve.offered":
                values = _rates(points)
            else:
                values = [value for _t, value in points]
            if values:
                lines.append(
                    f"{label} {sparkline(values)} "
                    f"now={_fmt(values[-1], 2)}"
                )

    tenants = _tenant_fractions(samples)
    if tenants:
        lines.append("-" * FRAME_WIDTH)
        lines.append("tenant            offered  violations  fraction")
        for tenant, count, bad in tenants:
            fraction = bad / count if count else 0.0
            lines.append(
                f"{tenant[:16]:<16}  {count:>7}  {bad:>10}  "
                f"{fraction:>7.1%}"
            )
    return "\n".join(lines) + "\n"


# -- sweep mode ---------------------------------------------------------------


def render_sweep_frame(records: Sequence[dict]) -> str:
    """One ``repro top`` frame over a sweep progress stream.

    ``records`` is the loaded (or tailed) ``*.progress.jsonl`` — the
    newest ``sweep.begin`` partitions the run into served-from-store
    and pending, and the newest progress/end record carries the
    counts, throughput, and ETA.
    """
    lines: List[str] = ["repro top — sweep"]
    if not records:
        lines.append("(no progress records yet)")
        return "\n".join(lines) + "\n"

    begin = None
    latest = None
    ended = False
    for record in records:
        if record["kind"] == "sweep.begin":
            begin = record
            latest = record
            ended = False
        elif record["kind"] in ("sweep.progress", "sweep.end"):
            latest = record
            ended = record["kind"] == "sweep.end"
    if latest is None:
        lines.append("(no sweep records in stream)")
        return "\n".join(lines) + "\n"

    series = latest.get("series") or {}
    name = latest.get("sweep", "?")
    total = float(series.get("total", 0))
    served = float(series.get("served", 0))
    executed = float(series.get("executed", 0))
    pending = float(series.get("pending", max(0.0, total - served)))
    done = float(series.get("done", served + executed))
    lines[0] += f"  {name}" + ("  COMPLETE" if ended else "")
    lines.append("-" * FRAME_WIDTH)
    lines.append("points  " + progress_bar(done, total))
    lines.append(
        f"split   served-from-store {_fmt(served)}"
        f"  executed {_fmt(executed)}  pending {_fmt(pending)}"
    )
    detail = [f"workers {_fmt(float(series.get('workers', 1)))}"]
    if "throughput" in series:
        detail.append(f"throughput {series['throughput']:.3f} pt/s")
    if "eta_seconds" in series:
        detail.append(f"eta {series['eta_seconds']:.1f}s")
    detail.append(f"t {_fmt(float(latest.get('t', 0.0)), 1)}s")
    lines.append("        " + "  ".join(detail))
    if begin is not None and begin is not latest:
        bseries = begin.get("series") or {}
        lines.append(
            f"resume  began with {_fmt(float(bseries.get('served', 0)))}"
            f" stored / {_fmt(float(bseries.get('pending', 0)))} to run"
        )
    history = sparkline(
        [
            float((record.get("series") or {}).get("done", 0))
            for record in records
            if record["kind"] in ("sweep.progress", "sweep.end")
        ]
    )
    if history:
        lines.append(f"trend   {history}")
    return "\n".join(lines) + "\n"
