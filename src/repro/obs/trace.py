"""Causal request tracing: deterministic span trees over simulated time.

Answers the question the metrics registry cannot: *where did this
request's (or job's) latency come from?*  A **trace** is a tree of
**spans** — named, timestamped intervals — rooted at one logical
request: a job's lifetime through the QoS system simulator, a memory
request's walk down L1 → L2 → bus → DRAM, a bus request's queue-then-
service history.

Determinism contract (the same one :mod:`repro.obs.events` holds):

- **IDs derive from identity, not chance.**  :func:`derive_trace_id`
  hashes the parts that name the traced entity (workload, job id,
  core, request sequence); span ids are ``<trace_id>.<n>`` with ``n``
  dense per trace in allocation order.  No UUIDs, no host randomness.
- **Timestamps are simulated only** — seconds in the system simulator,
  cycles in the microarchitectural path — never host wall clock.

Two identically-seeded runs therefore serialise byte-identical trace
files, and a worker's spans can be merged into a parent log without
collision (ids embed the point identity).

Analysis helpers: :meth:`TraceLog.breakdown` sums time by span name
(the per-request latency breakdown), :meth:`TraceLog.critical_path`
extracts the chain of last-finishing descendants (which child spans
actually gated the root's completion).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

_SCALAR_TYPES = (str, int, float, bool, type(None))


class TraceError(ValueError):
    """A span violates the trace contract."""


def derive_trace_id(*parts: object) -> str:
    """A 16-hex trace id deterministic in the traced entity's identity.

    ``derive_trace_id("job", workload, config, job_id)`` gives every
    job the same trace id in every run of the same experiment — the
    property that makes traces diffable across runs and mergeable
    across worker processes.
    """
    if not parts:
        raise TraceError("trace identity needs at least one part")
    text = "\x1f".join(str(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _check_attributes(attributes: Dict[str, object]) -> None:
    for name, value in attributes.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise TraceError(
                f"span attribute {name!r} must be a JSON scalar, got "
                f"{type(value).__name__}"
            )
        if type(value) is float and not math.isfinite(value):
            raise TraceError(
                f"span attribute {name!r} is non-finite ({value!r}); "
                "canonical JSON cannot round-trip it"
            )


@dataclass
class Span:
    """One named interval in a trace tree.

    ``start``/``end`` are simulated timestamps (seconds or cycles,
    whatever the instrumented layer counts in — uniform within one
    trace).  ``end`` is ``None`` while the span is open.
    """

    trace_id: str
    span_id: str
    name: str
    start: float
    parent_id: Optional[str] = None
    end: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length; raises while the span is still open."""
        if self.end is None:
            raise TraceError(f"span {self.span_id} ({self.name}) is open")
        return self.end - self.start

    def to_record(self) -> dict:
        """Plain-data form for JSONL export."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attributes),
        }


class TraceLog:
    """Append-only span store with deterministic ids and JSONL export."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_span: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.spans)

    # -- recording --------------------------------------------------------------

    def _allocate(
        self,
        trace_id: str,
        name: str,
        start: float,
        parent: Optional[Span],
        attributes: Dict[str, object],
    ) -> Span:
        if not trace_id:
            raise TraceError("trace_id must be non-empty")
        if not name:
            raise TraceError("span name must be non-empty")
        if not math.isfinite(start):
            raise TraceError(f"span start must be finite, got {start!r}")
        if parent is not None and parent.trace_id != trace_id:
            raise TraceError(
                f"parent span {parent.span_id} belongs to trace "
                f"{parent.trace_id}, not {trace_id}"
            )
        _check_attributes(attributes)
        sequence = self._next_span.get(trace_id, 0)
        self._next_span[trace_id] = sequence + 1
        return Span(
            trace_id=trace_id,
            span_id=f"{trace_id}.{sequence}",
            name=name,
            start=float(start),
            parent_id=parent.span_id if parent is not None else None,
            attributes=dict(attributes),
        )

    def start_span(
        self,
        trace_id: str,
        name: str,
        t: float,
        *,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Span:
        """Open a span at simulated time ``t``; close with :meth:`end_span`."""
        span = self._allocate(trace_id, name, t, parent, attributes)
        self.spans.append(span)
        return span

    def end_span(self, span: Span, t: float, **attributes: object) -> Span:
        """Close ``span`` at simulated time ``t`` (≥ its start)."""
        if span.end is not None:
            raise TraceError(
                f"span {span.span_id} ({span.name}) already ended"
            )
        if not math.isfinite(t):
            raise TraceError(f"span end must be finite, got {t!r}")
        if t < span.start:
            raise TraceError(
                f"span {span.span_id} would end at {t} before its start "
                f"{span.start}"
            )
        _check_attributes(attributes)
        span.end = float(t)
        span.attributes.update(attributes)
        return span

    def span(
        self,
        trace_id: str,
        name: str,
        start: float,
        end: float,
        *,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Span:
        """Record an already-closed span (the common case for layers
        that compute a latency and know both endpoints at once)."""
        opened = self.start_span(trace_id, name, start, parent=parent)
        return self.end_span(opened, end, **attributes)

    def merge(self, other: "TraceLog") -> None:
        """Append another log's spans (worker-telemetry aggregation).

        Span ids are kept verbatim — they embed the trace id, which
        embeds the point identity, so logs from distinct sweep points
        cannot collide.  Per-trace sequence counters advance past the
        merged spans so a trace continued in this log stays dense.
        """
        for span in other.spans:
            self.spans.append(span)
        for trace_id, next_sequence in other._next_span.items():
            mine = self._next_span.get(trace_id, 0)
            self._next_span[trace_id] = max(mine, next_sequence)

    # -- queries ----------------------------------------------------------------

    def trace_ids(self) -> List[str]:
        """Distinct trace ids, in first-span order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def spans_of(self, trace_id: str) -> List[Span]:
        """All spans of one trace, in allocation order."""
        return [span for span in self.spans if span.trace_id == trace_id]

    def root_of(self, trace_id: str) -> Optional[Span]:
        """The trace's first parentless span, if any."""
        for span in self.spans:
            if span.trace_id == trace_id and span.parent_id is None:
                return span
        return None

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in allocation order."""
        return [
            candidate
            for candidate in self.spans
            if candidate.trace_id == span.trace_id
            and candidate.parent_id == span.span_id
        ]

    # -- analysis ----------------------------------------------------------------

    def breakdown(self, trace_id: str) -> Dict[str, float]:
        """Total closed-span time per span name — the latency breakdown.

        The root's duration is the request's end-to-end latency; the
        named children decompose it (L2 lookup, bus queue, DRAM …).
        Open spans are skipped — audit completeness separately via
        :meth:`open_spans`.
        """
        totals: Dict[str, float] = {}
        for span in self.spans:
            if span.trace_id != trace_id or span.end is None:
                continue
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def critical_path(self, trace_id: str) -> List[Span]:
        """Root-to-leaf chain of last-finishing closed descendants.

        At every level the child that finished last is the one that
        gated its parent's completion; following that child downward
        names the stage a latency optimisation must attack first.
        """
        root = self.root_of(trace_id)
        if root is None:
            return []
        path = [root]
        current = root
        while True:
            closed = [
                child
                for child in self.children_of(current)
                if child.end is not None
            ]
            if not closed:
                return path
            current = max(closed, key=lambda span: (span.end, span.start))
            path.append(current)

    def open_spans(self) -> List[Span]:
        """Spans never closed — instrumentation bugs or aborted runs."""
        return [span for span in self.spans if span.end is None]

    # -- export -----------------------------------------------------------------

    def to_jsonl_lines(self) -> Iterator[str]:
        """Canonical one-line-per-span serialisation, allocation order."""
        for span in self.spans:
            yield json.dumps(
                span.to_record(), sort_keys=True, separators=(",", ":")
            )

    def write_jsonl(self, path) -> str:
        """Write every span to ``path`` as JSONL; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.to_jsonl_lines():
                handle.write(line + "\n")
        return str(path)


class NullTraceLog(TraceLog):
    """Trace sink that drops everything (the disabled default).

    Spans are still constructed and returned (so call sites can thread
    parents without branching) but never stored.
    """

    def start_span(
        self,
        trace_id: str,
        name: str,
        t: float,
        *,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Span:
        return Span(
            trace_id=trace_id,
            span_id=f"{trace_id}.null",
            name=name,
            start=float(t),
            parent_id=parent.span_id if parent is not None else None,
        )

    def end_span(self, span: Span, t: float, **attributes: object) -> Span:
        span.end = float(t)
        return span
