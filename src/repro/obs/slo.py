"""QoS/SLO violation monitoring: is each job on track *right now*?

The paper's framework promises every reserved job completion by its
deadline; the deadline report only checks that promise *after* the run.
:class:`SloMonitor` watches it *during* the run: at every allocation
change the simulator reports each running job's progress and retirement
rate, and the monitor projects the completion time.  A job whose
projection lands past its deadline is **in violation**; when a later
reallocation (stealing return, re-admission, stall end) pulls the
projection back inside, it has **recovered**.

The monitor is a pure, deterministic state machine — it never touches
the observer itself, so the simulator stays in control of event
emission (``slo.violation`` / ``slo.recovered``) and gauge updates and
the monitor is trivially testable.  Per job it accumulates the
**violation fraction**: the share of the job's monitored lifetime spent
in violation — the steady-state health number the SLO table reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Transition outcomes of :meth:`SloMonitor.observe`.
VIOLATION = "violation"
RECOVERED = "recovered"


@dataclass
class _JobSloState:
    """Mutable per-job monitoring state."""

    job_id: int
    deadline: float
    instructions: float
    registered_at: float
    violating: bool = False
    violations: int = 0
    violating_since: Optional[float] = None
    violation_time: float = 0.0
    last_projected: Optional[float] = None
    finished_at: Optional[float] = None
    met_deadline: Optional[bool] = None


@dataclass(frozen=True)
class JobSloSummary:
    """Per-job SLO outcome for reports and exporters."""

    job_id: int
    deadline: float
    violations: int
    violation_fraction: float
    currently_violating: bool
    met_deadline: Optional[bool]
    last_projected: Optional[float]


@dataclass(frozen=True)
class SloReport:
    """Whole-run SLO outcome, attached to ``SystemResult.slo``."""

    jobs: Tuple[JobSloSummary, ...]

    @property
    def total_violations(self) -> int:
        """Violation episodes summed over all jobs."""
        return sum(job.violations for job in self.jobs)

    @property
    def jobs_violated(self) -> int:
        """Jobs that spent any monitored time in violation."""
        return sum(1 for job in self.jobs if job.violations > 0)

    def for_job(self, job_id: int) -> JobSloSummary:
        """The summary for one job; raises if it was never monitored."""
        for job in self.jobs:
            if job.job_id == job_id:
                return job
        raise KeyError(f"job {job_id} was never registered with the monitor")


class SloMonitor:
    """Projection-based QoS violation tracker.

    ``grace_fraction`` widens the deadline by that fraction of the
    job's promised window before a projection counts as violating —
    a hysteresis knob for noisy projections (default: none; the
    paper's guarantees are exact).
    """

    def __init__(self, *, grace_fraction: float = 0.0) -> None:
        if grace_fraction < 0:
            raise ValueError(
                f"grace_fraction must be non-negative, got {grace_fraction}"
            )
        self.grace_fraction = grace_fraction
        self._jobs: Dict[int, _JobSloState] = {}

    def __len__(self) -> int:
        return len(self._jobs)

    # -- lifecycle --------------------------------------------------------------

    def register(
        self,
        job_id: int,
        *,
        deadline: float,
        instructions: float,
        now: float,
    ) -> None:
        """Start monitoring a job against its deadline (idempotent)."""
        if job_id in self._jobs:
            return
        if not math.isfinite(deadline):
            raise ValueError(f"deadline must be finite, got {deadline!r}")
        if instructions <= 0:
            raise ValueError(
                f"instructions must be positive, got {instructions}"
            )
        self._jobs[job_id] = _JobSloState(
            job_id=job_id,
            deadline=deadline,
            instructions=instructions,
            registered_at=now,
        )

    def observe(
        self, now: float, job_id: int, *, progress: float, rate: float
    ) -> Optional[str]:
        """Fold one progress sample; returns a transition or ``None``.

        ``rate`` is instructions retired per simulated second at the
        allocation now in force; zero rate with work remaining projects
        to infinity (a stalled, displaced, or starved job is violating
        by definition until resources return).
        """
        state = self._jobs.get(job_id)
        if state is None or state.finished_at is not None:
            return None
        remaining = state.instructions - progress
        if remaining <= 0:
            projected = now
        elif rate > 0:
            projected = now + remaining / rate
        else:
            projected = math.inf
        state.last_projected = projected
        allowed = state.deadline + self.grace_fraction * (
            state.deadline - state.registered_at
        )
        violating = projected > allowed
        if violating and not state.violating:
            state.violating = True
            state.violations += 1
            state.violating_since = now
            return VIOLATION
        if not violating and state.violating:
            state.violating = False
            state.violation_time += now - (state.violating_since or now)
            state.violating_since = None
            return RECOVERED
        return None

    def finish(
        self, now: float, job_id: int, *, met_deadline: Optional[bool]
    ) -> None:
        """Close a job's monitoring window at its terminal event."""
        state = self._jobs.get(job_id)
        if state is None or state.finished_at is not None:
            return
        if state.violating:
            state.violation_time += now - (state.violating_since or now)
            state.violating_since = None
            # The episode stands (it happened) but the job is no longer
            # "currently" violating — it is finished.
            state.violating = False
        state.finished_at = now
        state.met_deadline = met_deadline

    # -- readout ----------------------------------------------------------------

    def violation_fraction(self, job_id: int, *, now: Optional[float] = None) -> float:
        """Share of the monitored lifetime spent in violation.

        For an unfinished job pass ``now`` to close the open interval;
        a zero-length lifetime reports 0.0.
        """
        state = self._jobs[job_id]
        end = state.finished_at
        violation_time = state.violation_time
        if end is None:
            if now is None:
                raise ValueError(
                    f"job {job_id} is still monitored; pass now= to "
                    "evaluate mid-run"
                )
            end = now
            if state.violating and state.violating_since is not None:
                violation_time += now - state.violating_since
        lifetime = end - state.registered_at
        if lifetime <= 0:
            return 0.0
        return min(1.0, violation_time / lifetime)

    def report(self, *, now: Optional[float] = None) -> SloReport:
        """Freeze the monitor into a :class:`SloReport` (job-id order)."""
        summaries = []
        for job_id in sorted(self._jobs):
            state = self._jobs[job_id]
            summaries.append(
                JobSloSummary(
                    job_id=job_id,
                    deadline=state.deadline,
                    violations=state.violations,
                    violation_fraction=self.violation_fraction(
                        job_id, now=now
                    ),
                    currently_violating=state.violating,
                    met_deadline=state.met_deadline,
                    last_projected=state.last_projected,
                )
            )
        return SloReport(jobs=tuple(summaries))
