"""The structured event log: an append-only, deterministic JSONL stream.

Every decision the simulator makes that a person would want to replay —
admission verdicts, mode downgrades, repartitions, fault injections,
bus grants — is one event record.  Records are dicts with a stable
envelope:

- ``v``    — schema version (:data:`SCHEMA_VERSION`)
- ``seq``  — per-log sequence number, dense from 0
- ``t``    — *simulated* time of the event (never host wall clock)
- ``kind`` — event type, a lowercase dotted identifier

plus free-form, JSON-scalar payload fields.  Because ``t`` is simulated
time and ``seq`` is allocation order, two runs of the same seeded
command emit byte-identical streams — the property the CI smoke job
asserts, and the reason the log is usable as a regression artefact.

Serialisation is canonical: compact separators, sorted keys, one object
per line.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Iterator, List, Optional

#: Bump when the envelope or the meaning of a payload field changes.
SCHEMA_VERSION = 1

_ENVELOPE_FIELDS = ("v", "seq", "t", "kind")

_SCALAR_TYPES = (str, int, float, bool, type(None))


class EventSchemaError(ValueError):
    """An event record violates the envelope contract."""


class EventLog:
    """Append-only in-memory event stream with JSONL export."""

    def __init__(self) -> None:
        self.records: List[dict] = []

    def __len__(self) -> int:
        return len(self.records)

    def emit(self, kind: str, t: float, **fields: object) -> None:
        """Append one event at simulated time ``t``.

        Payload ``fields`` must be JSON scalars and must not collide
        with the envelope; violations raise immediately so a bad
        instrumentation site fails its own test, not a downstream
        parser.
        """
        if not kind:
            raise EventSchemaError("event kind must be non-empty")
        t = float(t)
        if not math.isfinite(t):
            raise EventSchemaError(f"event time must be finite, got {t!r}")
        for name, value in fields.items():
            if name in _ENVELOPE_FIELDS:
                raise EventSchemaError(
                    f"payload field {name!r} collides with the envelope"
                )
            if not isinstance(value, _SCALAR_TYPES):
                raise EventSchemaError(
                    f"payload field {name!r} must be a JSON scalar, got "
                    f"{type(value).__name__}"
                )
            # NaN/inf are rejected at the emit site: Python's json module
            # would happily write ``NaN``, which is not JSON and does not
            # round-trip through strict parsers — validate_record applies
            # the identical check from the consuming side.
            if type(value) is float and not math.isfinite(value):
                raise EventSchemaError(
                    f"payload field {name!r} is non-finite ({value!r}); "
                    "canonical JSON cannot represent it portably"
                )
        record = {
            "v": SCHEMA_VERSION,
            "seq": len(self.records),
            "t": t,
            "kind": kind,
        }
        record.update(fields)
        self.records.append(record)

    def extend_rebased(self, records: Iterable[dict]) -> int:
        """Append already-emitted records, rewriting their ``seq``.

        The worker-telemetry merge of ``parallel_map``: each worker
        emits a dense local stream, and the parent rebases the streams
        one worker at a time *in input order*, so the merged stream is
        dense, deterministic, and identical to the serial run's stream
        (serial execution visits the same points in the same order).
        Returns the number of records appended.
        """
        appended = 0
        for record in records:
            validate_record(record)
            rebased = dict(record)
            rebased["seq"] = len(self.records)
            self.records.append(rebased)
            appended += 1
        return appended

    def kinds(self) -> List[str]:
        """Distinct event kinds seen, sorted."""
        return sorted({record["kind"] for record in self.records})

    def of_kind(self, kind: str) -> List[dict]:
        """All events of one kind, in emission order."""
        return [r for r in self.records if r["kind"] == kind]

    # -- export -----------------------------------------------------------------

    def to_jsonl_lines(self) -> Iterator[str]:
        """Canonical one-line-per-event serialisation."""
        for record in self.records:
            yield json.dumps(record, sort_keys=True, separators=(",", ":"))

    def write_jsonl(self, path) -> str:
        """Write the stream to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.to_jsonl_lines():
                handle.write(line + "\n")
        return str(path)


def validate_record(record: dict, *, expect_seq: Optional[int] = None) -> None:
    """Check one parsed event against the schema; raises on violation."""
    if not isinstance(record, dict):
        raise EventSchemaError(f"event must be an object, got {record!r}")
    for field in _ENVELOPE_FIELDS:
        if field not in record:
            raise EventSchemaError(f"event missing envelope field {field!r}")
    if record["v"] != SCHEMA_VERSION:
        raise EventSchemaError(
            f"schema version {record['v']!r} != {SCHEMA_VERSION}"
        )
    if not isinstance(record["seq"], int) or record["seq"] < 0:
        raise EventSchemaError(f"bad sequence number {record['seq']!r}")
    if expect_seq is not None and record["seq"] != expect_seq:
        raise EventSchemaError(
            f"non-dense sequence: expected {expect_seq}, got {record['seq']}"
        )
    if not isinstance(record["t"], (int, float)) or record["t"] < 0:
        raise EventSchemaError(f"bad event time {record['t']!r}")
    if not isinstance(record["kind"], str) or not record["kind"]:
        raise EventSchemaError(f"bad event kind {record['kind']!r}")
    for name, value in record.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise EventSchemaError(
                f"field {name!r} is not a JSON scalar: {value!r}"
            )
        # Mirror of the emit-site check: the validator and the emitter
        # must agree on what a well-formed stream is.
        if type(value) is float and not math.isfinite(value):
            raise EventSchemaError(
                f"field {name!r} is non-finite ({value!r})"
            )


def validate_jsonl(path) -> int:
    """Validate an events file written by :meth:`EventLog.write_jsonl`.

    Returns the number of valid events; raises :class:`EventSchemaError`
    (or ``json.JSONDecodeError``) on the first violation.  Used by the
    CI observability smoke job.
    """
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise EventSchemaError(
                    f"{path}:{line_number + 1}: invalid JSON: {error}"
                ) from None
            validate_record(record, expect_seq=count)
            count += 1
    return count
