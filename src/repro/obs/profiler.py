"""Lightweight phase profiler: where did the run spend its time?

MGSim-style monitoring for the event loop without a real sampling
profiler: callers wrap coarse phases (an engine ``run``, one figure
command, a profiling pass) in :meth:`PhaseProfiler.span` and get, per
phase name, the entry count, accumulated host wall-clock, and the
number of engine events fired inside the phase.

Wall-clock numbers are host-dependent and therefore *excluded* from the
deterministic metrics/event exports; they surface only in the
human-facing report footer.  Event counts are simulation-derived and
deterministic.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class PhaseRecord:
    """Accumulated cost of one named phase."""

    name: str
    entries: int = 0
    wall_seconds: float = 0.0
    events_fired: int = 0

    def describe(self) -> str:
        """One footer line for this phase."""
        events = (
            f", {self.events_fired} events" if self.events_fired else ""
        )
        return (
            f"{self.name}: {self.entries} run(s), "
            f"{self.wall_seconds * 1e3:.1f} ms{events}"
        )


@dataclass
class PhaseProfiler:
    """Context-manager spans accumulating per-phase cost.

    Spans may nest (a CLI-command span around an engine-run span); each
    accumulates independently.
    """

    phases: Dict[str, PhaseRecord] = field(default_factory=dict)

    @contextmanager
    def span(
        self, name: str, *, event_source=None
    ) -> Iterator[PhaseRecord]:
        """Time a phase; ``event_source`` is any object exposing
        ``events_fired`` (e.g. :class:`repro.sim.engine.EventQueue`),
        sampled on entry and exit to attribute events to the phase."""
        record = self.phases.get(name)
        if record is None:
            record = self.phases[name] = PhaseRecord(name)
        events_before = (
            event_source.events_fired if event_source is not None else 0
        )
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.entries += 1
            record.wall_seconds += time.perf_counter() - started
            if event_source is not None:
                record.events_fired += (
                    event_source.events_fired - events_before
                )

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's accumulated phases into this one.

        Used when ``parallel_map`` hands worker telemetry back to the
        parent: entry counts, wall seconds, and event counts add.  Wall
        seconds stay host-facing-footer-only, so additive (rather than
        max-overlap) accounting is fine — it reads as total CPU time
        spent in the phase across workers.
        """
        for name, record in other.phases.items():
            mine = self.phases.get(name)
            if mine is None:
                mine = self.phases[name] = PhaseRecord(name)
            mine.entries += record.entries
            mine.wall_seconds += record.wall_seconds
            mine.events_fired += record.events_fired

    def record(self, name: str) -> Optional[PhaseRecord]:
        """The accumulated record for ``name``, if the phase ever ran."""
        return self.phases.get(name)

    def lines(self) -> List[str]:
        """Footer lines, one per phase, sorted by descending wall time."""
        ordered = sorted(
            self.phases.values(),
            key=lambda record: (-record.wall_seconds, record.name),
        )
        return [record.describe() for record in ordered]
