"""Time-series telemetry: bounded metric history and a flight recorder.

The paper evaluates its QoS policies by watching allocations and IPC
evolve *over time* (Figures 4-7); the snapshot artefacts of
:mod:`repro.obs` only show the end state.  This module adds the
continuous view the live layers (``repro serve``, ``repro sweep``)
need, without unbounding memory or breaking determinism:

- a **history record** schema (versioned JSONL, envelope
  ``{v, seq, t, kind}`` like the event log, plus an optional ``series``
  mapping of metric key to finite number) shared by the serve metric
  history, the sweep progress stream, the flight recorder, and the
  perf-trajectory bench file — one loader/validator serves them all;
- :class:`HistoryRing` — a fixed-capacity ring of history points that
  **downsamples deterministically on overflow**: when full it drops
  every other retained point and doubles its stride, so the buffer
  always spans the whole run at geometrically decreasing resolution
  (the classic decimating recorder), and two identically-fed rings
  retain identical points;
- :class:`MetricsSampler` — snapshots a registry's counters and gauges
  into a ring at caller-driven times (the serve housekeeping tick, a
  simulated-time hook), so sampling stays seed-deterministic: the
  clock is an argument, never read from the host;
- :class:`FlightRecorder` — a crash buffer holding the last *window*
  seconds of samples and events, dumped atomically (fsync + rename) to
  a history JSONL file on fault, breaker trip, or SIGTERM drain — the
  post-mortem artefact for a run that died;
- :class:`HistoryWriter` — append-only JSONL writer that keeps ``seq``
  dense across process restarts (a resumed sweep appends to its
  progress stream; a torn tail from a SIGKILL mid-write is trimmed on
  reopen).

Everything here is pure bookkeeping over values the caller provides;
when observability is disabled the serve/sweep layers never construct
these objects, preserving the zero-cost-when-disabled contract.
"""

from __future__ import annotations

import json
import math
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional

from repro.util.atomicio import write_atomic_text

#: Bump when the envelope or the meaning of ``series`` changes.
HISTORY_VERSION = 1

_ENVELOPE_FIELDS = ("v", "seq", "t", "kind")

#: Field names a history point may not use for free-form payload.
_RESERVED_FIELDS = frozenset(_ENVELOPE_FIELDS) | {"series"}

_SCALAR_TYPES = (str, int, float, bool, type(None))


class HistorySchemaError(ValueError):
    """A history record violates the envelope contract."""


# -- the record schema -------------------------------------------------------


def history_point(
    t: float,
    kind: str,
    *,
    series: Optional[Dict[str, float]] = None,
    **fields: object,
) -> dict:
    """Build one envelope-less history point, validating its payload.

    Points carry no ``v``/``seq`` — those are assigned at
    serialisation time (:func:`history_records`), so a ring can drop
    points freely and the written file still has a dense sequence.
    """
    if not kind:
        raise HistorySchemaError("history kind must be non-empty")
    t = float(t)
    if not math.isfinite(t) or t < 0:
        raise HistorySchemaError(
            f"history time must be finite and >= 0, got {t!r}"
        )
    point: dict = {"t": t, "kind": kind}
    if series is not None:
        clean: Dict[str, float] = {}
        for name, value in series.items():
            if not isinstance(name, str) or not name:
                raise HistorySchemaError(
                    f"series key must be a non-empty string, got {name!r}"
                )
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise HistorySchemaError(
                    f"series value {name!r} must be a number, got "
                    f"{type(value).__name__}"
                )
            if not math.isfinite(value):
                raise HistorySchemaError(
                    f"series value {name!r} is non-finite ({value!r})"
                )
            clean[name] = value
        point["series"] = clean
    for name, value in fields.items():
        if name in _RESERVED_FIELDS:
            raise HistorySchemaError(
                f"payload field {name!r} collides with the envelope"
            )
        if not isinstance(value, _SCALAR_TYPES):
            raise HistorySchemaError(
                f"payload field {name!r} must be a JSON scalar, got "
                f"{type(value).__name__}"
            )
        if type(value) is float and not math.isfinite(value):
            raise HistorySchemaError(
                f"payload field {name!r} is non-finite ({value!r})"
            )
        point[name] = value
    return point


def history_records(
    points: Iterable[dict], *, start_seq: int = 0
) -> List[dict]:
    """Wrap points in the versioned envelope with a dense sequence."""
    records = []
    for offset, point in enumerate(points):
        record = {"v": HISTORY_VERSION, "seq": start_seq + offset}
        record.update(point)
        records.append(record)
    return records


def history_jsonl_lines(records: Iterable[dict]) -> List[str]:
    """Canonical one-line-per-record serialisation."""
    return [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records
    ]


def write_history_jsonl(points: Iterable[dict], path) -> str:
    """Atomically write points (enveloped, dense seq) to ``path``."""
    lines = history_jsonl_lines(history_records(points))
    write_atomic_text(path, "".join(line + "\n" for line in lines))
    return str(path)


def validate_history_record(
    record: dict, *, expect_seq: Optional[int] = None
) -> None:
    """Check one parsed history record; raises on violation."""
    if not isinstance(record, dict):
        raise HistorySchemaError(
            f"history record must be an object, got {record!r}"
        )
    for field in _ENVELOPE_FIELDS:
        if field not in record:
            raise HistorySchemaError(
                f"history record missing envelope field {field!r}"
            )
    if record["v"] != HISTORY_VERSION:
        raise HistorySchemaError(
            f"history version {record['v']!r} != {HISTORY_VERSION}"
        )
    if not isinstance(record["seq"], int) or record["seq"] < 0:
        raise HistorySchemaError(f"bad sequence number {record['seq']!r}")
    if expect_seq is not None and record["seq"] != expect_seq:
        raise HistorySchemaError(
            f"non-dense sequence: expected {expect_seq}, "
            f"got {record['seq']}"
        )
    t = record["t"]
    if (
        isinstance(t, bool)
        or not isinstance(t, (int, float))
        or not math.isfinite(t)
        or t < 0
    ):
        raise HistorySchemaError(f"bad history time {t!r}")
    if not isinstance(record["kind"], str) or not record["kind"]:
        raise HistorySchemaError(f"bad history kind {record['kind']!r}")
    series = record.get("series")
    if series is not None:
        if not isinstance(series, dict):
            raise HistorySchemaError(
                f"'series' must be a mapping, got {series!r}"
            )
        for name, value in series.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise HistorySchemaError(
                    f"series value {name!r} is not a number: {value!r}"
                )
            if not math.isfinite(value):
                raise HistorySchemaError(
                    f"series value {name!r} is non-finite ({value!r})"
                )
    for name, value in record.items():
        if name == "series":
            continue
        if not isinstance(value, _SCALAR_TYPES):
            raise HistorySchemaError(
                f"field {name!r} is not a JSON scalar: {value!r}"
            )
        if type(value) is float and not math.isfinite(value):
            raise HistorySchemaError(
                f"field {name!r} is non-finite ({value!r})"
            )


def validate_history_jsonl(path) -> int:
    """Validate a history file; returns the record count.

    Raises :class:`HistorySchemaError` on the first violation — the
    CI dashboard-smoke job runs this over the flight-recorder dump.
    """
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise HistorySchemaError(
                    f"{path}:{line_number + 1}: invalid JSON: {error}"
                ) from None
            validate_history_record(record, expect_seq=count)
            count += 1
    return count


def load_history_jsonl(path) -> List[dict]:
    """Parse and validate a history JSONL file into records.

    The loader for every history-shaped artefact: a serve run's
    ``--history-out``, a sweep's progress stream, a flight-recorder
    dump, and ``BENCH_history.jsonl``.
    """
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise HistorySchemaError(
                    f"{path}:{line_number + 1}: invalid JSON: {error}"
                ) from None
            validate_history_record(record, expect_seq=len(records))
            records.append(record)
    return records


# -- the bounded ring --------------------------------------------------------


class HistoryRing:
    """Fixed-capacity history buffer with deterministic decimation.

    Appends are filtered by a power-of-two ``stride`` that starts at 1.
    When the buffer would exceed ``capacity``, every other retained
    point is dropped (keeping offered indices ≡ 0 mod the doubled
    stride) — so the retained set is always "every stride-th point
    since the start", spanning the whole run at decreasing resolution.
    Two rings fed the same appends retain identical points, which is
    what makes history endpoints and dumps reproducible.

    ``force=True`` retains a point regardless of the stride filter —
    the drain-time final sample uses it so the last record's counter
    totals always equal the final accounting.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self.stride = 1
        self.offered = 0  # total points offered, retained or not
        self.dropped = 0  # points filtered or decimated away
        self._points: List[dict] = []

    def __len__(self) -> int:
        return len(self._points)

    def append(self, point: dict, *, force: bool = False) -> bool:
        """Offer one point; returns True when it was retained."""
        index = self.offered
        self.offered += 1
        if not force and index % self.stride != 0:
            self.dropped += 1
            return False
        if len(self._points) >= self.capacity:
            self._decimate()
        self._points.append(point)
        return True

    def _decimate(self) -> None:
        """Halve resolution: keep every other point, double the stride."""
        kept = self._points[::2]
        self.dropped += len(self._points) - len(kept)
        self._points = kept
        self.stride *= 2

    def points(self) -> List[dict]:
        """The retained points, oldest first (a copy)."""
        return list(self._points)

    def records(self) -> List[dict]:
        """The retained points as enveloped records, dense seq from 0."""
        return history_records(self._points)

    def last(self) -> Optional[dict]:
        """The newest retained point, or ``None`` when empty."""
        return self._points[-1] if self._points else None

    def to_payload(self) -> dict:
        """The JSON body of ``GET /metrics/history``."""
        return {
            "version": HISTORY_VERSION,
            "stride": self.stride,
            "offered": self.offered,
            "dropped": self.dropped,
            "samples": self.records(),
        }

    def write_jsonl(self, path) -> str:
        """Atomically write the retained history to ``path``."""
        return write_history_jsonl(self._points, path)


# -- the periodic sampler ----------------------------------------------------


class MetricsSampler:
    """Snapshots a registry's scalar series into a :class:`HistoryRing`.

    The caller owns the clock: :meth:`sample` takes ``t`` explicitly
    (server-relative seconds for serve, simulated time for sim hooks),
    so the stream stays deterministic for a deterministic caller.  The
    serve housekeeping loop calls this every ``sample_every`` ticks.
    """

    def __init__(self, ring: Optional[HistoryRing] = None) -> None:
        self.ring = ring if ring is not None else HistoryRing()
        self.samples_taken = 0

    def sample(
        self,
        registry,
        t: float,
        *,
        kind: str = "sample",
        extra: Optional[Dict[str, float]] = None,
        force: bool = False,
        **fields: object,
    ) -> dict:
        """Capture counters and gauges (plus ``extra``) at time ``t``.

        Returns the history point whether or not the ring retained it,
        so callers (the flight recorder feed) always see the sample.
        """
        series = registry.scalar_series()
        if extra:
            series.update(extra)
        point = history_point(t, kind, series=series, **fields)
        self.ring.append(point, force=force)
        self.samples_taken += 1
        return point


# -- the flight recorder -----------------------------------------------------


class FlightRecorder:
    """Crash buffer: the last ``window`` seconds of samples and events.

    Fed from the same stream the history ring sees
    (:meth:`note_sample`) plus the observer's event log
    (:meth:`note_events`, incremental by sequence number).  On fault,
    breaker trip, or SIGTERM drain, :meth:`dump` writes everything
    still inside the window — newest context, oldest first — as one
    atomic history JSONL file: a ``flight.meta`` record naming the
    reason, the buffered samples, then the buffered events wrapped as
    ``kind="event"`` records.
    """

    def __init__(
        self,
        *,
        window: float = 30.0,
        max_samples: int = 256,
        max_events: int = 1024,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = window
        self._samples: Deque[dict] = deque(maxlen=max_samples)
        self._events: Deque[dict] = deque(maxlen=max_events)
        self._events_seen = 0
        self.dumps = 0

    def note_sample(self, point: dict) -> None:
        """Buffer one history point (as built by the sampler)."""
        self._samples.append(point)
        self._prune(point["t"])

    def note_events(self, records: List[dict]) -> int:
        """Absorb new event-log records (incremental; returns count).

        ``records`` is the *full* log (``observer.events.records``);
        only entries past the last absorbed sequence are buffered, so
        calling this every housekeeping tick is O(new events).
        """
        fresh = records[self._events_seen:]
        self._events_seen = len(records)
        for record in fresh:
            self._events.append(record)
        if fresh:
            self._prune(fresh[-1]["t"])
        return len(fresh)

    def _prune(self, now: float) -> None:
        horizon = now - self.window
        while self._samples and self._samples[0]["t"] < horizon:
            self._samples.popleft()
        while self._events and self._events[0]["t"] < horizon:
            self._events.popleft()

    def points(self, *, t: float, reason: str) -> List[dict]:
        """The dump contents as history points (meta, samples, events)."""
        points = [
            history_point(
                t,
                "flight.meta",
                reason=reason,
                window=self.window,
                samples=len(self._samples),
                events=len(self._events),
            )
        ]
        points.extend(self._samples)
        for event in self._events:
            wrapped: Dict[str, object] = {}
            for name, value in event.items():
                if name in ("v", "seq"):
                    continue
                if name == "kind":
                    wrapped["event"] = value
                elif name == "t" or name not in _RESERVED_FIELDS:
                    wrapped[name] = value
            points.append(
                history_point(
                    wrapped.pop("t"),
                    "event",
                    **wrapped,  # type: ignore[arg-type]
                )
            )
        return points

    def dump(self, path, *, t: float, reason: str) -> str:
        """Atomically write the flight recording to ``path``."""
        written = write_history_jsonl(
            self.points(t=t, reason=reason), path
        )
        self.dumps += 1
        return written


# -- append-across-restarts writer -------------------------------------------


class HistoryWriter:
    """Append-only history JSONL with a dense ``seq`` across reopens.

    A resumed sweep reopens its progress stream and keeps appending;
    ``seq`` continues from the existing record count so the file stays
    valid under :func:`validate_history_jsonl`.  A torn final line (a
    SIGKILL mid-write) is trimmed on reopen rather than poisoning the
    stream.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._seq = self._recover()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def _recover(self) -> int:
        """Count existing complete records, trimming any torn tail."""
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return 0
        if not raw:
            return 0
        if not raw.endswith(b"\n"):
            keep = raw[: raw.rfind(b"\n") + 1] if b"\n" in raw else b""
            self.path.write_bytes(keep)
            raw = keep
        return sum(1 for line in raw.splitlines() if line.strip())

    @property
    def seq(self) -> int:
        """The sequence number the next write will get."""
        return self._seq

    def write(self, point: dict) -> dict:
        """Envelope, append, and flush one point; returns the record."""
        record = {"v": HISTORY_VERSION, "seq": self._seq}
        record.update(point)
        self._seq += 1
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        self._handle.flush()
        return record

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "HistoryWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
