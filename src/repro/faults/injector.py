"""Wiring a :class:`FaultSchedule` into the running system simulator.

The injector is deliberately thin: it schedules one engine event per
fault and dispatches each to the simulator's resilience hooks
(``fail_core``, ``stall_core``, ``degrade_bandwidth``,
``inject_ecc_error``).  All recovery *policy* — displacement,
re-admission, the mode ladder — lives in
:mod:`repro.sim.system`; all fault *timing* lives in
:mod:`repro.faults.model`.  Keeping the glue separate means a test can
hand the simulator a hand-written schedule of one surgical fault and
assert the exact recovery sequence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.model import FaultEvent, FaultKind, FaultSchedule
from repro.obs import get_observer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.system import QoSSystemSimulator


class SystemFaultInjector:
    """Schedules a fault timeline onto a system simulator's event queue."""

    def __init__(
        self, simulator: "QoSSystemSimulator", schedule: FaultSchedule
    ) -> None:
        self.simulator = simulator
        self.schedule = schedule
        self.injected = 0
        self.armed = False

    def arm(self) -> None:
        """Schedule every fault event (idempotent; call before running)."""
        if self.armed:
            return
        self.armed = True
        for event in self.schedule:
            self.simulator.events.schedule(
                event.time, self._make_handler(event)
            )

    def _make_handler(self, event: FaultEvent):
        def fire(now: float) -> None:
            simulator = self.simulator
            if simulator.finished:
                return
            self.injected += 1
            simulator.record_fault(event, now)
            obs = get_observer()
            if obs.enabled:
                obs.metrics.counter(
                    "faults.injected", kind=event.kind.value
                ).inc()
                obs.events.emit(
                    "fault",
                    now,
                    fault_kind=event.kind.value,
                    target=event.target,
                    duration=event.duration,
                    magnitude=event.magnitude,
                )
            if event.kind is FaultKind.CORE_FAILURE:
                simulator.fail_core(
                    event.target, duration=event.duration, now=now
                )
            elif event.kind is FaultKind.CORE_STALL:
                simulator.stall_core(
                    event.target, duration=event.duration, now=now
                )
            elif event.kind is FaultKind.BANDWIDTH_DEGRADATION:
                simulator.degrade_bandwidth(
                    event.magnitude, duration=event.duration, now=now
                )
            elif event.kind is FaultKind.ECC_TAG_ERROR:
                simulator.inject_ecc_error(event.target, now=now)

        return fire
