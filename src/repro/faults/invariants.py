"""Conservation-law checking for the system simulator.

Fault injection exercises recovery paths that the happy-path test
suite never reaches; a bug there typically corrupts shared-resource
accounting long before it corrupts a headline metric.  The
:class:`InvariantChecker` therefore re-asserts the simulator's
conservation laws every N fired events:

- reserved cache ways across running reserved jobs never exceed the
  L2 associativity (the paper's partitioning substrate guarantees
  exclusivity);
- the LAC's reservation timeline never oversubscribes node capacity
  at the current instant;
- no job retires more instructions than it was admitted for, and no
  job has a negative execution rate;
- the bandwidth model's derate state stays physical (positive
  effective peak, no negative utilisation).

Violations raise :class:`InvariantViolation` (an ``AssertionError``
subclass) naming the broken law, so a faulted run fails loudly at the
first inconsistent event instead of emitting a quietly-wrong report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.system import QoSSystemSimulator

_PROGRESS_TOLERANCE = 1e-3  # instructions; matches the engine epsilon


class InvariantViolation(AssertionError):
    """A simulator conservation law was broken."""


class InvariantChecker:
    """Periodic conservation-law assertions over a live simulator."""

    def __init__(
        self, simulator: "QoSSystemSimulator", *, every_n_events: int = 256
    ) -> None:
        check_positive("every_n_events", every_n_events)
        self.simulator = simulator
        self.every_n_events = every_n_events
        self.checks_run = 0
        self._next_check = every_n_events

    def maybe_check(self) -> None:
        """Run :meth:`check` if at least N events fired since the last."""
        fired = self.simulator.events.events_fired
        if fired < self._next_check:
            return
        self._next_check = fired + self.every_n_events
        self.check()

    def check(self) -> None:
        """Assert every conservation law right now."""
        sim = self.simulator
        now = sim.events.now

        reserved_ways = 0
        for state in sim._states.values():
            if state.reserved_running:
                reserved_ways += state.ways
            if state.rate < 0.0:
                raise InvariantViolation(
                    f"job {state.job.job_id} has negative rate "
                    f"{state.rate} at t={now}"
                )
            if (
                state.progress
                > state.job.instructions + _PROGRESS_TOLERANCE
            ):
                raise InvariantViolation(
                    f"job {state.job.job_id} retired {state.progress} of "
                    f"{state.job.instructions} admitted instructions"
                )
        if reserved_ways > sim.machine.l2_ways:
            raise InvariantViolation(
                f"partition ways oversubscribed: {reserved_ways} reserved "
                f"in a {sim.machine.l2_ways}-way L2 at t={now}"
            )

        used = sim.lac.used_at(max(now, 0.0))
        if not used.fits_within(sim.lac.capacity):
            raise InvariantViolation(
                f"LAC timeline oversubscribed at t={now}: {used} used of "
                f"{sim.lac.capacity}"
            )

        effective_peak = sim.bandwidth.effective_peak_bytes_per_second
        if effective_peak <= 0.0:
            raise InvariantViolation(
                f"bandwidth model has non-positive effective peak "
                f"{effective_peak} at t={now}"
            )
        if sim.bandwidth.utilisation(0.0) < 0.0:
            raise InvariantViolation("negative bus utilisation at zero load")

        self.checks_run += 1
