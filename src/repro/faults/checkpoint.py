"""Checkpoint/resume for long simulations.

The event heap holds closures, so snapshotting the live object graph
would be both fragile and Python-version-sensitive.  The simulator is
instead *fully deterministic* — same inputs, same event sequence — so a
checkpoint records the inputs plus the number of events already fired,
and resume rebuilds the simulator and replays deterministically up to
that point (the deterministic-replay checkpointing used by
checkpointed architecture simulators; see the gem5 reproducibility work
in PAPERS.md).  Replay costs compute but zero fidelity: the resumed
run's remaining trajectory is byte-identical to an uninterrupted one,
which the test suite pins.

Checkpoints are pickle files with a version field; loading rejects
unknown versions instead of resuming a subtly-incompatible state.
"""

from __future__ import annotations

import dataclasses
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, TYPE_CHECKING, Union

from repro.faults.model import FaultConfig
from repro.sim.config import MachineConfig, SimulationConfig
from repro.workloads.composer import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.system import QoSSystemSimulator
    from repro.workloads.profiler import MissRatioCurve

PathLike = Union[str, Path]

# v2 added cache_backend: a machine configured with backend=None follows
# the *session* default, and deterministic replay must not depend on
# which session performs it.
CHECKPOINT_VERSION = 2


@dataclass(frozen=True)
class SimulationCheckpoint:
    """Everything needed to reconstruct a mid-run simulation."""

    version: int
    events_fired: int
    sim_time: float
    workload: WorkloadSpec
    machine: MachineConfig
    sim_config: SimulationConfig
    fault_config: Optional[FaultConfig]
    record_trace: bool
    # The backend the checkpointed run actually used, resolved at
    # checkpoint time.  Under deterministic-replay checkpointing the
    # cache contents are not snapshotted — they are reconstructed by
    # replay — so the backend *name* is the only backend state a
    # checkpoint needs, but it must be pinned explicitly.
    cache_backend: str = "reference"
    # Registry name of the adaptive policy driving the run (None: no
    # policy).  Policies are deterministic functions of the trajectory,
    # so the name is all replay needs; the class-level default keeps
    # pre-policy pickles loadable.
    policy: Optional[str] = None

    def describe(self) -> str:
        """One-line summary for CLI output."""
        return (
            f"checkpoint v{self.version}: {self.workload.name} at "
            f"{self.events_fired} events (t={self.sim_time * 1e3:.3f} ms)"
        )


def checkpoint_simulator(
    simulator: "QoSSystemSimulator",
) -> SimulationCheckpoint:
    """Capture a resumable checkpoint of ``simulator`` right now.

    Valid at any point between events — typically after a
    budget-limited :meth:`~repro.sim.system.QoSSystemSimulator.run`
    returned a partial result.
    """
    policy_name: Optional[str] = None
    if simulator.policy is not None:
        from repro.core.policy import policy_names

        policy_name = simulator.policy.name
        if policy_name not in policy_names():
            raise ValueError(
                f"policy {policy_name!r} is not in the registry; replay "
                "could not reconstruct it, so the run cannot be "
                "checkpointed"
            )
    return SimulationCheckpoint(
        version=CHECKPOINT_VERSION,
        events_fired=simulator.events.events_fired,
        sim_time=simulator.events.now,
        workload=simulator.workload,
        machine=simulator.machine,
        sim_config=simulator.sim_config,
        fault_config=simulator.fault_config,
        record_trace=simulator.record_trace,
        cache_backend=simulator.machine.resolved_cache_backend,
        policy=policy_name,
    )


def save_checkpoint(
    checkpoint: SimulationCheckpoint, path: PathLike
) -> Path:
    """Write ``checkpoint`` to ``path``; returns the path written.

    Atomic + fsync'd (:mod:`repro.util.atomicio`): a checkpoint is the
    recovery artefact of last resort, so a crash *while writing it*
    must never destroy the previous good checkpoint at the same path.
    """
    from repro.util.atomicio import write_atomic_bytes

    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    return write_atomic_bytes(Path(path), payload)


def load_checkpoint(path: PathLike) -> SimulationCheckpoint:
    """Read a checkpoint, validating its version."""
    path = Path(path)
    with open(path, "rb") as handle:
        checkpoint = handle.read()
    loaded = pickle.loads(checkpoint)
    if not isinstance(loaded, SimulationCheckpoint):
        raise ValueError(f"{path} is not a simulation checkpoint")
    if loaded.version != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path} is checkpoint version {loaded.version}; this build "
            f"reads version {CHECKPOINT_VERSION}"
        )
    return loaded


def resume_simulator(
    checkpoint: SimulationCheckpoint,
    *,
    curves: Optional[Dict[str, "MissRatioCurve"]] = None,
) -> "QoSSystemSimulator":
    """Reconstruct a simulator positioned exactly at ``checkpoint``.

    The returned simulator has replayed ``checkpoint.events_fired``
    events; call :meth:`~repro.sim.system.QoSSystemSimulator.run` on it
    to continue to completion.  ``curves`` may supply pre-profiled
    miss-ratio curves to skip re-profiling; profiling is deterministic,
    so omitting them changes nothing but startup time.
    """
    from repro.core.policy import make_policy
    from repro.sim.engine import RUN_EVENT_BUDGET, RunBudget
    from repro.sim.system import QoSSystemSimulator

    # Pin the recorded backend: the current session's default must not
    # leak into a replay of a run configured under another default.
    machine = checkpoint.machine
    if machine.cache_backend != checkpoint.cache_backend:
        machine = dataclasses.replace(
            machine, cache_backend=checkpoint.cache_backend
        )
    simulator = QoSSystemSimulator(
        checkpoint.workload,
        machine=machine,
        sim_config=checkpoint.sim_config,
        curves=curves,
        record_trace=checkpoint.record_trace,
        fault_config=checkpoint.fault_config,
        policy=(
            make_policy(checkpoint.policy)
            if checkpoint.policy is not None
            else None
        ),
    )
    simulator.start()
    outcome = simulator.events.run(
        stop_when=lambda: simulator.finished,
        budget=RunBudget(max_events=checkpoint.events_fired),
    )
    if outcome != RUN_EVENT_BUDGET and not simulator.finished:
        raise RuntimeError(
            f"replay stopped early ({outcome}) after "
            f"{simulator.events.events_fired} of "
            f"{checkpoint.events_fired} events; the checkpoint does not "
            "match this workload/configuration"
        )
    return simulator
