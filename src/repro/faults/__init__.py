"""Fault injection and graceful degradation for the QoS simulator.

The package splits cleanly into mechanism and policy:

- :mod:`~repro.faults.model` — *what and when*: deterministic, seeded
  fault timelines (:class:`FaultSchedule`, :class:`FaultConfig`);
- :mod:`~repro.faults.injector` — *delivery*: arming a timeline onto a
  running simulator's event queue;
- :mod:`~repro.faults.resilience` — *recovery policy*: the
  strict → elastic → opportunistic → best-effort downgrade ladder and
  bounded-backoff re-admission (:class:`RetryPolicy`);
- :mod:`~repro.faults.invariants` — *safety net*: periodic
  conservation-law assertions (:class:`InvariantChecker`);
- :mod:`~repro.faults.checkpoint` — *durability*: deterministic-replay
  checkpoint/resume of long (possibly faulted) simulations.
"""

from repro.faults.checkpoint import (
    CHECKPOINT_VERSION,
    SimulationCheckpoint,
    checkpoint_simulator,
    load_checkpoint,
    resume_simulator,
    save_checkpoint,
)
from repro.faults.injector import SystemFaultInjector
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.model import (
    FaultConfig,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)
from repro.faults.resilience import (
    LADDER,
    DegradationStage,
    RetryPolicy,
    downgrade_mode,
    mode_for_stage,
    next_stage,
    stage_for_mode,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "DegradationStage",
    "FaultConfig",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "InvariantChecker",
    "InvariantViolation",
    "LADDER",
    "RetryPolicy",
    "SimulationCheckpoint",
    "SystemFaultInjector",
    "checkpoint_simulator",
    "downgrade_mode",
    "load_checkpoint",
    "mode_for_stage",
    "next_stage",
    "resume_simulator",
    "save_checkpoint",
    "stage_for_mode",
]
