"""Graceful-degradation policy: retry with backoff, downgrade the mode.

When a core failure displaces a reserved job, the system does not give
up on it — it walks the paper's own execution-mode ladder (Sections
3.3–3.4) one rung at a time, re-probing the Local Admission Controller
between rungs:

    Strict → Elastic(X) → Opportunistic → best-effort

Each re-admission attempt waits an exponentially-backed-off delay (the
LAC timeline right after a fault is exactly where it was when admission
failed; retrying immediately is wasted work), and after ``max_retries``
failed attempts at reserved rungs the job drops to Opportunistic
execution.  The terminal *best-effort* stage is Opportunistic execution
with no further recovery attempts: the job runs on whatever is spare
and its deadline promise is formally surrendered — degraded, but never
silently lost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.modes import ExecutionMode, ModeKind
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)


class DegradationStage(enum.Enum):
    """Rungs of the fault-recovery ladder, most- to least-guaranteed."""

    STRICT = "strict"
    ELASTIC = "elastic"
    OPPORTUNISTIC = "opportunistic"
    BEST_EFFORT = "best-effort"


#: Ladder order used by :func:`next_stage`.
LADDER = (
    DegradationStage.STRICT,
    DegradationStage.ELASTIC,
    DegradationStage.OPPORTUNISTIC,
    DegradationStage.BEST_EFFORT,
)


def stage_for_mode(mode: ExecutionMode) -> DegradationStage:
    """The ladder rung a job currently executing in ``mode`` occupies."""
    if mode.kind is ModeKind.STRICT:
        return DegradationStage.STRICT
    if mode.kind is ModeKind.ELASTIC:
        return DegradationStage.ELASTIC
    return DegradationStage.OPPORTUNISTIC


def next_stage(stage: DegradationStage) -> Optional[DegradationStage]:
    """The rung below ``stage``, or ``None`` at the ladder's bottom."""
    index = LADDER.index(stage)
    if index + 1 >= len(LADDER):
        return None
    return LADDER[index + 1]


def mode_for_stage(
    stage: DegradationStage, *, elastic_slack: float
) -> Optional[ExecutionMode]:
    """Execution mode of a ladder rung.

    ``None`` for BEST_EFFORT: best-effort is *executed* as
    Opportunistic but is a distinct contract (no re-admission attempts
    remain), so callers must treat it explicitly rather than receiving
    a mode that looks recoverable.
    """
    if stage is DegradationStage.STRICT:
        return ExecutionMode.strict()
    if stage is DegradationStage.ELASTIC:
        check_probability("elastic_slack", elastic_slack)
        return ExecutionMode.elastic(elastic_slack)
    if stage is DegradationStage.OPPORTUNISTIC:
        return ExecutionMode.opportunistic()
    return None


def downgrade_mode(
    mode: ExecutionMode, *, elastic_slack: float
) -> Optional[ExecutionMode]:
    """One ladder rung down from ``mode``; ``None`` once past Opportunistic."""
    stage = next_stage(stage_for_mode(mode))
    if stage is None:
        return None
    return mode_for_stage(stage, elastic_slack=elastic_slack)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for re-admission.

    ``delay(attempt)`` is ``backoff_base * backoff_factor**attempt``;
    attempt numbering starts at zero (the first post-fault re-admission
    already waits one base delay — the LAC state that just rejected the
    job cannot have improved instantaneously).
    """

    max_retries: int = 3
    backoff_base: float = 0.002
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        check_non_negative("max_retries", self.max_retries)
        check_positive("backoff_base", self.backoff_base)
        check_positive("backoff_factor", self.backoff_factor)

    def delay(self, attempt: int) -> float:
        """Backoff delay before re-admission attempt ``attempt``."""
        check_non_negative("attempt", attempt)
        return self.backoff_base * self.backoff_factor**attempt

    def exhausted(self, attempt: int) -> bool:
        """Whether attempt ``attempt`` exceeds the retry budget."""
        return attempt >= self.max_retries
