"""Deterministic fault models: what goes wrong, and when.

The QoS framework's central promise is that reserved jobs keep their
guarantees *under adverse conditions* — the admission controller and
mode ladder exist precisely so the system degrades gracefully instead
of collapsing (Sections 3.3–3.4 of the paper).  This module provides
the adversity: a seed-driven :class:`FaultSchedule` of core failures,
core stalls, DRAM bandwidth brown-outs, and duplicate-tag-array ECC
upsets.

Determinism is the design constraint.  Fault inter-arrival times and
targets are drawn from :class:`~repro.util.rng.DeterministicRng`
streams derived from the fault seed alone (one stream per fault kind),
so the timeline is byte-identical across runs with the same seed and
completely independent of the simulation's own randomness — enabling
the schedule to be regenerated exactly on checkpoint resume, and
compared via :meth:`FaultSchedule.digest` in regression tests.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.util.rng import DeterministicRng
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)


class FaultKind(enum.Enum):
    """The fault families the injector understands."""

    CORE_FAILURE = "core-failure"
    CORE_STALL = "core-stall"
    BANDWIDTH_DEGRADATION = "bandwidth-degradation"
    ECC_TAG_ERROR = "ecc-tag-error"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` selects the victim deterministically: a core index for
    core faults, and a selection index (reduced modulo the candidate
    count at injection time) for ECC upsets.  ``duration`` is how long
    the fault persists (repair time, stall length, brown-out window);
    ``magnitude`` is kind-specific (the bandwidth derate factor).
    """

    time: float
    kind: FaultKind
    target: int = 0
    duration: float = 0.0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("time", self.time)
        check_non_negative("target", self.target)
        check_non_negative("duration", self.duration)
        check_probability("magnitude", self.magnitude)

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        extra = ""
        if self.kind in (FaultKind.CORE_FAILURE, FaultKind.CORE_STALL):
            extra = f" core {self.target}, {self.duration * 1e3:.2f} ms"
        elif self.kind is FaultKind.BANDWIDTH_DEGRADATION:
            extra = (
                f" x{self.magnitude:.2f} peak for "
                f"{self.duration * 1e3:.2f} ms"
            )
        return f"t={self.time * 1e3:.3f} ms {self.kind.value}{extra}"

    def to_dict(self) -> dict:
        """JSON-friendly representation (checkpoint and report use)."""
        return {
            "time": self.time,
            "kind": self.kind.value,
            "target": self.target,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault process plus the resilience policy.

    Rates are mean fault counts per simulated second (the fault process
    is Poisson per kind, matching the arrival modelling elsewhere in
    the reproduction).  All rates default to zero: a default-constructed
    config injects nothing, and a simulation configured with it is
    byte-identical to one with no fault config at all.
    """

    seed: int = 7
    # Core failures: the core goes down, its reserved job is displaced
    # and must be re-admitted; repairs arrive after ``core_repair_time``.
    core_failure_rate: float = 0.0
    core_repair_time: float = 0.05
    # Core stalls: transient — jobs on the core stop retiring for the
    # stall, keeping their reservations (they may then overrun).
    core_stall_rate: float = 0.0
    core_stall_duration: float = 0.005
    # Bandwidth brown-outs: the bus peak is derated by ``factor`` for a
    # window, inflating Opportunistic miss penalties via the M/M/1 bus.
    bandwidth_degradation_rate: float = 0.0
    bandwidth_derate_factor: float = 0.5
    bandwidth_degradation_duration: float = 0.02
    # ECC upsets in the duplicate (shadow) tag arrays: the stealing
    # feedback becomes untrustworthy, forcing a conservative cancel.
    ecc_error_rate: float = 0.0
    # Resilience policy: bounded re-admission retries with exponential
    # backoff, and the Elastic slack granted on the first downgrade
    # rung of the strict → elastic → opportunistic → best-effort ladder.
    max_retries: int = 3
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    elastic_downgrade_slack: float = 0.10
    # Conservation-law checking cadence (events); 0 disables.
    invariant_check_interval: int = 256
    # Fault-process horizon in simulated seconds; ``None`` lets the
    # simulator estimate one from the workload's wall-clock scale.
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        check_non_negative("core_failure_rate", self.core_failure_rate)
        check_positive("core_repair_time", self.core_repair_time)
        check_non_negative("core_stall_rate", self.core_stall_rate)
        check_positive("core_stall_duration", self.core_stall_duration)
        check_non_negative(
            "bandwidth_degradation_rate", self.bandwidth_degradation_rate
        )
        check_probability(
            "bandwidth_derate_factor", self.bandwidth_derate_factor
        )
        if self.bandwidth_derate_factor == 0:
            raise ValueError(
                "bandwidth_derate_factor must be positive (0 would model "
                "a severed bus, which deadlocks every Opportunistic job)"
            )
        check_positive(
            "bandwidth_degradation_duration",
            self.bandwidth_degradation_duration,
        )
        check_non_negative("ecc_error_rate", self.ecc_error_rate)
        check_non_negative("max_retries", self.max_retries)
        check_positive("backoff_base", self.backoff_base)
        check_positive("backoff_factor", self.backoff_factor)
        check_probability(
            "elastic_downgrade_slack", self.elastic_downgrade_slack
        )
        if self.elastic_downgrade_slack == 0:
            raise ValueError(
                "elastic_downgrade_slack must be positive: Elastic(0) "
                "is just Strict, so the downgrade ladder would stall"
            )
        check_non_negative(
            "invariant_check_interval", self.invariant_check_interval
        )
        if self.horizon is not None:
            check_positive("horizon", self.horizon)

    @property
    def has_any_faults(self) -> bool:
        """Whether any fault process has a non-zero rate."""
        return any(
            rate > 0.0
            for rate in (
                self.core_failure_rate,
                self.core_stall_rate,
                self.bandwidth_degradation_rate,
                self.ecc_error_rate,
            )
        )


#: (kind, rate attr, duration attr or None, magnitude attr or None)
_KIND_SPECS: Tuple[Tuple[FaultKind, str, Optional[str], Optional[str]], ...] = (
    (FaultKind.CORE_FAILURE, "core_failure_rate", "core_repair_time", None),
    (FaultKind.CORE_STALL, "core_stall_rate", "core_stall_duration", None),
    (
        FaultKind.BANDWIDTH_DEGRADATION,
        "bandwidth_degradation_rate",
        "bandwidth_degradation_duration",
        "bandwidth_derate_factor",
    ),
    (FaultKind.ECC_TAG_ERROR, "ecc_error_rate", None, None),
)


class FaultSchedule:
    """An immutable, time-ordered fault timeline.

    Build one with :meth:`generate` (seeded Poisson processes) or
    directly from hand-written :class:`FaultEvent` lists in tests.
    """

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.kind.value, e.target))
        )

    @staticmethod
    def generate(
        config: FaultConfig, *, horizon: float, num_cores: int
    ) -> "FaultSchedule":
        """Draw the fault timeline over ``[0, horizon)``.

        Each fault kind uses its own RNG stream derived from
        ``(config.seed, kind)``, so enabling one kind never perturbs
        another kind's draws — the same stream-independence property
        the rest of the reproduction relies on.
        """
        check_positive("horizon", horizon)
        check_positive("num_cores", num_cores)
        events: List[FaultEvent] = []
        for kind, rate_attr, duration_attr, magnitude_attr in _KIND_SPECS:
            rate = getattr(config, rate_attr)
            if rate <= 0.0:
                continue
            duration = (
                getattr(config, duration_attr) if duration_attr else 0.0
            )
            magnitude = (
                getattr(config, magnitude_attr) if magnitude_attr else 1.0
            )
            stream = DeterministicRng(config.seed, f"faults/{kind.value}")
            at = stream.exponential(1.0 / rate)
            while at < horizon:
                events.append(
                    FaultEvent(
                        time=at,
                        kind=kind,
                        target=stream.randint(0, num_cores - 1),
                        duration=duration,
                        magnitude=magnitude,
                    )
                )
                at += stream.exponential(1.0 / rate)
        return FaultSchedule(events)

    # -- container protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The ordered fault events."""
        return self._events

    def counts_by_kind(self) -> dict:
        """Number of scheduled events per fault kind value."""
        counts: dict = {}
        for event in self._events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    def events_between(self, start: float, end: float) -> List[FaultEvent]:
        """Events with ``start <= time < end``."""
        return [e for e in self._events if start <= e.time < end]

    def to_dicts(self) -> List[dict]:
        """JSON-friendly timeline (report/checkpoint serialisation)."""
        return [event.to_dict() for event in self._events]

    def digest(self) -> str:
        """SHA-256 over the timeline — the determinism fingerprint.

        Two schedules with the same digest injected the byte-identical
        fault sequence; regression tests pin this instead of comparing
        event lists element-wise.
        """
        payload = repr(self.to_dicts()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultSchedule({len(self._events)} events, "
            f"digest={self.digest()[:12]})"
        )
