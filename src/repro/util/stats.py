"""Running statistics accumulators.

Cache statistics, wall-clock-time summaries (Figure 6 of the paper shows
average plus min/max "candles"), and LAC occupancy tracking all need
streaming mean/min/max/variance without storing every sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class RunningStats:
    """Welford-style streaming mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples seen so far (0.0 if none)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample seen; raises if empty."""
        if self._min is None:
            raise ValueError("no samples accumulated")
        return self._min

    @property
    def maximum(self) -> float:
        """Largest sample seen; raises if empty."""
        if self._max is None:
            raise ValueError("no samples accumulated")
        return self._max

    @property
    def spread(self) -> float:
        """``max - min``: the length of the Figure-6 candle."""
        return self.maximum - self.minimum

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator combining both sets of samples."""
        merged = RunningStats()
        if self.count == 0:
            merged.count = other.count
            merged._mean = other._mean
            merged._m2 = other._m2
            merged._min, merged._max = other._min, other._max
            return merged
        if other.count == 0:
            merged.count = self.count
            merged._mean = self._mean
            merged._m2 = self._m2
            merged._min, merged._max = self._min, self._max
            return merged
        merged.count = self.count + other.count
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged._min = min(self._min, other._min)  # type: ignore[arg-type]
        merged._max = max(self._max, other._max)  # type: ignore[arg-type]
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "RunningStats(empty)"
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.4g}, "
            f"min={self.minimum:.4g}, max={self.maximum:.4g})"
        )


class SampleStats(RunningStats):
    """:class:`RunningStats` that also retains the raw samples.

    Pairwise :meth:`RunningStats.merge` is exact in count/min/max but
    not bit-exact in the mean (float addition is non-associative), so a
    parent process merging worker accumulators cannot reproduce the
    serial run's snapshot byte for byte.  Worker-side registries
    therefore record with this class and the parent *replays* the
    samples in input order — the exact additions the serial run would
    have performed.  Memory is bounded by the worker's sample count,
    which telemetry summaries keep small (per-job, per-phase numbers).
    """

    def __init__(self) -> None:
        super().__init__()
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        super().add(value)
        self.samples.append(value)


@dataclass
class Histogram:
    """Fixed-width-bucket histogram for coarse distribution summaries."""

    bucket_width: float
    _buckets: Dict[int, int] = field(default_factory=dict)
    _stats: RunningStats = field(default_factory=RunningStats)

    def __post_init__(self) -> None:
        # Validate at construction, not on first add(): a misconfigured
        # histogram that never receives a sample used to go unnoticed.
        if self.bucket_width <= 0:
            raise ValueError(
                f"bucket_width must be positive, got {self.bucket_width}"
            )

    def add(self, value: float) -> None:
        """Record one sample."""
        index = int(value // self.bucket_width)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self._stats.add(value)

    @property
    def count(self) -> int:
        """Total number of samples."""
        return self._stats.count

    def merge(self, other: "Histogram") -> "Histogram":
        """Return a new histogram combining both sets of samples.

        Bucket counts are integers, so the merged bucket table is exact
        regardless of merge order; the embedded streaming stats merge
        pairwise (see :meth:`RunningStats.merge`).
        """
        if other.bucket_width != self.bucket_width:
            raise ValueError(
                f"cannot merge histograms with bucket widths "
                f"{self.bucket_width} and {other.bucket_width}"
            )
        merged = Histogram(bucket_width=self.bucket_width)
        counts = dict(self._buckets)
        for index, bucket_count in other._buckets.items():
            counts[index] = counts.get(index, 0) + bucket_count
        merged._buckets = counts
        merged._stats = self._stats.merge(other._stats)
        return merged

    @property
    def stats(self) -> RunningStats:
        """The underlying streaming statistics."""
        return self._stats

    def buckets(self) -> List[tuple]:
        """Return ``(bucket_low_edge, count)`` pairs, sorted by edge."""
        return [
            (index * self.bucket_width, self._buckets[index])
            for index in sorted(self._buckets)
        ]

    def percentile(self, q: float) -> float:
        """Approximate the ``q``-th percentile (0–100) from bucket edges."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._buckets:
            raise ValueError("histogram is empty")
        target = self.count * q / 100.0
        seen = 0
        for edge, bucket_count in self.buckets():
            seen += bucket_count
            if seen >= target:
                return edge + self.bucket_width / 2
        last_edge, _ = self.buckets()[-1]
        return last_edge + self.bucket_width / 2
