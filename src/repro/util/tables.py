"""Plain-text table rendering.

The benchmark harness regenerates the paper's tables and figure series as
text; this module renders them in a fixed-width grid so the bench output
reads like the paper's tables.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def _render_cell(cell: Cell, float_format: str) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return format(cell, float_format)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    title: str = "",
    float_format: str = ".3f",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Floats are formatted with ``float_format``; ``None`` renders as "-".
    Returns the table as a single string (no trailing newline).
    """
    rendered_rows: List[List[str]] = [
        [_render_cell(cell, float_format) for cell in row] for row in rows
    ]
    for i, row in enumerate(rendered_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are "
                f"{len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(list(headers)))
    lines.append(separator)
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[Cell],
    ys: Sequence[Cell],
    *,
    x_label: str = "x",
    y_label: str = "y",
    float_format: str = ".3f",
) -> str:
    """Render an (x, y) series — one figure line — as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError(f"xs ({len(xs)}) and ys ({len(ys)}) differ in length")
    return format_table(
        [x_label, y_label],
        list(zip(xs, ys)),
        title=name,
        float_format=float_format,
    )
