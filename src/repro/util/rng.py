"""Deterministic random-number streams.

Every stochastic component of the reproduction (trace generators, arrival
processes, deadline assignment) draws from a :class:`DeterministicRng`.
Streams are derived from a parent seed plus a string label, so adding a
new consumer of randomness never perturbs the draws seen by existing
consumers — a property we rely on for regression-stable experiments.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a stream ``label``.

    The derivation hashes ``(parent_seed, label)`` with SHA-256 so that
    child streams are statistically independent, stable across Python
    versions (unlike ``hash()``), and insensitive to derivation order.
    """
    payload = f"{parent_seed}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & _MASK_64


class DeterministicRng:
    """A named, seedable random stream.

    Wraps :class:`random.Random` (Mersenne Twister) with convenience
    draws used by the simulator, and supports cheap forking of
    independent child streams via :meth:`stream`.
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = seed & _MASK_64
        self.label = label
        self._random = random.Random(self.seed)

    def stream(self, label: str) -> "DeterministicRng":
        """Return an independent child stream named ``label``.

        Child streams depend only on this stream's *seed* and the label,
        never on how many values have already been drawn, so components
        can be created in any order.
        """
        return DeterministicRng(derive_seed(self.seed, label), label)

    # -- scalar draws -----------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a float uniformly from ``[low, high)``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def exponential(self, mean: float) -> float:
        """Draw from an exponential distribution with the given mean.

        Used for Poisson inter-arrival times (Section 6 of the paper).
        """
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def zipf_index(self, n: int, alpha: float = 1.0) -> int:
        """Draw an index in ``[0, n)`` with Zipf(alpha) popularity.

        Implemented by inverse-CDF over the truncated harmonic weights;
        the CDF is cached per ``(n, alpha)`` pair because trace
        generators draw millions of indices from the same distribution.
        """
        cdf = self._zipf_cdf(n, alpha)
        u = self._random.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _zipf_cdf(self, n: int, alpha: float) -> List[float]:
        key = (n, alpha)
        cache = getattr(self, "_zipf_cache", None)
        if cache is None:
            cache = {}
            self._zipf_cache = cache
        if key not in cache:
            weights = [1.0 / ((i + 1) ** alpha) for i in range(n)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for w in weights:
                acc += w
                cdf.append(acc / total)
            cache[key] = cdf
        return cache[key]

    # -- collection draws -------------------------------------------------

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element uniformly from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with the given relative weights."""
        if len(items) != len(weights):
            raise ValueError(
                f"items ({len(items)}) and weights ({len(weights)}) must "
                "have the same length"
            )
        return self._random.choices(items, weights=weights, k=1)[0]

    def sample_without_replacement(self, population: Sequence[T], k: int) -> List[T]:
        """Draw ``k`` distinct elements."""
        return self._random.sample(list(population), k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRng(seed={self.seed:#x}, label={self.label!r})"
