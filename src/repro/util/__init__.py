"""Shared low-level utilities for the QoS-CMP reproduction.

This package deliberately contains only dependency-free helpers:

- :mod:`repro.util.rng` — deterministic, independently seedable random
  streams so that every simulation is reproducible run-to-run.
- :mod:`repro.util.validation` — argument-checking helpers that raise
  uniform, descriptive errors.
- :mod:`repro.util.stats` — running statistics accumulators (mean, min,
  max, variance) used by cache statistics and the metrics layer.
- :mod:`repro.util.tables` — plain-text table rendering used by the
  benchmark harness to print paper-style tables.
"""

from repro.util.rng import DeterministicRng, derive_seed
from repro.util.stats import Histogram, RunningStats
from repro.util.tables import format_table
from repro.util.validation import (
    check_finite,
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "DeterministicRng",
    "derive_seed",
    "RunningStats",
    "Histogram",
    "format_table",
    "check_finite",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_probability",
    "check_in_range",
    "check_power_of_two",
]
