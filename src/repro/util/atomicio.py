"""Crash-safe file writes: fsync'd temp file + atomic rename.

Every on-disk artefact this repo produces (miss-curve store entries,
checkpoints, exported results, verify cases, server drain snapshots) is
a single file that readers expect to be either complete or absent.  A
plain ``open(...).write(...)`` breaks that contract twice over: a
killed process can leave a truncated file at the final path, and even a
completed ``write`` can be lost or torn by a power cut because nothing
forced the data out of the page cache.

:func:`write_atomic_text` / :func:`write_atomic_bytes` close both
holes: the payload goes to a temp file in the destination directory,
is ``fsync``'d, then ``os.replace``'d over the final name (atomic on
POSIX and Windows for same-directory renames), and finally the
directory entry itself is ``fsync``'d where the platform allows it.
Concurrent writers are safe by construction — each writes its own temp
file and the last rename wins whole, never interleaved.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

PathLike = Union[str, os.PathLike]


def _fsync_directory(directory: Path) -> None:
    """Flush the directory entry so the rename itself survives a crash.

    Best-effort: directories cannot be opened for fsync on some
    platforms (notably Windows), and a store that merely loses the
    *latest* entry on power cut is still correct — the write just
    reverts to a miss.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_atomic_bytes(
    path: PathLike, payload: bytes, *, fsync: bool = True
) -> Path:
    """Atomically replace ``path`` with ``payload``; returns the path.

    The temp file lives in the destination directory (``os.replace``
    must not cross filesystems) and is unlinked on any failure, so an
    interrupted write leaves the previous version of ``path``
    untouched and no partial file at the final name.
    """
    path = Path(path)
    directory = path.parent
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=f".tmp-{path.name}-"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_directory(directory)
    return path


def write_atomic_text(
    path: PathLike,
    text: str,
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> Path:
    """Atomically replace ``path`` with ``text`` (see module docstring)."""
    return write_atomic_bytes(path, text.encode(encoding), fsync=fsync)
