"""Uniform argument validation helpers.

All public constructors in the library validate their inputs through
these helpers so that misconfiguration fails fast with a message naming
the offending parameter, rather than surfacing later as a confusing
simulation result.

Every numeric helper rejects non-finite values (NaN, ±inf) explicitly:
NaN compares False against any bound, so without the explicit check a
NaN would silently *pass* ``check_positive``-style predicates written
in the rejecting direction and poison every downstream computation.
"""

from __future__ import annotations

import math
from typing import Union

Number = Union[int, float]


def check_finite(name: str, value: Number) -> Number:
    """Require ``value`` to be a finite number (no NaN, no ±inf)."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be a finite number, got {value!r}")
    return value


def check_positive(name: str, value: Number) -> Number:
    """Require ``value > 0`` and finite; return it for inline use."""
    check_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Require ``value >= 0`` and finite; return it for inline use."""
    check_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(name: str, value: Number, *, inclusive: bool = True) -> Number:
    """Require ``value`` to be a fraction in ``[0, 1]`` (or ``(0, 1)``)."""
    check_finite(name, value)
    if inclusive:
        if not 0 <= value <= 1:
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0 < value < 1:
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_probability(name: str, value: Number) -> Number:
    """Require ``value`` to be a finite probability in ``[0, 1]``.

    Used for fault rates and per-event probabilities in
    :mod:`repro.faults`, where a NaN slipping through would make a
    "deterministic" fault schedule silently empty or ever-firing.
    """
    return check_fraction(name, value, inclusive=True)


def check_power_of_two(name: str, value: int) -> int:
    """Require ``value`` to be a positive power of two.

    Cache geometries (set counts, block sizes) must be powers of two for
    the address bit-slicing in :mod:`repro.cache.geometry` to be exact.
    """
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value


def check_in_range(name: str, value: Number, low: Number, high: Number) -> Number:
    """Require ``low <= value <= high`` with a finite ``value``."""
    check_finite(name, value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
