"""A minimal deterministic discrete-event engine.

Events are ``(time, sequence, callback)`` triples in a binary heap; ties
in time break by insertion order, which keeps simulations exactly
reproducible.  Cancellation uses lazy invalidation: cancelled handles
stay in the heap and are skipped on pop (cheaper than heap surgery, and
the simulators cancel often when rates change).  To keep rate-change
heavy simulations from growing the heap without bound, the queue
compacts itself — rebuilding the heap without cancelled entries —
whenever cancelled entries outnumber live ones.

:meth:`EventQueue.run` additionally supports *graceful* budgets: an
event-count budget and a wall-clock budget that stop the loop and
report why, instead of raising, so a caller can emit a partial report
or checkpoint and resume later (the robustness surface used by
:mod:`repro.faults`).
"""

from __future__ import annotations

import heapq
import itertools
import math
import time as _time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.obs import get_observer

EventCallback = Callable[[float], None]

#: Outcomes of :meth:`EventQueue.run`.
RUN_DRAINED = "drained"
RUN_HORIZON = "horizon"
RUN_STOPPED = "stopped"
RUN_EVENT_BUDGET = "event-budget"
RUN_WALL_CLOCK_BUDGET = "wall-clock-budget"


@dataclass(frozen=True)
class RunBudget:
    """Graceful stopping budgets for :meth:`EventQueue.run`.

    ``max_events`` bounds events fired *within one run call*;
    ``max_wall_seconds`` bounds real (host) time.  Either may be
    ``None`` for unlimited.  Unlike the engine's ``max_events`` runaway
    guard, exhausting a budget stops cleanly with an outcome string
    rather than raising — the caller decides whether to emit a partial
    report, checkpoint, or resume.
    """

    max_events: Optional[int] = None
    max_wall_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events < 0:
            raise ValueError(
                f"max_events must be non-negative, got {self.max_events}"
            )
        if self.max_wall_seconds is not None and self.max_wall_seconds < 0:
            raise ValueError(
                f"max_wall_seconds must be non-negative, got "
                f"{self.max_wall_seconds}"
            )


@dataclass(order=True)
class _HeapEntry:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    popped: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle allowing an event to be cancelled."""

    def __init__(self, entry: _HeapEntry, queue: "EventQueue") -> None:
        self._entry = entry
        self._queue = queue

    @property
    def time(self) -> float:
        """The scheduled firing time."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self._entry.cancelled:
            return
        self._entry.cancelled = True
        if not self._entry.popped:
            self._queue._note_cancelled()


class EventQueue:
    """Priority event queue with a monotone simulated clock."""

    #: Compaction never triggers below this raw heap size, so small
    #: queues keep the cheap lazy-invalidation behaviour.
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._sequence = itertools.count()
        self._cancelled_in_heap = 0
        self.now = 0.0
        self.events_fired = 0

    def schedule(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback(time)`` to run at simulated ``time``."""
        if math.isnan(time):
            raise ValueError("cannot schedule an event at NaN")
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        entry = _HeapEntry(time, next(self._sequence), callback)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry, self)

    def schedule_after(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule relative to the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next live event; return False when the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        entry.popped = True
        self.now = entry.time
        self.events_fired += 1
        entry.callback(entry.time)
        return True

    def run(
        self,
        *,
        until: float = math.inf,
        max_events: int = 10_000_000,
        stop_when: Optional[Callable[[], bool]] = None,
        budget: Optional[RunBudget] = None,
    ) -> str:
        """Drain events until the horizon, a predicate, or exhaustion.

        Returns one of the ``RUN_*`` outcome strings describing why the
        loop stopped.  ``budget`` bounds this call gracefully (see
        :class:`RunBudget`); ``max_events`` stays a runaway guard — a
        simulator bug that reschedules forever raises instead of
        hanging.
        """
        obs = get_observer()
        if not obs.enabled:
            return self._run_loop(
                until=until,
                max_events=max_events,
                stop_when=stop_when,
                budget=budget,
            )
        fired_before = self.events_fired
        with obs.profiler.span("engine.run", event_source=self):
            outcome = self._run_loop(
                until=until,
                max_events=max_events,
                stop_when=stop_when,
                budget=budget,
            )
        obs.metrics.counter("engine.runs", outcome=outcome).inc()
        obs.metrics.counter("engine.events_fired").inc(
            self.events_fired - fired_before
        )
        obs.events.emit(
            "engine.run_end",
            self.now,
            outcome=outcome,
            events_fired=self.events_fired - fired_before,
            pending=len(self),
        )
        return outcome

    def _run_loop(
        self,
        *,
        until: float,
        max_events: int,
        stop_when: Optional[Callable[[], bool]],
        budget: Optional[RunBudget],
    ) -> str:
        fired = 0
        wall_deadline = None
        if budget is not None and budget.max_wall_seconds is not None:
            wall_deadline = _time.monotonic() + budget.max_wall_seconds
        while True:
            if stop_when is not None and stop_when():
                return RUN_STOPPED
            if (
                budget is not None
                and budget.max_events is not None
                and fired >= budget.max_events
            ):
                return RUN_EVENT_BUDGET
            if wall_deadline is not None and _time.monotonic() >= wall_deadline:
                return RUN_WALL_CLOCK_BUDGET
            next_time = self.peek_time()
            if next_time is None:
                return RUN_DRAINED
            if next_time > until:
                return RUN_HORIZON
            self.step()
            fired += 1
            if fired >= max_events:
                raise RuntimeError(
                    f"event budget of {max_events} exhausted at simulated "
                    f"time {self.now}; likely a rescheduling loop"
                )

    def _note_cancelled(self) -> None:
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Heap order among survivors is re-established by ``heapify``;
        relative (time, sequence) ordering — and therefore the event
        schedule — is unchanged.
        """
        self._heap = [entry for entry in self._heap if not entry.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("engine.compactions").inc()

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            entry = heapq.heappop(self._heap)
            entry.popped = True
            self._cancelled_in_heap -= 1

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    @property
    def heap_size(self) -> int:
        """Raw heap size including lazily-cancelled entries.

        Exposed so regression tests can assert the compaction bound:
        cancelled entries never exceed live ones (plus the compaction
        floor).
        """
        return len(self._heap)
