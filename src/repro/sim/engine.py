"""A minimal deterministic discrete-event engine.

Events are ``(time, sequence, callback)`` triples in a binary heap; ties
in time break by insertion order, which keeps simulations exactly
reproducible.  Cancellation uses lazy invalidation: cancelled handles
stay in the heap and are skipped on pop (cheaper than heap surgery, and
the simulators cancel often when rates change).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

EventCallback = Callable[[float], None]


@dataclass(order=True)
class _HeapEntry:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle allowing an event to be cancelled."""

    def __init__(self, entry: _HeapEntry) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        """The scheduled firing time."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._entry.cancelled = True


class EventQueue:
    """Priority event queue with a monotone simulated clock."""

    def __init__(self) -> None:
        self._heap: List[_HeapEntry] = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.events_fired = 0

    def schedule(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback(time)`` to run at simulated ``time``."""
        if math.isnan(time):
            raise ValueError("cannot schedule an event at NaN")
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        entry = _HeapEntry(time, next(self._sequence), callback)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def schedule_after(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule relative to the current time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the next live event; return False when the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self.now = entry.time
        self.events_fired += 1
        entry.callback(entry.time)
        return True

    def run(
        self,
        *,
        until: float = math.inf,
        max_events: int = 10_000_000,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Drain events until the horizon, a predicate, or exhaustion.

        ``max_events`` is a runaway guard: a simulator bug that
        reschedules forever raises instead of hanging.
        """
        fired = 0
        while True:
            if stop_when is not None and stop_when():
                return
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                return
            self.step()
            fired += 1
            if fired >= max_events:
                raise RuntimeError(
                    f"event budget of {max_events} exhausted at simulated "
                    f"time {self.now}; likely a rescheduling loop"
                )

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)
