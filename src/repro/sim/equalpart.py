"""The EqualPart baseline (Table 2, last row).

Mimics Virtual Private Caches without admission control: the L2 is
split equally among the cores (4 ways each on the machine model), every
arriving job is accepted immediately, and a Linux-like scheduler
timeshares jobs round-robin on the least-loaded core.  Jobs still carry
deadlines (assigned exactly as in the QoS configurations) so the
baseline's low deadline hit rates (Figures 5a, 9a) fall out of the
timesharing delay, not out of different workloads.

Bus contention applies to everyone — without a QoS framework there is
no request prioritisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.job import Job, JobState
from repro.core.metrics import (
    DeadlineReport,
    ThroughputReport,
    WallClockSummary,
)
from repro.core.spec import QoSTarget, ResourceVector, TimeslotRequest
from repro.cpu.cpi import CpiModel
from repro.sim.config import MachineConfig, SimulationConfig
from repro.sim.engine import EventHandle, EventQueue
from repro.sim.system import SystemResult, _PROGRESS_EPSILON
from repro.sim.tracing import ExecutionTrace
from repro.util.rng import DeterministicRng
from repro.workloads.arrival import DeadlinePolicy
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.composer import JobSpec, WorkloadSpec
from repro.workloads.profiler import MissRatioCurve, get_curve


@dataclass
class _EqualRun:
    job: Job
    spec: JobSpec
    curve: MissRatioCurve
    cpi_model: CpiModel
    core_id: int
    rate: float = 0.0
    progress: float = 0.0
    completion_handle: Optional[EventHandle] = None


class EqualPartSimulator:
    """Simulate a workload with equal partitioning and no admission."""

    def __init__(
        self,
        workload: WorkloadSpec,
        *,
        machine: Optional[MachineConfig] = None,
        sim_config: Optional[SimulationConfig] = None,
        curves: Optional[Dict[str, MissRatioCurve]] = None,
        record_trace: bool = True,
    ) -> None:
        self.workload = workload
        self.machine = machine if machine is not None else MachineConfig()
        self.sim_config = (
            sim_config if sim_config is not None else SimulationConfig()
        )
        self.bandwidth = self.machine.make_bandwidth_model()
        self.events = EventQueue()
        self.trace = ExecutionTrace()
        self.record_trace = record_trace
        self.rng = DeterministicRng(self.sim_config.seed, "equalpart-sim")
        self._curves = dict(curves) if curves else {}
        self._states: Dict[int, _EqualRun] = {}
        self._accepted: List[Job] = []
        self._last_advance = 0.0
        self._finished = False
        # Equal split: every core owns 1/num_cores of the ways.
        self.ways_per_core = self.machine.l2_ways / self.machine.num_cores

    def _curve_for(self, benchmark: str) -> MissRatioCurve:
        if benchmark not in self._curves:
            self._curves[benchmark] = get_curve(
                get_benchmark(benchmark),
                num_sets=self.sim_config.profile_num_sets,
                accesses=self.sim_config.profile_accesses,
                backend=self.machine.cache_backend,
            )
        return self._curves[benchmark]

    def _requested_wall_clock(self, spec: JobSpec) -> float:
        """The user's tw expectation — at the *requested* allocation.

        Deadlines are ``ta + multiplier * tw`` exactly as in the QoS
        configurations; the user asked for 7 ways and a core whether or
        not this system can deliver them.
        """
        profile = get_benchmark(spec.benchmark)
        curve = self._curve_for(spec.benchmark)
        cpi = profile.cpi_model(
            l2_latency=self.machine.l2_latency,
            memory_latency=self.machine.memory_latency,
        ).cpi(curve.mpi(spec.requested_ways))
        cycles = self.sim_config.instructions_per_job * cpi
        return self.machine.cycles_to_seconds(cycles)

    # -- main entry -------------------------------------------------------------

    def run(self) -> SystemResult:
        """Admit everything at Poisson arrival instants; run to completion."""
        reference_tw = sum(
            self._requested_wall_clock(spec) for spec in self.workload.jobs
        ) / len(self.workload.jobs)
        mean_gap = reference_tw * self.sim_config.probe_interarrival_fraction
        arrival_rng = self.rng.stream("arrivals")
        now = 0.0
        for index, spec in enumerate(self.workload.jobs):
            self.events.schedule(now, self._make_arrival(spec))
            now += arrival_rng.exponential(mean_gap)
        self.events.run(stop_when=lambda: self._finished)
        if not self._finished:
            raise RuntimeError(
                "event queue drained before the workload completed"
            )
        return self._build_result()

    def _make_arrival(self, spec: JobSpec):
        def arrive(now: float) -> None:
            self._advance_all(now)
            self._admit(spec, now)
            self._recompute(now)

        return arrive

    def _admit(self, spec: JobSpec, now: float) -> None:
        tw = self._requested_wall_clock(spec)
        deadline = now + DeadlinePolicy.multiplier(spec.deadline_class) * tw
        target = QoSTarget(
            resources=ResourceVector(
                cores=spec.requested_cores, cache_ways=spec.requested_ways
            ),
            timeslot=TimeslotRequest(max_wall_clock=tw, deadline=deadline),
            mode=spec.mode,
        )
        job = Job(
            job_id=len(self._accepted) + 1,
            benchmark=spec.benchmark,
            target=target,
            arrival_time=now,
            instructions=self.sim_config.instructions_per_job,
        )
        job.mark_accepted()
        # Linux-like placement: least-loaded core, ties to the lowest id.
        loads = [0] * self.machine.num_cores
        for state in self._states.values():
            if state.job.state is JobState.RUNNING:
                loads[state.core_id] += 1
        core = min(range(self.machine.num_cores), key=lambda c: loads[c])
        job.mark_started(now, core_id=core)
        self._accepted.append(job)
        self._states[job.job_id] = _EqualRun(
            job=job,
            spec=spec,
            curve=self._curve_for(spec.benchmark),
            cpi_model=get_benchmark(spec.benchmark).cpi_model(
                l2_latency=self.machine.l2_latency,
                memory_latency=self.machine.memory_latency,
            ),
            core_id=core,
        )

    # -- progress and rates ----------------------------------------------------------

    def _advance_all(self, now: float) -> None:
        delta = now - self._last_advance
        if delta > 0:
            for state in self._states.values():
                if state.job.state is JobState.RUNNING and state.rate > 0:
                    state.progress += state.rate * delta
        self._last_advance = now

    def _recompute(self, now: float) -> None:
        running = [
            s
            for s in self._states.values()
            if s.job.state is JobState.RUNNING
        ]
        # Linux-like load balancing: runnable jobs migrate so cores stay
        # evenly loaded (an idle core never sits next to a queue).
        running.sort(key=lambda s: s.job.job_id)
        for index, state in enumerate(running):
            state.core_id = index % self.machine.num_cores
            state.job.assigned_core = state.core_id
        per_core: Dict[int, List[_EqualRun]] = {}
        for state in running:
            per_core.setdefault(state.core_id, []).append(state)

        # Aggregate bus load with everyone contending equally.
        transfers_per_cycle = 0.0
        for core, jobs_on_core in per_core.items():
            share = 1.0 / len(jobs_on_core)
            for state in jobs_on_core:
                mpi = state.curve.mpi(self.ways_per_core)
                writeback_factor = 1.0 + get_benchmark(
                    state.spec.benchmark
                ).write_fraction
                transfers_per_cycle += (
                    share * mpi * writeback_factor / state.cpi_model.cpi(mpi)
                )
        if self.sim_config.enable_bandwidth_model:
            multiplier = self.bandwidth.penalty_multiplier(
                transfers_per_cycle, self.machine.memory_latency
            )
        else:
            multiplier = 1.0

        for core, jobs_on_core in per_core.items():
            share = 1.0 / len(jobs_on_core)
            for state in jobs_on_core:
                efficiency = self._timeshare_efficiency(
                    len(jobs_on_core), state
                )
                cpi = state.cpi_model.cpi(
                    state.curve.mpi(self.ways_per_core),
                    miss_penalty_multiplier=multiplier,
                )
                state.rate = share * efficiency * self.machine.clock_hz / cpi
                if self.record_trace:
                    self.trace.update(
                        now,
                        state.job.job_id,
                        mode=state.job.current_mode,
                        ways=int(self.ways_per_core),
                        core_id=core,
                        cpu_share=share,
                    )
                self._reschedule_completion(state, now)

    def _timeshare_efficiency(
        self, jobs_on_core: int, state: _EqualRun
    ) -> float:
        """Useful fraction of a quantum after the cold-cache refill.

        When several jobs timeshare one core they also timeshare its
        fixed L2 slice: each quantum begins by re-fetching whatever of
        the job's resident working set the previous job evicted.  For a
        cache-hungry job that is the whole 4-way slice of the 2 MB L2
        (8192 blocks at the 300-cycle miss latency, ~2.5 M cycles of a
        20 M-cycle Linux timeslice); a streaming job re-fetches almost
        nothing.  This timesharing tax (together with queueing for
        cores) drives EqualPart's low deadline hit rates in
        Figures 5(a)/9(a).
        """
        if jobs_on_core <= 1:
            return 1.0
        profile = get_benchmark(state.spec.benchmark)
        resident_ways = min(self.ways_per_core, profile.hot_footprint_ways)
        refill_cycles = (
            resident_ways
            * self.machine.l2_geometry.num_sets
            * self.machine.memory_latency
        )
        quantum_cycles = self.machine.seconds_to_cycles(
            self.machine.timeslice_seconds
        )
        return max(0.1, 1.0 - refill_cycles / quantum_cycles)

    def _reschedule_completion(self, state: _EqualRun, now: float) -> None:
        if state.completion_handle is not None:
            state.completion_handle.cancel()
            state.completion_handle = None
        remaining = state.job.instructions - state.progress
        if remaining <= _PROGRESS_EPSILON:
            self._complete(state, now)
            return
        if state.rate <= 0:
            return
        state.completion_handle = self.events.schedule(
            now + remaining / state.rate,
            self._make_completion(state.job.job_id),
        )

    def _make_completion(self, job_id: int):
        def complete(now: float) -> None:
            state = self._states[job_id]
            if state.job.state is JobState.COMPLETED:
                return
            self._advance_all(now)
            if state.job.instructions - state.progress > _PROGRESS_EPSILON:
                return
            self._complete(state, now)
            self._recompute(now)

        return complete

    def _complete(self, state: _EqualRun, now: float) -> None:
        state.progress = float(state.job.instructions)
        state.job.executed_instructions = state.job.instructions
        state.job.mark_completed(now)
        if state.completion_handle is not None:
            state.completion_handle.cancel()
        if self.record_trace:
            self.trace.finish(now, state.job.job_id)
        if len(self._accepted) == len(self.workload.jobs) and all(
            s.job.state is JobState.COMPLETED for s in self._states.values()
        ):
            self._finished = True

    # -- results --------------------------------------------------------------------

    def _build_result(self) -> SystemResult:
        jobs = list(self._accepted)
        first_n = min(self.sim_config.accepted_jobs_target, len(jobs))
        throughput = ThroughputReport.from_jobs(jobs, first_n=first_n)
        # EqualPart made (implicit) promises to every job.
        deadline = DeadlineReport.from_jobs(jobs, reserved_modes_only=False)
        return SystemResult(
            workload_name=self.workload.name,
            configuration_name=self.workload.configuration.name,
            jobs=jobs,
            makespan_seconds=throughput.makespan,
            makespan_cycles=self.machine.seconds_to_cycles(
                throughput.makespan
            ),
            throughput=throughput,
            deadline_report=deadline,
            wall_clock=WallClockSummary.from_jobs(jobs),
            trace=self.trace,
            probes=len(jobs),
            rejections=0,
            backfills=0,
            terminations=0,
            steal_transfers=0,
            steal_cancellations=0,
            lac_admission_tests=0,
            lac_candidate_windows=0,
        )
