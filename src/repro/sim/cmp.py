"""A trace-driven CMP node with real microarchitecture.

Where :mod:`repro.sim.system` models timing analytically from miss
curves, this module wires the *actual* substrates together — private
L1s, the way-partitioned shared L2, duplicate tag arrays, DRAM — so
experiments that are about the microarchitecture itself (the Figure 8a
shadow-tag validation, partitioning ablations, convergence tests) run
against real caches.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.cache.backend import (
    AnyCache,
    AnyPartitionedCache,
    make_cache,
    make_partitioned_cache,
    record_cache_stats,
)
from repro.cache.partitioned import PartitionClass
from repro.cache.shadow import ShadowTagArray
from repro.core.partition_manager import PartitionManager
from repro.cpu.core import CoreResult, InOrderCore, MemoryAccess
from repro.cpu.hierarchy import MemoryHierarchy
from repro.obs import get_observer
from repro.sim.config import MachineConfig
from repro.util.validation import check_positive


class CmpNode:
    """The Section 6 machine, built from the real cache substrate."""

    def __init__(self, machine: Optional[MachineConfig] = None) -> None:
        self.machine = machine if machine is not None else MachineConfig()
        backend = self.machine.resolved_cache_backend
        self.cache_backend = backend
        self.l1_caches: Dict[int, AnyCache] = {
            core_id: make_cache(
                self.machine.l1_geometry,
                name=f"l1-core{core_id}",
                backend=backend,
            )
            for core_id in range(self.machine.num_cores)
        }
        self.l2: AnyPartitionedCache = make_partitioned_cache(
            self.machine.l2_geometry,
            self.machine.num_cores,
            name="l2",
            backend=backend,
        )
        self.dram = self.machine.make_dram()
        self.hierarchy = MemoryHierarchy(
            self.l1_caches,
            self.l2,
            self.dram,
            l1_latency=self.machine.l1_latency,
            l2_latency=self.machine.l2_latency,
        )
        self.partitions = PartitionManager(
            self.machine.l2_ways, self.machine.num_cores
        )
        self.cores: Dict[int, InOrderCore] = {}

    # -- partition control -------------------------------------------------------

    def assign_partition(
        self, core_id: int, ways: int, partition_class: PartitionClass
    ) -> None:
        """Allocate ``ways`` to ``core_id`` and sync the L2 targets."""
        self.partitions.assign(core_id, ways, partition_class)
        self.partitions.apply_to_cache(self.l2)

    def redistribute_spare(self) -> None:
        """Grant spare ways to best-effort cores and sync the L2."""
        self.partitions.redistribute_spare()
        self.partitions.apply_to_cache(self.l2)

    def attach_shadow(self, core_id: int, baseline_ways: int) -> ShadowTagArray:
        """Attach duplicate tags observing ``core_id`` (Section 4.3)."""
        check_positive("baseline_ways", baseline_ways)
        shadow = ShadowTagArray(
            self.machine.l2_geometry,
            baseline_ways,
            sample_period=self.machine.shadow_sample_period,
        )
        self.hierarchy.attach_shadow(core_id, shadow)
        return shadow

    # -- execution ---------------------------------------------------------------

    def core(self, core_id: int, *, cpi_l1_inf: float = 1.0) -> InOrderCore:
        """Get (or lazily create) the in-order core model for ``core_id``."""
        if core_id not in self.cores:
            self.cores[core_id] = InOrderCore(
                core_id, self.hierarchy, cpi_l1_inf=cpi_l1_inf
            )
        return self.cores[core_id]

    def run_segment(
        self,
        core_id: int,
        trace: Iterator[MemoryAccess],
        accesses: int,
    ) -> CoreResult:
        """Run ``accesses`` trace accesses on ``core_id``; return totals."""
        check_positive("accesses", accesses)
        return self.core(core_id).execute_block(trace, max_accesses=accesses)

    def run_interleaved(
        self,
        traces: Dict[int, Iterator[MemoryAccess]],
        accesses_per_core: int,
        *,
        quantum: int = 64,
    ) -> Dict[int, CoreResult]:
        """Round-robin-interleave several cores' traces through the L2.

        Models concurrent execution at access granularity: each core
        issues ``quantum`` accesses in turn until all have issued
        ``accesses_per_core``.  Interleaving is what makes shared-cache
        contention (and partitioning's defence against it) visible.
        """
        check_positive("accesses_per_core", accesses_per_core)
        check_positive("quantum", quantum)
        obs = get_observer()
        with obs.profiler.span("cmp.run_interleaved"):
            remaining = {core_id: accesses_per_core for core_id in traces}
            while any(count > 0 for count in remaining.values()):
                for core_id, trace in traces.items():
                    if remaining[core_id] <= 0:
                        continue
                    burst = min(quantum, remaining[core_id])
                    self.core(core_id).execute_block(
                        trace, max_accesses=burst
                    )
                    remaining[core_id] -= burst
        if obs.enabled:
            self.publish_metrics()
        return {core_id: self.core(core_id).result for core_id in traces}

    def trace_request(
        self,
        core_id: int,
        address: int,
        *,
        is_write: bool = False,
        now: float = 0.0,
    ):
        """Run one access through the real hierarchy with causal tracing.

        The per-request window into the node: the returned outcome is
        exactly what :meth:`MemoryHierarchy.access` produces, and the
        active observer's trace log gains a ``mem.request`` span tree
        decomposing the latency (L1 → L2 → DRAM).  With observability
        off the spans go to the null sink and only the access happens.
        """
        return self.hierarchy.access_traced(
            core_id, address, is_write=is_write, now=now
        )

    # -- inspection ---------------------------------------------------------------

    def l2_occupancies(self) -> Dict[int, int]:
        """Blocks held per core in the shared L2."""
        return {
            core_id: self.l2.occupancy_of(core_id)
            for core_id in range(self.machine.num_cores)
        }

    def publish_metrics(self) -> None:
        """Push the node's cache counters into the metrics registry.

        Snapshot-style (gauge assignment, not per-access increments):
        call after a segment, not inside the access loop.
        """
        record_cache_stats(self.l2, scope="l2")
        for core_id, l1 in self.l1_caches.items():
            record_cache_stats(l1, scope=f"l1.core{core_id}")

    def allocation_errors(self) -> Dict[int, float]:
        """Per-core mean deviation from target allocation (convergence)."""
        return {
            core_id: self.l2.allocation_error(core_id)
            for core_id in range(self.machine.num_cores)
        }
