"""Machine-model and simulation configuration (Section 6 of the paper).

Every experiment shares one :class:`MachineConfig` describing the
4-core CMP, and a :class:`SimulationConfig` holding the workload-side
knobs (instruction counts, arrival process, measurement size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.backend import BACKENDS, resolve_backend
from repro.cache.geometry import CacheGeometry
from repro.mem.bandwidth import BandwidthModel
from repro.mem.dram import DramModel
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MachineConfig:
    """The Section 6 machine: 4 in-order cores, shared 2 MB L2."""

    num_cores: int = 4
    clock_hz: float = 2.0e9
    l1_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            size_bytes=32 * 1024, associativity=4, block_bytes=64
        )
    )
    l2_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            size_bytes=2 * 1024 * 1024, associativity=16, block_bytes=64
        )
    )
    l1_latency: float = 2.0
    l2_latency: float = 10.0
    memory_latency: float = 300.0
    memory_size_bytes: int = 4 * 1024**3
    peak_bandwidth_bytes_per_second: float = 6.4e9
    shadow_sample_period: int = 8
    repartition_interval_instructions: int = 2_000_000
    # OS scheduler timeslice (used by the EqualPart baseline's
    # timesharing model; Linux-like ~10 ms).
    timeslice_seconds: float = 0.01
    # Cache implementation: "reference" (object model), "fast" (flat
    # kernel), or None to follow the session default
    # (repro.cache.backend.default_backend()).
    cache_backend: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive("num_cores", self.num_cores)
        check_positive("clock_hz", self.clock_hz)
        check_positive("l1_latency", self.l1_latency)
        check_positive("l2_latency", self.l2_latency)
        check_positive("memory_latency", self.memory_latency)
        check_positive(
            "repartition_interval_instructions",
            self.repartition_interval_instructions,
        )
        check_positive("timeslice_seconds", self.timeslice_seconds)
        if (
            self.cache_backend is not None
            and self.cache_backend not in BACKENDS
        ):
            raise ValueError(
                f"unknown cache backend {self.cache_backend!r}; expected "
                f"one of {BACKENDS}"
            )

    @property
    def resolved_cache_backend(self) -> str:
        """The backend this machine will actually construct caches on."""
        return resolve_backend(self.cache_backend)

    @property
    def l2_ways(self) -> int:
        """Associativity of the shared L2 (the partitionable unit)."""
        return self.l2_geometry.associativity

    def make_dram(self) -> DramModel:
        """Fresh DRAM model with this machine's parameters."""
        return DramModel(
            latency_cycles=self.memory_latency,
            size_bytes=self.memory_size_bytes,
        )

    def make_bandwidth_model(self) -> BandwidthModel:
        """Fresh bus bandwidth model with this machine's parameters."""
        return BandwidthModel(
            peak_bytes_per_second=self.peak_bandwidth_bytes_per_second,
            clock_hz=self.clock_hz,
            block_bytes=self.l2_geometry.block_bytes,
        )

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert wall-clock seconds to machine cycles."""
        return seconds * self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert machine cycles to wall-clock seconds."""
        return cycles / self.clock_hz


@dataclass(frozen=True)
class SimulationConfig:
    """Workload-side knobs shared by the experiment harness.

    The paper simulates 200 M instructions per job; execution time is
    linear in instruction count under the curve-based timing model, so
    normalised results are invariant to ``instructions_per_job`` (kept
    at the paper's value by default, reducible for fast tests).

    ``probe_interarrival_fraction`` positions the Poisson probe rate:
    the paper assumes a 128-CMP server at full utilisation, giving
    4 × 128 arrivals per job wall-clock time, i.e. a mean inter-arrival
    of ``tw / 512``.
    """

    instructions_per_job: int = 200_000_000
    accepted_jobs_target: int = 10
    requested_ways: int = 7
    requested_cores: int = 1
    probe_interarrival_fraction: float = 1.0 / 512.0
    seed: int = 42
    enable_bandwidth_model: bool = True
    stealing_min_ways: int = 1
    profile_num_sets: int = 64
    profile_accesses: int = 40_000
    # Admission queue discipline: the paper's plain FCFS, or EASY
    # backfilling (later jobs may be admitted when they cannot delay
    # the blocked head's earliest start).
    queue_policy: str = "fcfs"
    # Section 3.2: a reserved job still running when its reserved
    # timeslot expires is terminated (only reachable when a JobSpec
    # declares its own, under-estimated max_wall_clock).
    enforce_wall_clock: bool = True

    def __post_init__(self) -> None:
        check_positive("instructions_per_job", self.instructions_per_job)
        check_positive("accepted_jobs_target", self.accepted_jobs_target)
        check_positive("requested_ways", self.requested_ways)
        check_positive("requested_cores", self.requested_cores)
        check_positive(
            "probe_interarrival_fraction", self.probe_interarrival_fraction
        )
        check_positive("stealing_min_ways", self.stealing_min_ways)
        check_positive("profile_num_sets", self.profile_num_sets)
        check_positive("profile_accesses", self.profile_accesses)
        if self.queue_policy not in ("fcfs", "backfill"):
            raise ValueError(
                f"queue_policy must be 'fcfs' or 'backfill', got "
                f"{self.queue_policy!r}"
            )
