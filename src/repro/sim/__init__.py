"""Full-system discrete-event simulation.

Replaces the paper's Simics full-system setup (DESIGN.md §1):

- :mod:`repro.sim.config` — the Section 6 machine model parameters and
  simulation knobs, in one place.
- :mod:`repro.sim.engine` — a minimal deterministic event queue.
- :mod:`repro.sim.cmp` — a cycle-approximate CMP node binding real
  caches, cores, and memory together for trace-driven experiments.
- :mod:`repro.sim.system` — the QoS system simulator: LAC admission,
  reserved-core pinning, Opportunistic timesharing, automatic mode
  downgrade, and curve-driven resource stealing.
- :mod:`repro.sim.equalpart` — the EqualPart baseline: no admission
  control, Linux-like round-robin timesharing, equal L2 split.
- :mod:`repro.sim.tracing` — per-job execution segment recording
  (the Figure 7 traces).
"""

from repro.sim.config import MachineConfig, SimulationConfig
from repro.sim.engine import EventQueue
from repro.sim.equalpart import EqualPartSimulator
from repro.sim.system import QoSSystemSimulator, SystemResult
from repro.sim.tracing import ExecutionTrace, TraceSegment

__all__ = [
    "MachineConfig",
    "SimulationConfig",
    "EventQueue",
    "QoSSystemSimulator",
    "SystemResult",
    "EqualPartSimulator",
    "ExecutionTrace",
    "TraceSegment",
]
