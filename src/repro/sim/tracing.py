"""Execution-trace recording (the Figure 7 view).

Figure 7 of the paper draws, per accepted job, the interval from start
to completion, the gap to the deadline, and the points where automatic
mode downgrade switches a job back to Strict.  The recorder captures
piecewise-constant execution *segments* — every interval during which a
job's mode, way allocation, and CPU share were constant — which is also
exactly the information needed to audit the simulator's resource
accounting (no core or way oversubscription at any instant), used by
the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.modes import ExecutionMode


@dataclass(frozen=True)
class TraceSegment:
    """One constant-configuration interval of one job's execution."""

    job_id: int
    start: float
    end: float
    mode: ExecutionMode
    ways: int
    core_id: int
    cpu_share: float

    @property
    def duration(self) -> float:
        """Length of the segment."""
        return self.end - self.start


@dataclass
class _OpenSegment:
    job_id: int
    start: float
    mode: ExecutionMode
    ways: int
    core_id: int
    cpu_share: float

    def close(self, end: float) -> TraceSegment:
        return TraceSegment(
            job_id=self.job_id,
            start=self.start,
            end=end,
            mode=self.mode,
            ways=self.ways,
            core_id=self.core_id,
            cpu_share=self.cpu_share,
        )


@dataclass
class ExecutionTrace:
    """Collected segments plus per-job milestones."""

    segments: List[TraceSegment] = field(default_factory=list)
    _open: Dict[int, _OpenSegment] = field(default_factory=dict)

    def update(
        self,
        time: float,
        job_id: int,
        *,
        mode: ExecutionMode,
        ways: int,
        core_id: int,
        cpu_share: float,
    ) -> None:
        """Record that the job's configuration is as given from ``time`` on.

        If the configuration is unchanged the open segment continues;
        otherwise the open segment is closed and a new one begun.
        """
        current = self._open.get(job_id)
        if current is not None:
            unchanged = (
                current.mode == mode
                and current.ways == ways
                and current.core_id == core_id
                and abs(current.cpu_share - cpu_share) < 1e-12
            )
            if unchanged:
                return
            if time > current.start:
                self.segments.append(current.close(time))
        self._open[job_id] = _OpenSegment(
            job_id=job_id,
            start=time,
            mode=mode,
            ways=ways,
            core_id=core_id,
            cpu_share=cpu_share,
        )

    def finish(self, time: float, job_id: int) -> None:
        """Close the job's open segment at completion time."""
        current = self._open.pop(job_id, None)
        if current is not None and time > current.start:
            self.segments.append(current.close(time))

    def segments_for(self, job_id: int) -> List[TraceSegment]:
        """All closed segments of one job, in time order."""
        return sorted(
            (s for s in self.segments if s.job_id == job_id),
            key=lambda s: s.start,
        )

    def job_span(self, job_id: int) -> Optional[tuple]:
        """(first start, last end) of the job's recorded execution."""
        segments = self.segments_for(job_id)
        if not segments:
            return None
        return segments[0].start, segments[-1].end

    # -- resource-accounting audits (used by integration tests) -----------------

    def _active_at(self, time: float) -> List:
        """Closed and still-open segments covering instant ``time``.

        Open segments (jobs still running when the audit runs) are
        treated as extending to the query time; scanning only closed
        segments made mid-run jobs invisible and let the
        oversubscription audit silently undercount.
        """
        active: List = [
            s for s in self.segments if s.start <= time < s.end
        ]
        active.extend(s for s in self._open.values() if s.start <= time)
        return active

    def breakpoints(self) -> List[float]:
        """All segment boundaries (open starts included), sorted, deduplicated."""
        times = {s.start for s in self.segments} | {
            s.end for s in self.segments
        }
        times.update(s.start for s in self._open.values())
        return sorted(times)

    def ways_in_use_at(self, time: float) -> int:
        """Total ways held by running jobs at ``time`` (weighted by share).

        A core timesharing k Opportunistic jobs reports the core's way
        allocation once (each job's record carries the full core
        allocation but a 1/k CPU share), so the audit divides by the
        concurrency on each (core, interval).  Jobs whose current
        segment is still open count too — an audit probed mid-run must
        see them.
        """
        per_core: Dict[int, List] = {}
        for segment in self._active_at(time):
            per_core.setdefault(segment.core_id, []).append(segment)
        total = 0.0
        for segments in per_core.values():
            # All jobs on one core share the same allocation; count once.
            total += max(s.ways for s in segments)
        return int(round(total))

    def cores_in_use_at(self, time: float) -> float:
        """Total CPU shares in use at ``time`` (≤ core count if sound).

        Includes still-open segments, like :meth:`ways_in_use_at`.
        """
        return sum(s.cpu_share for s in self._active_at(time))
