"""The QoS full-system simulator.

Event-driven reimplementation of the paper's evaluation platform
(Section 6): a stream of jobs probes the Local Admission Controller at
Poisson instants; accepted Strict/Elastic jobs get pinned cores and
reserved cache ways; Opportunistic jobs timeshare the remaining cores
and the unreserved ("spare") cache ways; Elastic jobs donate ways via
the resource-stealing controller; All-Strict+AutoDown runs downgradable
jobs Opportunistically in front of a late-placed reservation.

The queue discipline is the paper's FCFS by default; an EASY-backfill
extension (``SimulationConfig(queue_policy="backfill")``) may admit a
later job while the head is blocked whenever doing so provably cannot
delay the head's earliest possible start.

Timing model
------------
Jobs advance at piecewise-constant rates.  While a job holds ``w`` ways
and a CPU share ``s``, it retires ``s * clock / CPI(mpi(w))``
instructions per second, where ``mpi(w)`` comes from the benchmark's
profiled miss-ratio curve and CPI from Luo's model — the same
decomposition the paper uses to reason about stealing (Section 4.2).

Memory-bus contention inflates the L2 miss penalty of *Opportunistic*
jobs by an M/M/1 queueing factor; reserved jobs' requests are
prioritised on the bus (footnote 2 of the paper), so their ``tm`` stays
uncontended — this is what keeps reserved jobs inside their maximum
wall-clock times, and with it the framework's 100% deadline hit rate.

Resource stealing is fed by a curve-based miss predictor that plays the
role of the duplicate tag arrays: cumulative misses at the actual
allocation versus cumulative misses at the baseline allocation, never
reset — exactly the quantity the shadow tags measure in
:mod:`repro.cache.shadow` (where the microarchitectural mechanism is
implemented and tested for real).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.admission import LocalAdmissionController, Reservation
from repro.core.config import ModeMixConfig
from repro.core.job import Job, JobState
from repro.core.metrics import (
    DeadlineReport,
    DowngradeRecord,
    ResilienceReport,
    ThroughputReport,
    WallClockSummary,
)
from repro.core.modes import ExecutionMode, ModeKind
from repro.core.policy import (
    ActuatorState,
    JobSensor,
    Policy,
    SensorSnapshot,
    SetBusGrant,
    SetWays,
    apply_action,
)
from repro.core.spec import QoSTarget, ResourceVector, TimeslotRequest
from repro.core.stealing import (
    ResourceStealingController,
    StealingAction,
)
from repro.cpu.cpi import CpiModel
from repro.faults.injector import SystemFaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.model import FaultConfig, FaultEvent, FaultSchedule
from repro.faults.resilience import RetryPolicy, downgrade_mode
from repro.obs import get_observer
from repro.obs.slo import SloMonitor, SloReport
from repro.obs.trace import derive_trace_id
from repro.sim.config import MachineConfig, SimulationConfig
from repro.sim.engine import (
    RUN_EVENT_BUDGET,
    RUN_WALL_CLOCK_BUDGET,
    EventHandle,
    EventQueue,
    RunBudget,
)
from repro.sim.tracing import ExecutionTrace
from repro.util.rng import DeterministicRng
from repro.workloads.arrival import DeadlinePolicy
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.composer import JobSpec, WorkloadSpec
from repro.workloads.profiler import MissRatioCurve, get_curve

_PROGRESS_EPSILON = 1e-3  # instructions; tolerance for float completion


@dataclass
class _JobRun:
    """Mutable per-job simulation state."""

    job: Job
    spec: JobSpec
    curve: MissRatioCurve
    cpi_model: CpiModel
    tw: float
    reservation: Optional[Reservation] = None
    running: bool = False
    reserved_running: bool = False
    core_id: int = -1
    ways: int = 0
    cpu_share: float = 0.0
    rate: float = 0.0  # instructions per second
    progress: float = 0.0  # instructions retired (float-precision)
    # Adaptive-policy override of the reserved allocation (None: the
    # admission-requested ways).  Only meaningful for reserved strict
    # jobs; cleared on (re-)dispatch and displacement.
    policy_ways: Optional[int] = None
    # Elastic stealing state
    steal: Optional[ResourceStealingController] = None
    actual_misses: float = 0.0
    baseline_misses: float = 0.0
    next_interval_at: float = 0.0  # instruction count of next steal check
    # Event handles
    completion_handle: Optional[EventHandle] = None
    steal_handle: Optional[EventHandle] = None
    # Fault-recovery state
    displaced: bool = False
    retry_attempt: int = 0
    best_effort: bool = False
    # Causal tracing: the job's root span and its current lifecycle
    # segment (queued / exec.* / displaced), both None when
    # observability is off.
    trace_root: Optional[object] = None
    segment_span: Optional[object] = None

    def miss_increase_fraction(self) -> float:
        """Curve-predicted analogue of the shadow-tag comparison."""
        if self.baseline_misses <= 0.0:
            return 0.0
        return max(
            0.0,
            (self.actual_misses - self.baseline_misses) / self.baseline_misses,
        )


@dataclass
class SystemResult:
    """Everything the benches and tests read out of one simulation."""

    workload_name: str
    configuration_name: str
    jobs: List[Job]
    makespan_seconds: float
    makespan_cycles: float
    throughput: ThroughputReport
    deadline_report: DeadlineReport
    wall_clock: WallClockSummary
    trace: ExecutionTrace
    probes: int
    rejections: int
    backfills: int
    terminations: int
    steal_transfers: int
    steal_cancellations: int
    lac_admission_tests: int
    lac_candidate_windows: int
    per_job_ways_history: Dict[int, List[int]] = field(default_factory=dict)
    # Fault-injection surface (defaults keep fault-free construction
    # sites unchanged).  ``partial`` marks a budget-aborted run whose
    # throughput/deadline figures cover only the work done so far.
    partial: bool = False
    abort_reason: Optional[str] = None
    resilience: Optional[ResilienceReport] = None
    fault_timeline_digest: Optional[str] = None
    # In-run QoS/SLO monitoring outcome; populated only when an
    # observer is live (the monitor exists for the run's duration).
    slo: Optional[SloReport] = None
    # Effective adaptive-policy actions committed during the run; 0 for
    # policy-free runs, static wrappers, and disabled adaptive policies.
    policy_decisions: int = 0

    def counter_snapshot(self) -> Dict[str, object]:
        """Deterministic flat view of every scalar observable.

        The comparison surface for the differential harness
        (:mod:`repro.verify.differential`): two runs that should be
        equivalent must produce equal snapshots.  Only values that are
        pure functions of the simulation trajectory appear — no wall
        time, no object identities — and per-job fields are keyed by
        job id so mismatches name the job that diverged.  The SLO and
        resilience sections are included only when present, because
        their presence itself is part of the contract under test
        (observer-off runs and fault-free runs omit them).
        """
        snapshot: Dict[str, object] = {
            "workload": self.workload_name,
            "configuration": self.configuration_name,
            "makespan_seconds": self.makespan_seconds,
            "makespan_cycles": self.makespan_cycles,
            "throughput.jobs_measured": self.throughput.jobs_measured,
            "throughput.makespan": self.throughput.makespan,
            "deadline.considered": self.deadline_report.considered,
            "deadline.met": self.deadline_report.met,
            "probes": self.probes,
            "rejections": self.rejections,
            "backfills": self.backfills,
            "terminations": self.terminations,
            "steal_transfers": self.steal_transfers,
            "steal_cancellations": self.steal_cancellations,
            "lac_admission_tests": self.lac_admission_tests,
            "lac_candidate_windows": self.lac_candidate_windows,
            "partial": self.partial,
            "abort_reason": self.abort_reason,
        }
        for job in self.jobs:
            prefix = f"job[{job.job_id}]"
            snapshot[f"{prefix}.benchmark"] = job.benchmark
            snapshot[f"{prefix}.state"] = job.state.value
            snapshot[f"{prefix}.mode"] = job.current_mode.describe()
            snapshot[f"{prefix}.auto_downgraded"] = job.auto_downgraded
            snapshot[f"{prefix}.start_time"] = job.start_time
            snapshot[f"{prefix}.completion_time"] = job.completion_time
            snapshot[f"{prefix}.executed_instructions"] = (
                job.executed_instructions
            )
            snapshot[f"{prefix}.met_deadline"] = job.met_deadline
        for job_id in sorted(self.per_job_ways_history):
            snapshot[f"ways_history[{job_id}]"] = list(
                self.per_job_ways_history[job_id]
            )
        # Present only when an adaptive policy actually acted, so runs
        # without a policy (and runs under static wrappers or disabled
        # adaptive policies) keep a byte-identical snapshot surface.
        if self.policy_decisions:
            snapshot["policy.decisions"] = self.policy_decisions
        if self.resilience is not None:
            res = self.resilience
            snapshot["resilience.faults_injected"] = res.faults_injected
            snapshot["resilience.displacements"] = res.displacements
            snapshot["resilience.readmissions"] = res.readmissions
            snapshot["resilience.readmission_attempts"] = (
                res.readmission_attempts
            )
            snapshot["resilience.downgrade_count"] = res.downgrade_count
            snapshot["resilience.best_effort_jobs"] = res.best_effort_jobs
            snapshot["resilience.deferred_dispatches"] = (
                res.deferred_dispatches
            )
            snapshot["resilience.ecc_cancellations"] = res.ecc_cancellations
            for kind in sorted(res.fault_counts):
                snapshot[f"resilience.faults[{kind}]"] = res.fault_counts[kind]
        if self.fault_timeline_digest is not None:
            snapshot["fault_timeline_digest"] = self.fault_timeline_digest
        if self.slo is not None:
            for slo_job in self.slo.jobs:
                prefix = f"slo[{slo_job.job_id}]"
                snapshot[f"{prefix}.violations"] = slo_job.violations
                snapshot[f"{prefix}.violation_fraction"] = (
                    slo_job.violation_fraction
                )
        return snapshot

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON of :meth:`counter_snapshot`.

        Two equivalent runs (backend pair, jobs pair, zero-rate-faults
        pair modulo the resilience section) hash identically; the hash
        is what ``verify diff`` reports and what fuzz cases pin.
        """
        import hashlib
        import json

        payload = json.dumps(
            self.counter_snapshot(),
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_artifact(
        self, *, metrics: Optional[List[dict]] = None
    ) -> "ResultArtifact":
        """Distil this result into a persistable, diffable artifact.

        ``metrics`` attaches an observability metrics snapshot
        (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`) captured
        over the run.  Everything in the artifact derives from the
        simulation trajectory alone, so two equivalent runs serialise
        byte-identically.
        """
        hit_rate = self.deadline_report.hit_rate
        return ResultArtifact(
            version=ARTIFACT_VERSION,
            workload=self.workload_name,
            configuration=self.configuration_name,
            counters=self.counter_snapshot(),
            figures_of_merit={
                "deadline_hit_rate": float(hit_rate),
                "makespan_cycles": float(self.makespan_cycles),
                "makespan_seconds": float(self.makespan_seconds),
                "rejections": float(self.rejections),
                "steal_transfers": float(self.steal_transfers),
                "throughput_makespan": float(self.throughput.makespan),
            },
            slo=None
            if self.slo is None
            else [dataclasses.asdict(job) for job in self.slo.jobs],
            metrics=metrics,
        )


#: Schema version of :class:`ResultArtifact`; bumping it orphans every
#: stored artifact (the version participates in the scenario digest).
ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class ResultArtifact:
    """The on-disk form of one :class:`SystemResult`.

    What the results store (:class:`repro.analysis.store.ResultStore`)
    persists per sweep point: the full counter snapshot (the
    differential-harness comparison surface), the SLO report, the key
    figures of merit the sweep reports and diffs on, and optionally an
    observability metrics snapshot.  Plain-JSON round-trippable:
    ``from_dict(artifact.to_dict())`` reconstructs an equal artifact,
    and :meth:`counter_fingerprint` of the reconstruction matches the
    original result's :meth:`SystemResult.fingerprint`.
    """

    version: int
    workload: str
    configuration: str
    counters: Dict[str, object]
    figures_of_merit: Dict[str, float]
    slo: Optional[List[Dict[str, object]]]
    metrics: Optional[List[dict]]

    def to_dict(self) -> dict:
        """Plain-data form (stable key order is the caller's concern)."""
        return {
            "version": self.version,
            "workload": self.workload,
            "configuration": self.configuration,
            "counters": dict(self.counters),
            "figures_of_merit": dict(self.figures_of_merit),
            "slo": None if self.slo is None else [dict(j) for j in self.slo],
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ResultArtifact":
        """Rebuild an artifact; raises on any schema mismatch.

        ``ValueError``/``KeyError``/``TypeError`` here make the results
        store quarantine the entry, exactly like unparseable JSON.
        """
        version = payload["version"]
        if version != ARTIFACT_VERSION:
            raise ValueError(
                f"artifact version {version!r} != {ARTIFACT_VERSION}"
            )
        slo = payload["slo"]
        return cls(
            version=int(version),
            workload=str(payload["workload"]),
            configuration=str(payload["configuration"]),
            counters=dict(payload["counters"]),
            figures_of_merit={
                str(key): float(value)
                for key, value in payload["figures_of_merit"].items()
            },
            slo=None if slo is None else [dict(job) for job in slo],
            metrics=payload["metrics"],
        )

    def counter_fingerprint(self) -> str:
        """SHA-256 of the counter snapshot — :meth:`SystemResult.fingerprint`.

        Computed over the *stored* counters, so it doubles as an
        integrity check: an artifact that round-tripped losslessly
        hashes identically to the live result it came from.
        """
        import hashlib
        import json

        payload = json.dumps(
            self.counters,
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def slo_report(self) -> Optional[SloReport]:
        """Reconstruct the :class:`~repro.obs.slo.SloReport`, if any."""
        from repro.obs.slo import JobSloSummary

        if self.slo is None:
            return None
        return SloReport(
            jobs=tuple(JobSloSummary(**job) for job in self.slo)
        )


class QoSSystemSimulator:
    """Simulate one workload under one Table 2 QoS configuration.

    Not for EqualPart — that baseline has no admission control and is
    modelled by :class:`repro.sim.equalpart.EqualPartSimulator`.
    """

    def __init__(
        self,
        workload: WorkloadSpec,
        *,
        machine: Optional[MachineConfig] = None,
        sim_config: Optional[SimulationConfig] = None,
        curves: Optional[Dict[str, MissRatioCurve]] = None,
        record_trace: bool = True,
        fault_config: Optional[FaultConfig] = None,
        policy: Optional[Policy] = None,
    ) -> None:
        if workload.configuration.equal_partition:
            raise ValueError(
                "EqualPart workloads run on EqualPartSimulator, not the "
                "QoS simulator"
            )
        self.workload = workload
        self.machine = machine if machine is not None else MachineConfig()
        self.sim_config = (
            sim_config if sim_config is not None else SimulationConfig()
        )
        self.config: ModeMixConfig = workload.configuration
        self.record_trace = record_trace

        self.lac = LocalAdmissionController(
            ResourceVector(
                cores=self.machine.num_cores, cache_ways=self.machine.l2_ways
            )
        )
        self.bandwidth = self.machine.make_bandwidth_model()
        self.events = EventQueue()
        self.trace = ExecutionTrace()
        self.rng = DeterministicRng(self.sim_config.seed, "system-sim")

        self._curves = dict(curves) if curves else {}
        self._pending: List[JobSpec] = list(workload.jobs)
        self._pending_index = 0
        self._states: Dict[int, _JobRun] = {}
        self._accepted: List[Job] = []
        self._reserved_cores: Dict[int, int] = {}  # core_id -> job_id
        self._probes = 0
        self._rejections = 0
        self._backfills = 0
        self._terminations = 0
        self._steal_transfers = 0
        self._ways_history: Dict[int, List[int]] = {}
        self._last_advance = 0.0
        self._finished = False
        self._bus_saturated = False

        # Closed-loop adaptive policy (None: open-loop, exactly the
        # pre-policy simulator).  Static wrappers never schedule epochs,
        # so they are trajectory-identical to policy=None.
        self.policy = policy
        self._policy_epoch_seconds = self.machine.cycles_to_seconds(
            self.machine.repartition_interval_instructions
        )
        self._policy_epoch_index = 0
        self._policy_decisions = 0
        self._policy_bus_grant = False
        self._last_bus_utilisation = 0.0
        # (now, reserved_ways, spare_ways) after each epoch's actuation;
        # the capacity-conservation law audits this.
        self._policy_audit: List[Tuple[float, int, int]] = []

        # Fault injection and resilience (all inert when fault_config is
        # None or injects nothing: no events are scheduled, no RNG
        # streams are drawn, and the trajectory is byte-identical to the
        # pre-fault simulator).
        self.fault_config = fault_config
        self._retry_policy = (
            RetryPolicy(
                max_retries=fault_config.max_retries,
                backoff_base=fault_config.backoff_base,
                backoff_factor=fault_config.backoff_factor,
            )
            if fault_config is not None
            else RetryPolicy()
        )
        self._failed_cores: Dict[int, float] = {}  # core -> repair time
        self._stalled_cores: Dict[int, float] = {}  # core -> stall end
        self._fault_log: List[Tuple[float, FaultEvent]] = []
        self._downgrades: List[DowngradeRecord] = []
        self._displacements = 0
        self._readmissions = 0
        self._readmission_attempts = 0
        self._deferred_dispatches = 0
        self._ecc_cancellations = 0
        self._fault_schedule: Optional[FaultSchedule] = None
        self._injector: Optional[SystemFaultInjector] = None
        self._invariants: Optional[InvariantChecker] = None
        self._started = False
        self._abort_reason: Optional[str] = None
        self._slo: Optional[SloMonitor] = None

    # -- curve and timing helpers -------------------------------------------------

    def _curve_for(self, benchmark: str) -> MissRatioCurve:
        if benchmark not in self._curves:
            self._curves[benchmark] = get_curve(
                get_benchmark(benchmark),
                num_sets=self.sim_config.profile_num_sets,
                accesses=self.sim_config.profile_accesses,
                backend=self.machine.cache_backend,
            )
        return self._curves[benchmark]

    def _wall_clock_at(
        self, spec: JobSpec, ways: float, *, penalty_multiplier: float = 1.0
    ) -> float:
        """Uncontended execution time (seconds) at a fixed allocation."""
        profile = get_benchmark(spec.benchmark)
        curve = self._curve_for(spec.benchmark)
        cpi = profile.cpi_model(
            l2_latency=self.machine.l2_latency,
            memory_latency=self.machine.memory_latency,
        ).cpi(curve.mpi(ways), miss_penalty_multiplier=penalty_multiplier)
        cycles = self.sim_config.instructions_per_job * cpi
        return self.machine.cycles_to_seconds(cycles)

    def _mean_probe_gap(self) -> float:
        reference_tw = sum(
            self._wall_clock_at(spec, spec.requested_ways)
            for spec in self.workload.jobs
        ) / len(self.workload.jobs)
        return reference_tw * self.sim_config.probe_interarrival_fraction

    # -- main entry ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether every job has reached a terminal state."""
        return self._finished

    def _estimate_fault_horizon(self) -> float:
        """Fault-process horizon when the config leaves it unset.

        Twice the serialised runtime of the whole workload — a
        deterministic over-estimate of the makespan, so the fault
        process covers the entire run.  Events past completion simply
        never fire.
        """
        reference_tw = (
            self._mean_gap / self.sim_config.probe_interarrival_fraction
        )
        return 2.0 * reference_tw * (len(self.workload.jobs) + 1)

    def start(self) -> None:
        """Schedule the initial events (idempotent).

        Split out of :meth:`run` so checkpoint replay and budget-limited
        runs can drive the event queue directly.
        """
        if self._started:
            return
        self._started = True
        if get_observer().enabled:
            # The monitor itself is pure state; the simulator drives it
            # and owns all event emission, so runs without an observer
            # skip the projection work entirely.
            self._slo = SloMonitor()
        self._mean_gap = self._mean_probe_gap()
        self._probe_rng = self.rng.stream("probes")
        self.events.schedule(0.0, self._on_probe)
        if self.policy is not None:
            self.policy.reset()
            if self.policy.adaptive:
                self.events.schedule(
                    self._policy_epoch_seconds, self._on_policy_epoch
                )
        if self.fault_config is not None:
            if self.fault_config.has_any_faults:
                horizon = self.fault_config.horizon
                if horizon is None:
                    horizon = self._estimate_fault_horizon()
                self._fault_schedule = FaultSchedule.generate(
                    self.fault_config,
                    horizon=horizon,
                    num_cores=self.machine.num_cores,
                )
                self._injector = SystemFaultInjector(
                    self, self._fault_schedule
                )
                self._injector.arm()
            if self.fault_config.invariant_check_interval > 0:
                self._invariants = InvariantChecker(
                    self,
                    every_n_events=self.fault_config.invariant_check_interval,
                )

    def run(self, *, budget: Optional[RunBudget] = None) -> SystemResult:
        """Run to completion of all template jobs and build the result.

        With a :class:`~repro.sim.engine.RunBudget`, exhausting the
        budget aborts gracefully: the returned result is marked
        ``partial`` (with ``abort_reason``) and covers the work done so
        far, and the simulator can be checkpointed via
        :func:`repro.faults.checkpoint.checkpoint_simulator` or simply
        :meth:`run` again to continue.
        """
        self.start()
        outcome = self.events.run(
            stop_when=lambda: self._finished, budget=budget
        )
        if not self._finished:
            if outcome in (RUN_EVENT_BUDGET, RUN_WALL_CLOCK_BUDGET):
                self._abort_reason = outcome
                return self._build_result(partial=True)
            raise RuntimeError(
                "event queue drained before the workload completed; "
                "simulation deadlocked"
            )
        return self._build_result()

    # -- probing and admission ----------------------------------------------------------

    def _on_probe(self, now: float) -> None:
        self._advance_all(now)
        if self._pending_index < len(self._pending):
            self._probes += 1
            spec = self._pending[self._pending_index]
            accepted = self._try_admit(spec, now)
            if accepted:
                self._pending_index += 1
            else:
                self._rejections += 1
                if self.sim_config.queue_policy == "backfill":
                    self._try_backfill(now)
            self._recompute(now)
        if self._pending_index < len(self._pending):
            gap = self._probe_rng.exponential(self._mean_gap)
            self.events.schedule(now + gap, self._on_probe)

    def _try_backfill(self, now: float) -> None:
        """EASY backfill: admit a later job that cannot delay the head.

        An extension over the paper's plain FCFS LAC (enabled with
        ``SimulationConfig(queue_policy="backfill")``): when the head of
        the queue does not fit yet, later pending jobs may be admitted
        as long as the head's earliest *unconstrained* start does not
        move — the classic EASY-backfilling criterion from batch
        scheduling, whose vocabulary (Section 3.2) the paper borrows.
        """
        head = self._pending[self._pending_index]
        head_job, _, _ = self._build_job(head, now)
        head_resources = head_job.target.resources
        head_duration = head.mode.reservation_duration(
            head_job.target.timeslot.max_wall_clock
        )
        if head_duration <= 0:
            return  # an Opportunistic head is never blocked
        head_before = self.lac.earliest_fit(
            head_resources, head_duration, not_before=now
        )

        index = self._pending_index + 1
        while index < len(self._pending):
            spec = self._pending[index]
            job, auto_down, tw = self._build_job(spec, now)
            decision = self.lac.admit(
                job, now=now, auto_downgrade=auto_down
            )
            if not decision.accepted:
                index += 1
                continue
            head_after = self.lac.earliest_fit(
                head_resources, head_duration, not_before=now
            )
            delays_head = (
                head_before is not None
                and (head_after is None or head_after > head_before + 1e-12)
            )
            if delays_head:
                if decision.reservation is not None:
                    self.lac.cancel(decision.reservation)
                index += 1
                continue
            self._backfills += 1
            self._register_accepted(job, spec, tw, decision, now, auto_down)
            del self._pending[index]
            # Only one backfill per probe: keep the schedule close to
            # FCFS and re-evaluate the head at the next probe.
            return

    # Reservations are padded by this relative margin so a job completing
    # at exactly its maximum wall-clock time finishes strictly inside its
    # slot — otherwise the next job's dispatch event (scheduled at the
    # slot boundary) can fire before this job's completion event at the
    # same simulated instant and transiently oversubscribe the cache.
    RESERVATION_MARGIN = 1e-6

    def _build_job(self, spec: JobSpec, now: float):
        """Materialise a :class:`Job` for ``spec`` arriving at ``now``.

        Returns ``(job, auto_down, tw)``; nothing is registered yet.
        """
        if spec.max_wall_clock is not None:
            # The user declared their own limit (the batch-system way);
            # overruns are terminated at the reservation boundary.
            tw = spec.max_wall_clock
        else:
            tw = self._wall_clock_at(spec, spec.requested_ways)
        max_wall_clock = tw * (1.0 + self.RESERVATION_MARGIN)
        # Deadline classes scale the *mode-adjusted* completion promise:
        # an Elastic(X) user accepted an up-to-X% stretch, so their
        # "tight" deadline is 1.05x the stretched duration — otherwise
        # Elastic-with-tight-deadline could never be admitted at all.
        promised = spec.mode.reservation_duration(max_wall_clock)
        if promised <= 0.0:  # Opportunistic: no reservation to scale
            promised = max_wall_clock
        multiplier = DeadlinePolicy.multiplier(spec.deadline_class)
        deadline = now + multiplier * promised
        target = QoSTarget(
            resources=ResourceVector(
                cores=spec.requested_cores, cache_ways=spec.requested_ways
            ),
            timeslot=TimeslotRequest(
                max_wall_clock=max_wall_clock,
                deadline=deadline,
            ),
            mode=spec.mode,
        )
        job = Job(
            job_id=len(self._accepted) + 1,
            benchmark=spec.benchmark,
            target=target,
            arrival_time=now,
            instructions=self.sim_config.instructions_per_job,
        )
        auto_down = (
            self.config.auto_downgrade
            and spec.mode.kind is ModeKind.STRICT
            and DeadlinePolicy.is_auto_downgradable(spec.deadline_class)
        )
        return job, auto_down, tw

    def _try_admit(self, spec: JobSpec, now: float) -> bool:
        job, auto_down, tw = self._build_job(spec, now)
        decision = self.lac.admit(job, now=now, auto_downgrade=auto_down)
        obs = get_observer()
        if obs.enabled and not decision.accepted:
            obs.metrics.counter("sim.admission.rejected").inc()
            obs.events.emit(
                "admission",
                now,
                job_id=job.job_id,
                benchmark=spec.benchmark,
                mode=spec.mode.describe(),
                accepted=False,
                reason=decision.reason,
            )
        if not decision.accepted:
            if not job.target.resources.fits_within(self.lac.capacity):
                raise RuntimeError(
                    f"job requests {job.target.resources}, beyond node "
                    f"capacity; it can never be admitted"
                )
            if not any(r.end > now for r in self.lac.reservations()):
                # Nothing is booked now or in the future, yet the job
                # still does not fit before its deadline: it never will.
                raise RuntimeError(
                    f"job ({spec.benchmark}, {spec.mode.describe()}, "
                    f"{spec.deadline_class.value}) is infeasible even on "
                    "an idle node; the workload cannot complete"
                )
            return False
        self._register_accepted(job, spec, tw, decision, now, auto_down)
        return True

    def _register_accepted(
        self, job, spec, tw, decision, now, auto_down
    ) -> None:
        """Post-acceptance registration: state, dispatch, downgrade."""
        job.mark_accepted()
        self._accepted.append(job)
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("sim.admission.accepted").inc()
            obs.events.emit(
                "admission",
                now,
                job_id=job.job_id,
                benchmark=spec.benchmark,
                mode=spec.mode.describe(),
                accepted=True,
                auto_downgrade=auto_down,
                reserved_start=(
                    decision.reservation.start
                    if decision.reservation is not None
                    else None
                ),
            )
        state = _JobRun(
            job=job,
            spec=spec,
            curve=self._curve_for(spec.benchmark),
            cpi_model=get_benchmark(spec.benchmark).cpi_model(
                l2_latency=self.machine.l2_latency,
                memory_latency=self.machine.memory_latency,
            ),
            tw=tw,
            reservation=decision.reservation,
        )
        self._states[job.job_id] = state
        self._ways_history[job.job_id] = []
        if obs.enabled:
            # Trace id derives from (workload, configuration, job id) —
            # the same job gets the same id in every run, making traces
            # diffable across runs and mergeable across workers.
            trace_id = derive_trace_id(
                "job", self.workload.name, self.config.name, job.job_id
            )
            state.trace_root = obs.trace.start_span(
                trace_id,
                "job",
                now,
                job=job.job_id,
                benchmark=spec.benchmark,
                mode=spec.mode.describe(),
            )
        if self._slo is not None and job.deadline is not None:
            self._slo.register(
                job.job_id,
                deadline=job.deadline,
                instructions=float(job.instructions),
                now=now,
            )

        if spec.mode.kind is ModeKind.OPPORTUNISTIC:
            self._start_opportunistic(state, now)
        elif decision.reservation is not None:
            start = decision.reservation.start
            if auto_down and start > now:
                # Automatic downgrade: run Opportunistically in front of
                # the late-placed reservation (Section 3.4).
                job.auto_downgraded = True
                job.switch_back_time = start
                self._start_opportunistic(state, now)
                job.change_mode(now, ExecutionMode.opportunistic())
                if obs.enabled:
                    obs.metrics.counter("sim.auto_downgrades").inc()
                    obs.events.emit(
                        "auto_downgrade",
                        now,
                        job_id=job.job_id,
                        switch_back_at=start,
                    )
                self.events.schedule(
                    start, self._make_switch_back(job.job_id)
                )
            elif start <= now + 1e-12:
                self._dispatch_reserved(state, now)
            else:
                self._trace_segment(state, "queued", now)
                self.events.schedule(
                    start, self._make_reserved_dispatch(job.job_id)
                )

    # -- causal tracing -----------------------------------------------------------------

    def _trace_segment(self, state: _JobRun, name: str, now: float) -> None:
        """Close the job's current lifecycle segment and open ``name``.

        Segments (``queued``, ``exec.opportunistic``, ``exec.reserved``,
        ``displaced``) are children of the job's root span; contiguous
        and non-overlapping, so the root's breakdown decomposes the
        job's end-to-end latency by cause.
        """
        obs = get_observer()
        if not obs.enabled or state.trace_root is None:
            return
        if state.segment_span is not None and state.segment_span.end is None:
            obs.trace.end_span(state.segment_span, now)
        state.segment_span = obs.trace.start_span(
            state.trace_root.trace_id, name, now, parent=state.trace_root
        )

    def _trace_finish(self, state: _JobRun, now: float, status: str) -> None:
        """Close the job's open segment and root span at a terminal event."""
        obs = get_observer()
        if not obs.enabled or state.trace_root is None:
            return
        if state.segment_span is not None and state.segment_span.end is None:
            obs.trace.end_span(state.segment_span, now)
        state.segment_span = None
        if state.trace_root.end is None:
            obs.trace.end_span(state.trace_root, now, status=status)
        state.trace_root = None

    # -- dispatch -----------------------------------------------------------------------

    def _start_opportunistic(self, state: _JobRun, now: float) -> None:
        state.running = True
        state.reserved_running = False
        state.job.mark_started(now, core_id=-1)
        self._trace_segment(state, "exec.opportunistic", now)

    def _make_reserved_dispatch(self, job_id: int):
        def dispatch(now: float) -> None:
            state = self._states[job_id]
            if state.job.state is JobState.COMPLETED:
                return
            self._advance_all(now)
            self._dispatch_reserved(state, now)
            self._recompute(now)

        return dispatch

    def _make_switch_back(self, job_id: int):
        def switch_back(now: float) -> None:
            state = self._states[job_id]
            if state.job.state is JobState.COMPLETED:
                return
            self._advance_all(now)
            # The reserved timeslot begins: resume Strict execution on a
            # pinned core (Section 3.4's switch-back arrow in Figure 7b).
            state.job.change_mode(now, ExecutionMode.strict())
            obs = get_observer()
            if obs.enabled:
                obs.metrics.counter("sim.switch_backs").inc()
                obs.events.emit("switch_back", now, job_id=job_id)
            self._dispatch_reserved(state, now)
            self._recompute(now)

        return switch_back

    def _make_wall_clock_check(self, job_id: int, reservation_id: int):
        def check(now: float) -> None:
            state = self._states[job_id]
            if state.job.state is not JobState.RUNNING:
                return
            if not state.reserved_running:
                return
            if (
                state.reservation is None
                or state.reservation.reservation_id != reservation_id
            ):
                # Stale check from a reservation lost to a core fault;
                # the re-admitted reservation scheduled its own check.
                return
            self._advance_all(now)
            if state.job.instructions - state.progress <= _PROGRESS_EPSILON:
                return  # the completion event at this instant will land
            self._terminate(state, now)
            self._recompute(now)

        return check

    def _terminate(self, state: _JobRun, now: float) -> None:
        """Kill a reserved job that overran its wall-clock limit (§3.2)."""
        state.job.mark_terminated(now)
        state.running = False
        state.rate = 0.0
        if state.completion_handle is not None:
            state.completion_handle.cancel()
        if state.steal_handle is not None:
            state.steal_handle.cancel()
        for core, job_id in list(self._reserved_cores.items()):
            if job_id == state.job.job_id:
                del self._reserved_cores[core]
        state.reserved_running = False
        if state.reservation is not None:
            self.lac.release(state.reservation, at_time=now)
        if self.record_trace:
            self.trace.finish(now, state.job.job_id)
        self._terminations += 1
        self._trace_finish(state, now, "terminated")
        if self._slo is not None:
            self._slo.finish(now, state.job.job_id, met_deadline=False)
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("sim.jobs.terminated").inc()
            obs.events.emit(
                "job_terminate",
                now,
                job_id=state.job.job_id,
                progress=state.progress,
            )
        if all(
            s.job.state in (JobState.COMPLETED, JobState.TERMINATED)
            for s in self._states.values()
        ) and self._pending_index >= len(self._pending):
            self._finished = True

    def _dispatch_reserved(self, state: _JobRun, now: float) -> None:
        free_cores = [
            core
            for core in range(self.machine.num_cores)
            if core not in self._reserved_cores
            and core not in self._failed_cores
        ]
        if not free_cores:
            if self._failed_cores:
                # Every unreserved core is down: hold the dispatch until
                # the earliest repair instead of declaring the LAC
                # broken — the LAC booked against nominal capacity and
                # cannot see hardware faults.
                self._deferred_dispatches += 1
                retry_at = max(now, min(self._failed_cores.values())) + 1e-9
                self.events.schedule(
                    retry_at, self._make_reserved_dispatch(state.job.job_id)
                )
                return
            raise RuntimeError(
                f"no free core for reserved job {state.job.job_id}; the "
                "LAC over-admitted cores"
            )
        core = free_cores[0]
        self._reserved_cores[core] = state.job.job_id
        state.core_id = core
        state.reserved_running = True
        state.policy_ways = None
        self._trace_segment(state, "exec.reserved", now)
        if not state.running:
            state.running = True
            if state.job.state is JobState.ACCEPTED:
                state.job.mark_started(now, core_id=core)
            else:
                # Re-admitted after displacement: already RUNNING.
                state.job.assigned_core = core
        else:
            state.job.assigned_core = core

        if (
            self.sim_config.enforce_wall_clock
            and state.reservation is not None
            and state.reservation.end != float("inf")
        ):
            self.events.schedule(
                max(now, state.reservation.end),
                self._make_wall_clock_check(
                    state.job.job_id, state.reservation.reservation_id
                ),
            )

        mode = state.spec.mode
        if mode.kind is ModeKind.ELASTIC:
            state.steal = ResourceStealingController(
                slack=mode.slack,
                baseline_ways=state.spec.requested_ways,
                min_ways=self.sim_config.stealing_min_ways,
                interval_instructions=(
                    self.machine.repartition_interval_instructions
                ),
            )
            state.next_interval_at = (
                state.progress
                + self.machine.repartition_interval_instructions
            )

    # -- progress accounting ---------------------------------------------------------------

    def _advance_all(self, now: float) -> None:
        delta = now - self._last_advance
        if delta <= 0:
            self._last_advance = now
            return
        for state in self._states.values():
            if not state.running or state.rate <= 0.0:
                continue
            instructions = state.rate * delta
            state.progress += instructions
            mpi_actual = state.curve.mpi(state.ways)
            state.actual_misses += instructions * mpi_actual
            if state.steal is not None:
                state.baseline_misses += instructions * state.curve.mpi(
                    state.steal.baseline_ways
                )
        self._last_advance = now

    # -- allocation & rate recomputation ------------------------------------------------------

    def _recompute(self, now: float) -> None:
        """Re-derive allocations, bus contention, rates, and events."""
        running = [s for s in self._states.values() if s.running]
        reserved = [s for s in running if s.reserved_running]
        opportunistic = [s for s in running if not s.reserved_running]

        # Reserved jobs: pinned core, own (possibly stealing-reduced) ways.
        # A reserved job on a stalled core keeps its reservation but
        # retires nothing until the stall ends (it may then overrun).
        reserved_ways_total = 0
        for state in reserved:
            state.cpu_share = (
                0.0 if state.core_id in self._stalled_cores else 1.0
            )
            if state.steal is not None:
                state.ways = state.steal.current_ways
            elif state.policy_ways is not None:
                state.ways = state.policy_ways
            else:
                state.ways = state.spec.requested_ways
            reserved_ways_total += state.ways

        # Opportunistic pool: round-robin over unreserved healthy cores,
        # sharing the spare ways (unreserved + stolen).
        free_cores = [
            core
            for core in range(self.machine.num_cores)
            if core not in self._reserved_cores
            and core not in self._failed_cores
            and core not in self._stalled_cores
        ]
        spare_ways = self.machine.l2_ways - reserved_ways_total
        if spare_ways < 0:
            raise AssertionError(
                f"cache oversubscribed: {reserved_ways_total} reserved ways "
                f"in a {self.machine.l2_ways}-way L2"
            )
        if opportunistic and free_cores:
            opportunistic.sort(key=lambda s: s.job.job_id)
            used_cores = min(len(free_cores), len(opportunistic))
            core_jobs: Dict[int, List[_JobRun]] = {
                free_cores[i]: [] for i in range(used_cores)
            }
            for index, state in enumerate(opportunistic):
                core = free_cores[index % used_cores]
                core_jobs[core].append(state)
            share_ways, remainder = divmod(spare_ways, used_cores)
            for slot, (core, jobs_on_core) in enumerate(
                sorted(core_jobs.items())
            ):
                core_ways = share_ways + (1 if slot < remainder else 0)
                for state in jobs_on_core:
                    state.core_id = core
                    state.job.assigned_core = core
                    state.cpu_share = 1.0 / len(jobs_on_core)
                    state.ways = core_ways
        else:
            for state in opportunistic:
                state.cpu_share = 0.0
                state.ways = 0
                state.core_id = -1

        # Memory-bus contention: reserved jobs' requests are prioritised
        # (footnote 2), so only Opportunistic jobs see queueing delay.
        transfers_per_cycle = 0.0
        for state in running:
            if state.cpu_share <= 0.0:
                continue
            mpi = state.curve.mpi(state.ways)
            cpi = state.cpi_model.cpi(mpi)
            # Each miss moves a fill block plus, for the dirty fraction,
            # a write-back block.
            writeback_factor = 1.0 + get_benchmark(
                state.spec.benchmark
            ).write_fraction
            transfers_per_cycle += (
                state.cpu_share * mpi * writeback_factor / cpi
            )
        if self.sim_config.enable_bandwidth_model:
            bus = self.bandwidth.breakdown(
                transfers_per_cycle, self.machine.memory_latency
            )
            opp_multiplier = bus["penalty_multiplier"]
            self._bus_saturated = bus["saturated"]
            self._last_bus_utilisation = bus["utilisation"]
            # An active bandwidth-steal grant hands opportunistic
            # traffic the idle bus: no queueing penalty.  Reserved jobs
            # were never penalised, and utilisation is computed from
            # base CPI, so the grant cannot feed back into the sensor.
            if self._policy_bus_grant:
                opp_multiplier = 1.0
        else:
            bus = None
            opp_multiplier = 1.0
            self._bus_saturated = False
            self._last_bus_utilisation = 0.0
        obs = get_observer()
        if obs.enabled:
            obs.metrics.gauge("mem.bus.penalty_multiplier").set(
                opp_multiplier
            )
            if bus is not None:
                obs.metrics.gauge("mem.bus.utilisation").set(
                    bus["utilisation"]
                )
                obs.metrics.gauge("mem.bus.queueing_delay_cycles").set(
                    bus["queueing_delay_cycles"]
                )
            if self._bus_saturated:
                obs.metrics.counter("mem.bus.saturated_intervals").inc()

        # Rates, trace, and event rescheduling.
        for state in running:
            multiplier = 1.0 if state.reserved_running else opp_multiplier
            if state.cpu_share <= 0.0:
                state.rate = 0.0
            else:
                cpi = state.cpi_model.cpi(
                    state.curve.mpi(state.ways),
                    miss_penalty_multiplier=multiplier,
                )
                state.rate = (
                    state.cpu_share * self.machine.clock_hz / cpi
                )
            if self.record_trace:
                self.trace.update(
                    now,
                    state.job.job_id,
                    mode=state.job.current_mode,
                    ways=state.ways,
                    core_id=state.core_id,
                    cpu_share=state.cpu_share,
                )
            self._ways_history[state.job.job_id].append(state.ways)
            self._reschedule_completion(state, now)
            self._reschedule_steal(state, now)

        # SLO projection pass: rates are final for this interval, so
        # project every monitored in-flight job (including displaced
        # jobs, whose zero rate projects to infinity — violating until
        # resources return).  States iterate in admission order, so the
        # emitted transition events are deterministic.
        if self._slo is not None:
            for state in self._states.values():
                if state.job.state is not JobState.RUNNING:
                    continue
                transition = self._slo.observe(
                    now,
                    state.job.job_id,
                    progress=state.progress,
                    rate=state.rate,
                )
                if transition is not None:
                    obs.events.emit(
                        "slo." + transition,
                        now,
                        job_id=state.job.job_id,
                        deadline=state.job.deadline,
                    )

        if self._invariants is not None:
            self._invariants.maybe_check()

    # -- adaptive policy epochs -------------------------------------------------

    @property
    def policy_audit(self) -> List[Tuple[float, int, int]]:
        """(now, reserved_ways, spare_ways) after each decision epoch."""
        return list(self._policy_audit)

    def _policy_sensors(self, now: float) -> SensorSnapshot:
        """Pure sensor read: no simulation state is mutated.

        Progress is projected locally from the piecewise-constant rates
        (``progress + rate * (now - last_advance)``) instead of calling
        ``_advance_all``, so an epoch whose decision is empty leaves the
        trajectory byte-identical to a run without the policy.
        """
        elapsed = max(0.0, now - self._last_advance)
        jobs: List[JobSensor] = []
        reserved_ways_total = 0
        for job_id in sorted(self._states):
            state = self._states[job_id]
            if not state.running or state.job.state is not JobState.RUNNING:
                continue
            if state.reserved_running:
                reserved_ways_total += state.ways
            progress = state.progress
            if state.rate > 0.0 and elapsed > 0.0:
                progress = min(
                    progress + state.rate * elapsed,
                    float(state.job.instructions),
                )
            remaining = state.job.instructions - progress
            if remaining <= _PROGRESS_EPSILON:
                projected = now
            elif state.rate > 0.0:
                projected = now + remaining / state.rate
            else:
                projected = math.inf
            rates_by_ways: Tuple[float, ...] = ()
            if state.reserved_running and state.steal is None:
                rates_by_ways = tuple(
                    0.0
                    if ways == 0
                    else self.machine.clock_hz
                    / state.cpi_model.cpi(state.curve.mpi(ways))
                    for ways in range(self.machine.l2_ways + 1)
                )
            reservation_end: Optional[float] = None
            if (
                state.reservation is not None
                and state.reservation.end != math.inf
            ):
                reservation_end = state.reservation.end
            jobs.append(
                JobSensor(
                    job_id=job_id,
                    mode=state.job.current_mode.kind.value,
                    reserved=state.reserved_running,
                    elastic=state.steal is not None,
                    ways=state.ways,
                    requested_ways=state.spec.requested_ways,
                    progress=progress,
                    instructions=state.job.instructions,
                    rate=state.rate,
                    deadline=state.job.deadline,
                    reservation_end=reservation_end,
                    projected_finish=projected,
                    miss_increase_fraction=state.miss_increase_fraction(),
                    rates_by_ways=rates_by_ways,
                )
            )
        return SensorSnapshot(
            now=now,
            epoch_index=self._policy_epoch_index,
            l2_ways=self.machine.l2_ways,
            reserved_ways=reserved_ways_total,
            spare_ways=self.machine.l2_ways - reserved_ways_total,
            bus_utilisation=self._last_bus_utilisation,
            bus_saturated=self._bus_saturated,
            bus_granted=self._policy_bus_grant,
            jobs=tuple(jobs),
        )

    def _policy_actuator_view(self) -> ActuatorState:
        """Shadow of the actuatable state, for effectiveness filtering.

        Every reserved job counts toward the capacity total, but only
        reserved strict jobs (no stealing controller) accept ``SetWays``
        — elastic allocations are owned by their stealing controllers.
        Targets are capped at the admission-requested ways, which is
        what the LAC booked, so policy growth can never oversubscribe.
        """
        ways: Dict[int, int] = {}
        caps: Dict[int, int] = {}
        locked = set()
        for job_id, state in self._states.items():
            if not state.running or not state.reserved_running:
                continue
            ways[job_id] = state.ways
            caps[job_id] = state.spec.requested_ways
            if state.steal is not None:
                locked.add(job_id)
        return ActuatorState(
            total_ways=self.machine.l2_ways,
            ways=ways,
            caps=caps,
            locked=frozenset(locked),
            bus_granted=self._policy_bus_grant,
        )

    def _on_policy_epoch(self, now: float) -> None:
        if self._finished or self.policy is None:
            return
        snapshot = self._policy_sensors(now)
        actions = self.policy.decide(snapshot)
        view = self._policy_actuator_view()
        effective = [a for a in actions if apply_action(view, a)]
        self._policy_epoch_index += 1
        self._policy_audit.append((now, view.reserved_total(), view.spare()))
        if effective:
            self._advance_all(now)
            obs = get_observer()
            for action in effective:
                self._commit_policy_action(action)
                self._policy_decisions += 1
                if obs.enabled:
                    obs.metrics.counter(
                        "sim.policy.decisions", policy=self.policy.name
                    ).inc()
                    obs.events.emit(
                        "policy.decision",
                        now,
                        policy=self.policy.name,
                        **action.describe(),
                    )
            self._recompute(now)
        self.events.schedule(
            now + self._policy_epoch_seconds, self._on_policy_epoch
        )

    def _commit_policy_action(self, action) -> None:
        if isinstance(action, SetWays):
            self._states[action.job_id].policy_ways = action.ways
        elif isinstance(action, SetBusGrant):
            self._policy_bus_grant = action.granted

    def _reschedule_completion(self, state: _JobRun, now: float) -> None:
        if state.completion_handle is not None:
            state.completion_handle.cancel()
            state.completion_handle = None
        remaining = state.job.instructions - state.progress
        if remaining <= _PROGRESS_EPSILON:
            self._complete(state, now)
            return
        if state.rate <= 0.0:
            return
        eta = now + remaining / state.rate
        state.completion_handle = self.events.schedule(
            eta, self._make_completion(state.job.job_id)
        )

    def _make_completion(self, job_id: int):
        def complete(now: float) -> None:
            state = self._states[job_id]
            if state.job.state is JobState.COMPLETED:
                return
            self._advance_all(now)
            if state.job.instructions - state.progress > _PROGRESS_EPSILON:
                # A rate change landed between scheduling and firing;
                # recompute already rescheduled us.
                return
            self._complete(state, now)
            self._recompute(now)

        return complete

    def _complete(self, state: _JobRun, now: float) -> None:
        state.progress = float(state.job.instructions)
        state.job.executed_instructions = state.job.instructions
        state.job.mark_completed(now)
        state.running = False
        state.rate = 0.0
        if state.completion_handle is not None:
            state.completion_handle.cancel()
        if state.steal_handle is not None:
            state.steal_handle.cancel()
        if state.reserved_running:
            for core, job_id in list(self._reserved_cores.items()):
                if job_id == state.job.job_id:
                    del self._reserved_cores[core]
        state.reserved_running = False
        if state.reservation is not None:
            # Reclaim the unused remainder (or the whole future slot for
            # an AutoDown job that finished Opportunistically early).
            self.lac.release(state.reservation, at_time=now)
        if self.record_trace:
            self.trace.finish(now, state.job.job_id)
        self._trace_finish(state, now, "completed")
        if self._slo is not None:
            self._slo.finish(
                now, state.job.job_id, met_deadline=state.job.met_deadline
            )
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("sim.jobs.completed").inc()
            started = state.job.start_time
            obs.metrics.summary("sim.job_wall_clock").add(
                now - (started if started is not None else now)
            )
            obs.events.emit(
                "job_complete",
                now,
                job_id=state.job.job_id,
                benchmark=state.spec.benchmark,
                met_deadline=state.job.met_deadline,
            )
        if all(
            s.job.state in (JobState.COMPLETED, JobState.TERMINATED)
            for s in self._states.values()
        ) and self._pending_index >= len(self._pending):
            self._finished = True

    # -- resource stealing ---------------------------------------------------------------------

    def _reschedule_steal(self, state: _JobRun, now: float) -> None:
        if state.steal_handle is not None:
            state.steal_handle.cancel()
            state.steal_handle = None
        if (
            state.steal is None
            or not state.reserved_running
            or state.rate <= 0.0
        ):
            return
        remaining = state.next_interval_at - state.progress
        if remaining <= 0:
            remaining = 0.0
        eta = now + remaining / state.rate
        state.steal_handle = self.events.schedule(
            eta, self._make_steal_interval(state.job.job_id)
        )

    def _make_steal_interval(self, job_id: int):
        def interval(now: float) -> None:
            state = self._states[job_id]
            if (
                state.job.state is JobState.COMPLETED
                or state.steal is None
                or not state.reserved_running
            ):
                return
            self._advance_all(now)
            if state.progress + _PROGRESS_EPSILON < state.next_interval_at:
                # Stale event after a rate change; the reschedule in
                # _recompute covers the real instant.
                return
            decision = state.steal.on_interval(
                state, bus_saturated=self._bus_saturated
            )
            if decision.action is StealingAction.STEAL_ONE:
                self._steal_transfers += 1
            obs = get_observer()
            if obs.enabled and decision.action is not StealingAction.HOLD:
                obs.metrics.counter(
                    "sim.repartitions", action=decision.action.value
                ).inc()
                obs.events.emit(
                    "repartition",
                    now,
                    job_id=job_id,
                    action=decision.action.value,
                    ways=state.steal.current_ways,
                )
            state.next_interval_at = (
                state.progress
                + self.machine.repartition_interval_instructions
            )
            self._recompute(now)

        return interval

    # -- fault injection & graceful degradation ----------------------------------------------------

    def record_fault(self, event: FaultEvent, now: float) -> None:
        """Log one injected fault (called by the fault injector)."""
        self._fault_log.append((now, event))

    def fail_core(self, core: int, *, duration: float, now: float) -> None:
        """A core goes down for ``duration``; displace its reserved job."""
        core = core % self.machine.num_cores
        self._advance_all(now)
        repair_at = now + duration
        self._failed_cores[core] = max(
            repair_at, self._failed_cores.get(core, 0.0)
        )
        self.events.schedule(repair_at, self._make_core_repair(core))
        # A stall on a core that then fails is subsumed by the failure
        # (the pending stall-end event no-ops once the core is gone).
        self._stalled_cores.pop(core, None)
        job_id = self._reserved_cores.get(core)
        if job_id is not None:
            self._displace(self._states[job_id], now)
        self._recompute(now)

    def _make_core_repair(self, core: int):
        def repair(now: float) -> None:
            # Overlapping failures extend the repair time; only the
            # event matching the final repair instant clears the core.
            if self._failed_cores.get(core, math.inf) <= now + 1e-12:
                del self._failed_cores[core]
                self._advance_all(now)
                self._recompute(now)

        return repair

    def stall_core(self, core: int, *, duration: float, now: float) -> None:
        """Transient stall: the core retires nothing until it ends.

        Jobs on the core keep their reservations and may consequently
        overrun them (terminated at the boundary per Section 3.2).
        """
        core = core % self.machine.num_cores
        if core in self._failed_cores:
            return  # a failed core cannot also stall
        self._advance_all(now)
        end_at = now + duration
        self._stalled_cores[core] = max(
            end_at, self._stalled_cores.get(core, 0.0)
        )
        self.events.schedule(end_at, self._make_stall_end(core))
        self._recompute(now)

    def _make_stall_end(self, core: int):
        def end(now: float) -> None:
            if self._stalled_cores.get(core, math.inf) <= now + 1e-12:
                del self._stalled_cores[core]
                self._advance_all(now)
                self._recompute(now)

        return end

    def degrade_bandwidth(
        self, factor: float, *, duration: float, now: float
    ) -> None:
        """Brown-out: derate the bus peak by ``factor`` for ``duration``."""
        self._advance_all(now)
        self.bandwidth.apply_derate(factor)
        self.events.schedule(now + duration, self._make_derate_end(factor))
        self._recompute(now)

    def _make_derate_end(self, factor: float):
        def end(now: float) -> None:
            self.bandwidth.remove_derate(factor)
            self._advance_all(now)
            self._recompute(now)

        return end

    def inject_ecc_error(self, target: int, *, now: float) -> None:
        """ECC upset in a duplicate tag array: cancel that job's stealing.

        The victim is the ``target``-th (mod count) reserved-running
        Elastic job in job-id order — deterministic for a given
        simulator state.  With no stealing jobs active the upset hits an
        idle array and is harmless (still logged by the injector).
        """
        self._advance_all(now)
        candidates = sorted(
            (
                s
                for s in self._states.values()
                if s.steal is not None and s.reserved_running
            ),
            key=lambda s: s.job.job_id,
        )
        if not candidates:
            return
        state = candidates[target % len(candidates)]
        state.steal.on_ecc_error()
        self._ecc_cancellations += 1
        # The curve-based shadow observation restarts from scratch,
        # mirroring ShadowTagArray.inject_ecc_error.
        state.actual_misses = 0.0
        state.baseline_misses = 0.0
        self._recompute(now)

    def _displace(self, state: _JobRun, now: float) -> None:
        """Strip a faulted job of its core and reservation (recovery
        step 1); re-admission is scheduled with backoff."""
        self._displacements += 1
        job = state.job
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("sim.faults.displacements").inc()
            obs.events.emit("displacement", now, job_id=job.job_id)
        self._trace_segment(state, "displaced", now)
        if state.reservation is not None:
            self.lac.release(state.reservation, at_time=now)
            state.reservation = None
        for reserved_core, job_id in list(self._reserved_cores.items()):
            if job_id == job.job_id:
                del self._reserved_cores[reserved_core]
        state.reserved_running = False
        state.running = False
        state.displaced = True
        state.rate = 0.0
        state.cpu_share = 0.0
        state.core_id = -1
        if state.completion_handle is not None:
            state.completion_handle.cancel()
            state.completion_handle = None
        if state.steal_handle is not None:
            state.steal_handle.cancel()
            state.steal_handle = None
        state.steal = None
        state.policy_ways = None
        state.retry_attempt = 0
        self.events.schedule(
            now + self._retry_policy.delay(0),
            self._make_readmit(job.job_id),
        )

    def _make_readmit(self, job_id: int):
        def readmit(now: float) -> None:
            state = self._states[job_id]
            if not state.displaced or state.job.state is not JobState.RUNNING:
                return
            self._advance_all(now)
            self._try_readmit(state, now)
            self._recompute(now)

        return readmit

    def _remaining_duration(
        self, state: _JobRun, mode: ExecutionMode
    ) -> float:
        """Reservation length for the job's remaining instructions."""
        remaining_fraction = max(
            0.0, 1.0 - state.progress / state.job.instructions
        )
        remaining_tw = (
            state.tw * remaining_fraction * (1.0 + self.RESERVATION_MARGIN)
        )
        return mode.reservation_duration(remaining_tw)

    def _try_readmit(self, state: _JobRun, now: float) -> None:
        """One re-admission attempt; on repeated failure, walk the
        strict → elastic → opportunistic → best-effort ladder."""
        job = state.job
        mode = job.current_mode
        if mode.kind is ModeKind.OPPORTUNISTIC:
            self._resume_opportunistic(state, now)
            return
        self._readmission_attempts += 1
        duration = self._remaining_duration(state, mode)
        if duration <= 0.0:
            self._resume_opportunistic(state, now)
            return
        deadline = job.deadline
        latest_end = deadline if deadline is not None else math.inf
        reservation = self.lac.reserve_window(
            job.job_id,
            job.target.resources,
            duration,
            not_before=now,
            latest_end=latest_end,
        )
        if reservation is not None:
            self._readmissions += 1
            obs = get_observer()
            if obs.enabled:
                obs.metrics.counter("sim.faults.readmissions").inc()
                obs.events.emit(
                    "readmission",
                    now,
                    job_id=job.job_id,
                    start=reservation.start,
                    end=reservation.end,
                )
            state.reservation = reservation
            state.displaced = False
            state.retry_attempt = 0
            if reservation.start <= now + 1e-12:
                self._dispatch_reserved(state, now)
            else:
                self.events.schedule(
                    reservation.start,
                    self._make_reserved_dispatch(job.job_id),
                )
            return
        attempt = state.retry_attempt + 1
        if not self._retry_policy.exhausted(attempt):
            state.retry_attempt = attempt
            self.events.schedule(
                now + self._retry_policy.delay(attempt),
                self._make_readmit(job.job_id),
            )
            return
        # Retries exhausted at this rung: one step down the ladder.
        slack = (
            self.fault_config.elastic_downgrade_slack
            if self.fault_config is not None
            else 0.10
        )
        new_mode = downgrade_mode(mode, elastic_slack=slack)
        if new_mode is None:
            # Past Opportunistic: the guarantee is formally surrendered
            # and the job finishes on spare resources (best-effort).
            state.best_effort = True
            self._record_downgrade(
                now,
                job,
                mode,
                None,
                f"retries exhausted after {attempt} attempts at the "
                "final reserved rung; guarantee surrendered",
            )
            opportunistic = ExecutionMode.opportunistic()
            job.change_mode(now, opportunistic)
            state.spec = dataclasses.replace(state.spec, mode=opportunistic)
            self._resume_opportunistic(state, now)
            return
        self._record_downgrade(
            now,
            job,
            mode,
            new_mode,
            f"re-admission failed after {attempt} attempts",
        )
        job.change_mode(now, new_mode)
        state.spec = dataclasses.replace(state.spec, mode=new_mode)
        state.retry_attempt = 0
        if new_mode.kind is ModeKind.OPPORTUNISTIC:
            self._resume_opportunistic(state, now)
        else:
            self.events.schedule(
                now + self._retry_policy.delay(0),
                self._make_readmit(job.job_id),
            )

    def _resume_opportunistic(self, state: _JobRun, now: float) -> None:
        """A displaced job resumes on spare resources (no reservation)."""
        state.displaced = False
        state.running = True
        state.reserved_running = False
        state.core_id = -1
        self._trace_segment(state, "exec.opportunistic", now)

    def _record_downgrade(
        self,
        now: float,
        job: Job,
        from_mode: ExecutionMode,
        to_mode: Optional[ExecutionMode],
        reason: str,
    ) -> None:
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("sim.faults.downgrades").inc()
            obs.events.emit(
                "mode_downgrade",
                now,
                job_id=job.job_id,
                from_mode=from_mode.describe(),
                to_mode=(
                    to_mode.describe() if to_mode is not None else "best-effort"
                ),
                reason=reason,
            )
        self._downgrades.append(
            DowngradeRecord(
                time=now,
                job_id=job.job_id,
                from_mode=from_mode.describe(),
                to_mode=(
                    to_mode.describe()
                    if to_mode is not None
                    else "best-effort"
                ),
                reason=reason,
            )
        )

    # -- results -----------------------------------------------------------------------------------

    def _build_result(self, *, partial: bool = False) -> SystemResult:
        obs = get_observer()
        slo_report: Optional[SloReport] = None
        if self._slo is not None and len(self._slo):
            slo_report = self._slo.report(now=self.events.now)
            if obs.enabled:
                for summary in slo_report.jobs:
                    obs.metrics.gauge(
                        "slo.violation_fraction", job=summary.job_id
                    ).set(summary.violation_fraction)
                obs.metrics.gauge("slo.total_violations").set(
                    slo_report.total_violations
                )
                obs.metrics.gauge("slo.jobs_violated").set(
                    slo_report.jobs_violated
                )
        if obs.enabled:
            labels = {"configuration": self.config.name}
            obs.metrics.gauge("sim.probes", **labels).set(self._probes)
            obs.metrics.gauge("sim.rejections", **labels).set(
                self._rejections
            )
            obs.metrics.gauge("sim.backfills", **labels).set(
                self._backfills
            )
            obs.metrics.gauge("sim.steal_transfers", **labels).set(
                self._steal_transfers
            )
            obs.metrics.gauge("lac.admission_tests", **labels).set(
                self.lac.stats.admission_tests
            )
            obs.metrics.gauge("lac.candidate_windows", **labels).set(
                self.lac.stats.candidate_windows_evaluated
            )
            obs.events.emit(
                "run_result",
                self.events.now,
                workload=self.workload.name,
                configuration=self.config.name,
                partial=partial,
                jobs=len(self._accepted),
            )
        jobs = list(self._accepted)
        completed = sum(
            1 for job in jobs if job.state is JobState.COMPLETED
        )
        first_n = min(self.sim_config.accepted_jobs_target, completed)
        if partial:
            # A budget abort leaves jobs mid-flight; measure throughput
            # over whatever completed, never raising on the remainder.
            finished_jobs = [
                job for job in jobs if job.state is JobState.COMPLETED
            ]
            throughput = (
                ThroughputReport.from_jobs(finished_jobs, first_n=first_n)
                if first_n > 0
                else ThroughputReport(
                    jobs_measured=0, makespan=self.events.now
                )
            )
        else:
            throughput = ThroughputReport.from_jobs(jobs, first_n=first_n)
        deadline = DeadlineReport.from_jobs(jobs, reserved_modes_only=True)
        wall_clock = WallClockSummary.from_jobs(jobs)
        cancellations = sum(
            state.steal.cancellations
            for state in self._states.values()
            if state.steal is not None
        )
        resilience: Optional[ResilienceReport] = None
        digest: Optional[str] = None
        if self.fault_config is not None:
            fault_counts: Dict[str, int] = {}
            for _, event in self._fault_log:
                fault_counts[event.kind.value] = (
                    fault_counts.get(event.kind.value, 0) + 1
                )
            resilience = ResilienceReport(
                faults_injected=len(self._fault_log),
                fault_counts=fault_counts,
                downgrades=tuple(self._downgrades),
                displacements=self._displacements,
                readmissions=self._readmissions,
                readmission_attempts=self._readmission_attempts,
                deferred_dispatches=self._deferred_dispatches,
                best_effort_jobs=sum(
                    1 for s in self._states.values() if s.best_effort
                ),
                ecc_cancellations=self._ecc_cancellations,
                invariant_checks=(
                    self._invariants.checks_run
                    if self._invariants is not None
                    else 0
                ),
            )
            if self._fault_schedule is not None:
                digest = self._fault_schedule.digest()
        return SystemResult(
            workload_name=self.workload.name,
            configuration_name=self.config.name,
            jobs=jobs,
            makespan_seconds=throughput.makespan,
            makespan_cycles=self.machine.seconds_to_cycles(
                throughput.makespan
            ),
            throughput=throughput,
            deadline_report=deadline,
            wall_clock=wall_clock,
            trace=self.trace,
            probes=self._probes,
            rejections=self._rejections,
            backfills=self._backfills,
            terminations=self._terminations,
            steal_transfers=self._steal_transfers,
            steal_cancellations=cancellations,
            lac_admission_tests=self.lac.stats.admission_tests,
            lac_candidate_windows=self.lac.stats.candidate_windows_evaluated,
            per_job_ways_history=self._ways_history,
            partial=partial,
            abort_reason=self._abort_reason,
            resilience=resilience,
            fault_timeline_digest=digest,
            slo=slo_report,
            policy_decisions=self._policy_decisions,
        )
