"""Verification outcomes as plain, machine-readable data.

Every ``repro verify`` subcommand — differential pairs, metamorphic
laws, fuzzing, case replay — reduces its findings to the same three
shapes so one renderer and one JSON encoder serve all of them:

- :class:`CheckResult` — one named boolean with detail lines,
- :class:`PairReport` — the checks for one subject (a differential
  pair, one law, one fuzz case),
- :class:`VerifyReport` — a whole subcommand invocation.

The JSON form (``to_dict``) is the machine interface CI consumes; the
``lines()`` form is what the CLI prints.  Both are deterministic in
the inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class CheckResult:
    """One verified claim: a name, a verdict, and the evidence."""

    name: str
    passed: bool
    details: Tuple[str, ...] = ()

    @staticmethod
    def from_violations(
        name: str, violations: Sequence[str]
    ) -> "CheckResult":
        """Pass iff ``violations`` is empty; keep them as the evidence."""
        return CheckResult(
            name=name, passed=not violations, details=tuple(violations)
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "details": list(self.details),
        }


@dataclass
class PairReport:
    """All checks for one subject (pair, law, or fuzz case)."""

    kind: str  # "backend" / "jobs" / "faults" / law name / "case"
    subject: str  # scenario or parameter description
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "passed": self.passed,
            "checks": [check.to_dict() for check in self.checks],
        }

    def lines(self) -> List[str]:
        status = "ok" if self.passed else "FAIL"
        out = [f"[{status}] {self.kind}: {self.subject}"]
        for check in self.checks:
            mark = "pass" if check.passed else "FAIL"
            out.append(f"  {mark}  {check.name}")
            out.extend(f"         {detail}" for detail in check.details)
        return out


@dataclass
class VerifyReport:
    """One ``repro verify`` invocation's complete outcome."""

    command: str  # "diff" / "laws" / "fuzz" / "replay"
    reports: List[PairReport] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(report.passed for report in self.reports)

    @property
    def exit_code(self) -> int:
        """The process exit code: 0 clean, 1 any mismatch."""
        return 0 if self.passed else 1

    def failures(self) -> List[PairReport]:
        return [report for report in self.reports if not report.passed]

    def to_dict(self) -> Dict[str, object]:
        return {
            "command": self.command,
            "passed": self.passed,
            "reports": [report.to_dict() for report in self.reports],
            "notes": list(self.notes),
        }

    def lines(self) -> List[str]:
        out: List[str] = []
        for report in self.reports:
            out.extend(report.lines())
        out.extend(self.notes)
        checks = sum(len(report.checks) for report in self.reports)
        failed = len(self.failures())
        if failed:
            out.append(
                f"verify {self.command}: {failed}/{len(self.reports)} "
                f"subject(s) FAILED ({checks} checks)"
            )
        else:
            out.append(
                f"verify {self.command}: {len(self.reports)} subject(s), "
                f"{checks} checks, all clean"
            )
        return out
