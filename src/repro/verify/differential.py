"""Paired-execution differential harness.

One :class:`Scenario` — a workload, a configuration subset, a seed,
and scaled-down profiling/instruction knobs — is executed twice per
*pair*, with exactly one implementation choice flipped between the
arms, and every observable compared:

- **backend** — miss curves profiled and the sweep run under the
  ``reference`` cache backend versus a fast kernel (``fast`` by
  default, ``fast-vec`` via ``Scenario.fast_backend``).  Curves must
  match point-for-point and every downstream scalar byte-for-byte.
- **jobs** — the same sweep with ``jobs=1`` versus ``jobs=N``
  multiprocessing.  Counter snapshots *and* the metrics/events/trace
  JSONL artifact streams must be byte-identical (the observer-merge
  contract of :mod:`repro.analysis.parallel`).
- **faults** — each configuration run with ``fault_config=None``
  versus an all-zero-rate :class:`~repro.faults.model.FaultConfig`.
  The fault layer documents that a zero-rate config schedules no
  events and draws no RNG streams, so the trajectory must be
  byte-identical; only the presence of the (all-zero) resilience
  report may differ.
- **policy** — the sweep under an adaptive policy's *disabled*
  variant (``grow-shrink`` with an infinite dead-band,
  ``bandwidth-steal`` that never steals) versus the degenerate
  static wrapper.  A disabled adaptive policy still schedules
  decision epochs; the pair pins that observing without acting
  leaves every counter and artifact stream byte-identical — at both
  ``jobs=1`` and ``jobs=N`` — modulo the engine's own event-count
  bookkeeping, which legitimately counts the no-op epochs.

Both arms of a pair profile their miss curves through
:func:`~repro.workloads.profiler.profile_benchmark` directly — the
``get_curve`` memo and the on-disk miss-curve store deliberately key
without the backend, so going through them would compare one cached
curve against itself.

Numeric comparisons reuse :func:`repro.obs.diff.diff_snapshots`
(tolerance class ``|b-a| <= max(abs_tol, rel_tol*max(|a|,|b|))``);
the default tolerances are zero, i.e. exact.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.runner import run_all_configurations, run_configuration
from repro.cache.backend import forced_backend
from repro.core.config import CONFIGURATIONS
from repro.faults.model import FaultConfig
from repro.obs import Observer, observed
from repro.obs.diff import diff_snapshots
from repro.sim.config import SimulationConfig
from repro.sim.system import SystemResult
from repro.verify.report import CheckResult, PairReport, VerifyReport
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.composer import (
    MIX_ROLES,
    mixed_workload,
    single_benchmark_workload,
)
from repro.workloads.profiler import MissRatioCurve, profile_benchmark

#: The differential pairs, in the order ``verify diff`` runs them.
PAIR_NAMES: Tuple[str, ...] = ("backend", "jobs", "faults", "policy")

#: Snapshot keys whose presence legitimately differs between the arms
#: of the faults pair (None config has no resilience report at all).
_FAULT_EXEMPT_PREFIXES = ("resilience.", "fault_timeline_digest")


@dataclass(frozen=True)
class Scenario:
    """One differential subject: what to run and at what fidelity.

    ``instructions_per_job`` and the ``profile_*`` knobs are scaled
    down from the paper defaults because differential verification
    cares about *agreement*, not absolute numbers — and throughput
    results are normalisation-invariant in the instruction count.
    The composer seed and the simulator seed both derive from
    ``seed``.
    """

    workload: str = "bzip2"
    configurations: Tuple[str, ...] = ("All-Strict", "All-Strict+AutoDown")
    count: int = 10
    seed: int = 0
    jobs: int = 2
    instructions_per_job: int = 2_000_000
    profile_num_sets: int = 64
    profile_accesses: int = 40_000
    profile_warmup: int = 15_000
    record_trace: bool = True
    fast_backend: str = "fast"
    # Adaptive policy exercised by the "policy" pair (its disabled
    # variant vs the degenerate static wrapper).
    pair_policy: str = "grow-shrink"
    # Optional registry policy applied to BOTH arms of the other pairs,
    # pinning that adaptive decisions stay deterministic across
    # backends / job counts / the fault layer.
    policy: Optional[str] = None

    def __post_init__(self) -> None:
        if self.fast_backend not in ("fast", "fast-vec"):
            raise ValueError(
                f"fast_backend must be 'fast' or 'fast-vec', "
                f"got {self.fast_backend!r}"
            )
        from repro.core.policy import ADAPTIVE_POLICIES, policy_names

        if self.pair_policy not in ADAPTIVE_POLICIES:
            raise ValueError(
                f"pair_policy must be adaptive, one of "
                f"{sorted(ADAPTIVE_POLICIES)}; got {self.pair_policy!r}"
            )
        if self.policy is not None and self.policy not in policy_names():
            raise ValueError(
                f"unknown policy {self.policy!r}; expected among "
                f"{sorted(policy_names())}"
            )
        unknown = [
            name for name in self.configurations if name not in CONFIGURATIONS
        ]
        if unknown:
            raise ValueError(
                f"unknown configuration(s) {unknown}; "
                f"expected among {sorted(CONFIGURATIONS)}"
            )
        if not self.configurations:
            raise ValueError("scenario needs at least one configuration")
        if self.count < 1:
            raise ValueError(f"count must be positive, got {self.count}")
        if self.jobs < 2:
            raise ValueError(
                f"the jobs pair needs jobs >= 2, got {self.jobs}"
            )

    @staticmethod
    def for_figure(fig: str, *, seed: int = 0) -> "Scenario":
        """The scenario matching one of the reproduced figures.

        ``fig7`` pairs the two traced configurations (All-Strict vs
        AutoDown); ``fig5`` sweeps all five Table 2 configurations.
        """
        if fig == "fig7":
            return Scenario(
                workload="bzip2",
                configurations=("All-Strict", "All-Strict+AutoDown"),
                seed=seed,
            )
        if fig == "fig5":
            return Scenario(
                workload="bzip2",
                configurations=tuple(CONFIGURATIONS),
                seed=seed,
            )
        raise ValueError(
            f"no differential scenario for {fig!r}; expected fig5 or fig7"
        )

    def describe(self) -> str:
        return (
            f"{self.workload} x {len(self.configurations)} config(s), "
            f"count={self.count}, seed={self.seed}, jobs={self.jobs}"
        )

    def benchmarks(self) -> List[str]:
        """The distinct benchmarks the workload draws on."""
        if self.workload in MIX_ROLES:
            return sorted({name for name, _ in MIX_ROLES[self.workload]})
        return [self.workload]

    def sim_config(self) -> SimulationConfig:
        return SimulationConfig(
            instructions_per_job=self.instructions_per_job,
            seed=self.seed,
            profile_num_sets=self.profile_num_sets,
            profile_accesses=self.profile_accesses,
        )

    def workload_spec(self, configuration_name: str):
        """The composed :class:`WorkloadSpec` for one configuration."""
        configuration = CONFIGURATIONS[configuration_name]
        if self.workload in MIX_ROLES:
            return mixed_workload(
                self.workload, configuration, count=self.count, seed=self.seed
            )
        return single_benchmark_workload(
            self.workload, configuration, count=self.count, seed=self.seed
        )

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["configurations"] = list(self.configurations)
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "Scenario":
        known = {f.name for f in dataclasses.fields(Scenario)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown scenario field(s): {unknown}")
        payload = dict(payload)
        if "configurations" in payload:
            payload["configurations"] = tuple(payload["configurations"])
        return Scenario(**payload)


def profile_scenario_curves(
    scenario: Scenario, *, backend: Optional[str] = None
) -> Dict[str, MissRatioCurve]:
    """Profile the scenario's miss curves, bypassing every curve cache.

    Neither the in-process ``get_curve`` memo nor the on-disk
    miss-curve store keys on the backend, so differential arms must
    measure directly or they would compare a cached curve to itself.
    """
    return {
        name: profile_benchmark(
            get_benchmark(name),
            num_sets=scenario.profile_num_sets,
            accesses=scenario.profile_accesses,
            warmup=scenario.profile_warmup,
            backend=backend,
        )
        for name in scenario.benchmarks()
    }


@dataclass
class ArmResult:
    """Everything one arm produced: results plus artifact streams."""

    results: Dict[str, SystemResult]
    metrics_lines: List[str] = field(default_factory=list)
    events_lines: List[str] = field(default_factory=list)
    trace_lines: List[str] = field(default_factory=list)


def _run_sweep_arm(
    scenario: Scenario,
    *,
    curves: Dict[str, MissRatioCurve],
    jobs: int,
    policy: Optional[str] = None,
) -> ArmResult:
    """Run the scenario's sweep under a fresh observer; capture artifacts."""
    telemetry = Observer(record_samples=True)
    with observed(telemetry):
        results = run_all_configurations(
            scenario.workload,
            configurations=list(scenario.configurations),
            count=scenario.count,
            seed=scenario.seed,
            sim_config=scenario.sim_config(),
            curves=curves,
            record_trace=scenario.record_trace,
            jobs=jobs,
            policy=policy if policy is not None else scenario.policy,
        )
    return ArmResult(
        results=results,
        metrics_lines=list(telemetry.metrics.to_jsonl_lines()),
        events_lines=list(telemetry.events.to_jsonl_lines()),
        trace_lines=list(telemetry.trace.to_jsonl_lines()),
    )


def _run_fault_arm(
    scenario: Scenario,
    *,
    curves: Dict[str, MissRatioCurve],
    fault_config: Optional[FaultConfig],
    configurations: Sequence[str],
) -> ArmResult:
    """Run each configuration serially with the given fault config."""
    telemetry = Observer(record_samples=True)
    results: Dict[str, SystemResult] = {}
    with observed(telemetry):
        for name in configurations:
            results[name] = run_configuration(
                scenario.workload_spec(name),
                sim_config=scenario.sim_config(),
                curves=curves,
                record_trace=scenario.record_trace,
                fault_config=fault_config,
                policy=scenario.policy,
            )
    return ArmResult(
        results=results,
        metrics_lines=list(telemetry.metrics.to_jsonl_lines()),
        events_lines=list(telemetry.events.to_jsonl_lines()),
        trace_lines=list(telemetry.trace.to_jsonl_lines()),
    )


# -----------------------------------------------------------------------------
# Comparison helpers
# -----------------------------------------------------------------------------


def _split_snapshot(
    results: Dict[str, SystemResult],
    *,
    exclude_prefixes: Tuple[str, ...] = (),
) -> Tuple[List[dict], Dict[str, str]]:
    """Flatten result snapshots into diffable records plus exact fields.

    Numeric scalars become ``obs.diff`` counter records (so the
    tolerance classes apply); strings, booleans and ``None`` are
    compared exactly on the side.  Keys are qualified by configuration
    so a mismatch names the configuration *and* the field.
    """
    records: List[dict] = []
    exact: Dict[str, str] = {}
    for config_name, result in results.items():
        for key, value in result.counter_snapshot().items():
            if any(key.startswith(prefix) for prefix in exclude_prefixes):
                continue
            qualified = f"{config_name}.{key}"
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                exact[qualified] = repr(value)
            else:
                records.append(
                    {"type": "counter", "name": qualified, "value": value}
                )
    return records, exact


def _compare_results(
    a: Dict[str, SystemResult],
    b: Dict[str, SystemResult],
    *,
    rel_tol: float,
    abs_tol: float,
    exclude_prefixes: Tuple[str, ...] = (),
) -> List[str]:
    """All out-of-tolerance differences between two result sets."""
    violations: List[str] = []
    if list(a) != list(b):
        violations.append(
            f"configuration sets differ: {list(a)} vs {list(b)}"
        )
        return violations
    a_records, a_exact = _split_snapshot(a, exclude_prefixes=exclude_prefixes)
    b_records, b_exact = _split_snapshot(b, exclude_prefixes=exclude_prefixes)
    report = diff_snapshots(
        a_records, b_records, rel_tol=rel_tol, abs_tol=abs_tol
    )
    if not report.clean:
        violations.extend(delta.describe() for delta in report.deltas)
    for key in sorted(a_exact.keys() | b_exact.keys()):
        left = a_exact.get(key, "<absent>")
        right = b_exact.get(key, "<absent>")
        if left != right:
            violations.append(f"~ {key}: {left} -> {right}")
    return violations


def _compare_stream(
    name: str, a_lines: List[str], b_lines: List[str]
) -> CheckResult:
    """Byte-compare two JSONL artifact streams, reporting first drifts."""
    violations: List[str] = []
    if len(a_lines) != len(b_lines):
        violations.append(
            f"line counts differ: {len(a_lines)} vs {len(b_lines)}"
        )
    for index, (left, right) in enumerate(zip(a_lines, b_lines)):
        if left != right:
            violations.append(f"line {index}: {left!r} != {right!r}")
            if len(violations) >= 4:  # first few drifts locate the bug
                violations.append("… further drifted lines suppressed")
                break
    return CheckResult.from_violations(f"{name}-stream-identical", violations)


def _without_series(lines: List[str], prefix: str) -> List[str]:
    """Drop JSONL metric lines whose series name starts with ``prefix``."""
    kept = []
    for line in lines:
        record = json.loads(line)
        if str(record.get("name", "")).startswith(prefix):
            continue
        kept.append(line)
    return kept


def _without_event_kind(lines: List[str], kind: str) -> List[str]:
    """Drop JSONL event lines of the given ``kind``."""
    return [
        line
        for line in lines
        if json.loads(line).get("kind") != kind
    ]


# -----------------------------------------------------------------------------
# The pairs
# -----------------------------------------------------------------------------


def _backend_pair(
    scenario: Scenario, *, rel_tol: float, abs_tol: float
) -> PairReport:
    fast_name = scenario.fast_backend
    report = PairReport(
        kind="backend",
        subject=f"{scenario.describe()}, reference vs {fast_name}",
    )
    with forced_backend("reference"):
        reference_curves = profile_scenario_curves(
            scenario, backend="reference"
        )
    with forced_backend(fast_name):
        fast_curves = profile_scenario_curves(scenario, backend=fast_name)

    curve_violations: List[str] = []
    for name in scenario.benchmarks():
        ref, fast = reference_curves[name], fast_curves[name]
        if ref.points != fast.points:
            drifted = sorted(
                ways
                for ways in set(ref.points) | set(fast.points)
                if ref.points.get(ways) != fast.points.get(ways)
            )
            for ways in drifted[:8]:
                curve_violations.append(
                    f"~ {name}@{ways}w: {ref.points.get(ways)} -> "
                    f"{fast.points.get(ways)}"
                )
        if (
            ref.l2_accesses_per_instruction
            != fast.l2_accesses_per_instruction
        ):
            curve_violations.append(
                f"~ {name}.l2_accesses_per_instruction: "
                f"{ref.l2_accesses_per_instruction} -> "
                f"{fast.l2_accesses_per_instruction}"
            )
    report.checks.append(
        CheckResult.from_violations("miss-curves-identical", curve_violations)
    )

    with forced_backend("reference"):
        arm_a = _run_sweep_arm(scenario, curves=reference_curves, jobs=1)
    with forced_backend(fast_name):
        arm_b = _run_sweep_arm(scenario, curves=fast_curves, jobs=1)
    report.checks.append(
        CheckResult.from_violations(
            "counters-identical",
            _compare_results(
                arm_a.results,
                arm_b.results,
                rel_tol=rel_tol,
                abs_tol=abs_tol,
            ),
        )
    )
    # cache.builds series legitimately carry a backend label; everything
    # else in the metric stream must agree.
    report.checks.append(
        _compare_stream(
            "metrics",
            _without_series(arm_a.metrics_lines, "cache.builds"),
            _without_series(arm_b.metrics_lines, "cache.builds"),
        )
    )
    report.checks.append(
        _compare_stream("events", arm_a.events_lines, arm_b.events_lines)
    )
    return report


def _jobs_pair(
    scenario: Scenario, *, rel_tol: float, abs_tol: float
) -> PairReport:
    report = PairReport(kind="jobs", subject=scenario.describe())
    # Both arms share one pre-profiled curve set so neither arm profiles
    # under its observer — who profiles (parent once vs each worker)
    # would otherwise legitimately differ between serial and parallel.
    curves = profile_scenario_curves(scenario)
    arm_a = _run_sweep_arm(scenario, curves=curves, jobs=1)
    arm_b = _run_sweep_arm(scenario, curves=curves, jobs=scenario.jobs)
    report.checks.append(
        CheckResult.from_violations(
            "counters-identical",
            _compare_results(
                arm_a.results,
                arm_b.results,
                rel_tol=rel_tol,
                abs_tol=abs_tol,
            ),
        )
    )
    report.checks.append(
        _compare_stream("metrics", arm_a.metrics_lines, arm_b.metrics_lines)
    )
    report.checks.append(
        _compare_stream("events", arm_a.events_lines, arm_b.events_lines)
    )
    report.checks.append(
        _compare_stream("trace", arm_a.trace_lines, arm_b.trace_lines)
    )
    if not report.passed:
        from repro.analysis.parallel import pool_fingerprints

        report.checks.append(
            CheckResult(
                name="worker-fingerprints",
                passed=True,  # diagnostic, not a verdict
                details=tuple(
                    str(fp) for fp in pool_fingerprints(scenario.jobs)
                ),
            )
        )
    return report


def _faults_pair(
    scenario: Scenario, *, rel_tol: float, abs_tol: float
) -> PairReport:
    report = PairReport(kind="faults", subject=scenario.describe())
    # EqualPart rejects fault configs by design (no admission control
    # to degrade); the pair covers the QoS configurations.
    names = [
        name
        for name in scenario.configurations
        if not CONFIGURATIONS[name].equal_partition
    ]
    if not names:
        report.checks.append(
            CheckResult(
                name="zero-rate-faults-inert",
                passed=True,
                details=("no QoS configurations in scenario; vacuous",),
            )
        )
        return report
    curves = profile_scenario_curves(scenario)
    arm_a = _run_fault_arm(
        scenario, curves=curves, fault_config=None, configurations=names
    )
    zero_rate = FaultConfig(seed=scenario.seed)
    arm_b = _run_fault_arm(
        scenario, curves=curves, fault_config=zero_rate, configurations=names
    )
    report.checks.append(
        CheckResult.from_violations(
            "counters-identical",
            _compare_results(
                arm_a.results,
                arm_b.results,
                rel_tol=rel_tol,
                abs_tol=abs_tol,
                exclude_prefixes=_FAULT_EXEMPT_PREFIXES,
            ),
        )
    )
    inert_violations: List[str] = []
    for name, result in arm_b.results.items():
        resilience = result.resilience
        if resilience is None:
            inert_violations.append(f"{name}: missing resilience report")
            continue
        if resilience.faults_injected != 0:
            inert_violations.append(
                f"{name}: zero-rate config injected "
                f"{resilience.faults_injected} fault(s)"
            )
        if resilience.downgrade_count != 0:
            inert_violations.append(
                f"{name}: zero-rate config downgraded "
                f"{resilience.downgrade_count} job(s)"
            )
    report.checks.append(
        CheckResult.from_violations(
            "zero-rate-faults-inert", inert_violations
        )
    )
    report.checks.append(
        _compare_stream("events", arm_a.events_lines, arm_b.events_lines)
    )
    return report


def _policy_pair(
    scenario: Scenario, *, rel_tol: float, abs_tol: float
) -> PairReport:
    from repro.core.policy import disabled_variant

    disabled = disabled_variant(scenario.pair_policy)
    report = PairReport(
        kind="policy",
        subject=(
            f"{scenario.describe()}, {disabled} vs static 'strict' wrapper"
        ),
    )
    # One shared curve set: the pair flips only the policy, and a
    # disabled adaptive policy must be indistinguishable from the
    # degenerate static wrapper — epochs fire, nothing actuates.  The
    # epoch events themselves inflate the engine's own bookkeeping
    # (events-fired totals, pending counts at stop), so engine.* series
    # and engine.run_end records are exempt; every simulator-level
    # counter, metric, event, and trace line must agree byte-for-byte.
    curves = profile_scenario_curves(scenario)
    for jobs in (1, scenario.jobs):
        arm_a = _run_sweep_arm(
            scenario, curves=curves, jobs=jobs, policy="strict"
        )
        arm_b = _run_sweep_arm(
            scenario, curves=curves, jobs=jobs, policy=disabled
        )
        suffix = f"jobs={jobs}"
        report.checks.append(
            CheckResult.from_violations(
                f"counters-identical[{suffix}]",
                _compare_results(
                    arm_a.results,
                    arm_b.results,
                    rel_tol=rel_tol,
                    abs_tol=abs_tol,
                ),
            )
        )
        report.checks.append(
            _compare_stream(
                f"metrics[{suffix}]",
                _without_series(arm_a.metrics_lines, "engine."),
                _without_series(arm_b.metrics_lines, "engine."),
            )
        )
        report.checks.append(
            _compare_stream(
                f"events[{suffix}]",
                _without_event_kind(arm_a.events_lines, "engine.run_end"),
                _without_event_kind(arm_b.events_lines, "engine.run_end"),
            )
        )
        report.checks.append(
            _compare_stream(
                f"trace[{suffix}]", arm_a.trace_lines, arm_b.trace_lines
            )
        )
    return report


_PAIR_RUNNERS = {
    "backend": _backend_pair,
    "jobs": _jobs_pair,
    "faults": _faults_pair,
    "policy": _policy_pair,
}


def run_pair(
    scenario: Scenario,
    pair: str,
    *,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> PairReport:
    """Run one differential pair over ``scenario``."""
    try:
        runner = _PAIR_RUNNERS[pair]
    except KeyError:
        raise ValueError(
            f"unknown pair {pair!r}; expected one of {PAIR_NAMES}"
        ) from None
    return runner(scenario, rel_tol=rel_tol, abs_tol=abs_tol)


def run_diff(
    scenario: Scenario,
    *,
    pairs: Sequence[str] = PAIR_NAMES,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> VerifyReport:
    """Run the requested differential pairs; the ``verify diff`` core."""
    report = VerifyReport(command="diff")
    for pair in pairs:
        report.reports.append(
            run_pair(scenario, pair, rel_tol=rel_tol, abs_tol=abs_tol)
        )
    return report
