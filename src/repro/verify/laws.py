"""Metamorphic paper-level laws.

Each law is an oracle-free property the reproduction must satisfy for
*any* seed — not because a golden file says so, but because the
paper's model (or basic queueing/caching theory) says so:

- **miss-curve-monotone** — under LRU inclusion, giving a benchmark
  more cache ways never increases its measured miss rate (checked on
  the *raw* per-way measurements, before the curve normalisation that
  would hide an inversion), and both backends must measure the same
  raw points.
- **mode-downgrade-floor** — walking the Strict → Elastic(X) →
  Opportunistic ladder (voluntary, Section 3.3–3.4, or the fault-
  recovery ladder of :mod:`repro.faults.resilience`) never *raises*
  the throughput floor a job is promised, never climbs back up the
  guarantee ranks, and terminates.
- **core-permutation-symmetry** — a way-partitioned cache is
  symmetric in core identity: relabelling the cores of an access
  stream permutes the per-core counters and leaves every aggregate
  counter unchanged, on both backends.
- **fair-queue-conservation** — the memory bus neither creates nor
  destroys service: every submitted request completes exactly once,
  each occupies the bus for exactly ``service_cycles``, grants never
  overlap, and the bus never idles while an arrived request waits
  (work conservation), for both SFQ and FCFS.
- **figure5-shapes** — the qualitative Figure 5 claims
  (:func:`repro.analysis.report.shape_checks`) hold for the sweep at
  the given seed, not just the golden one.

``run_laws`` packages the verdicts as a :class:`VerifyReport` for the
``repro verify laws`` CLI and the CI gate.

The *policy conformance suite* (``repro verify laws --policy all``)
applies three further laws to every policy in the
:mod:`repro.core.policy` registry:

- **policy-throughput-floor** — running under a policy never loses a
  deadline the policy-free run met and never meaningfully inflates the
  makespan.
- **policy-capacity-conservation** — at every decision epoch the
  post-actuation reserved ways plus spare ways equal the L2's ways,
  and spare never goes negative.
- **policy-actuation-idempotence** — policy actions carry absolute
  targets, so re-applying an already-applied decision changes nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.report import shape_checks
from repro.analysis.runner import run_all_configurations
from repro.core.policy import (
    ActuatorState,
    JobSensor,
    SensorSnapshot,
    apply_action,
    make_policy,
    policy_names,
)
from repro.cache.backend import (
    BACKENDS,
    make_partitioned_cache,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.partitioned import PartitionClass
from repro.core.modes import (
    ExecutionMode,
    downgrade_to_elastic,
    is_interchangeable,
    opportunistic_window,
    time_slack,
)
from repro.faults.resilience import downgrade_mode
from repro.mem.fair_queue import FairQueueBus, FcfsBus
from repro.sim.config import SimulationConfig
from repro.util.rng import DeterministicRng
from repro.verify.report import CheckResult, PairReport, VerifyReport
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.profiler import measure_miss_rates

#: Measurement noise allowance for raw miss-rate inversions on finite
#: traces (the reason MissRatioCurve normalises at all).  A real
#: monotonicity bug — e.g. a replacement-policy regression — moves
#: rates by far more than this on the law's trace lengths.
_MONOTONE_EPSILON = 0.01

#: Benchmarks the curve law samples: one from each Figure 4 sensitivity
#: group (cache-sensitive, moderate, insensitive).
_LAW_BENCHMARKS = ("bzip2", "hmmer", "gobmk")


@dataclass(frozen=True)
class Law:
    """One metamorphic property: a checker returning violation lines."""

    name: str
    description: str
    check: Callable[[int], List[str]]


# -----------------------------------------------------------------------------
# miss-curve-monotone
# -----------------------------------------------------------------------------


def _check_miss_curve_monotone(seed: int) -> List[str]:
    violations: List[str] = []
    for name in _LAW_BENCHMARKS:
        profile = get_benchmark(name)
        per_backend: Dict[str, Dict[int, float]] = {}
        for backend in BACKENDS:
            raw = measure_miss_rates(
                profile,
                ways_list=range(1, 17),
                num_sets=16,
                accesses=6_000,
                warmup=2_000,
                seed=seed,
                backend=backend,
            )
            per_backend[backend] = raw
            previous_ways: Optional[int] = None
            for ways in sorted(raw):
                if (
                    previous_ways is not None
                    and raw[ways] > raw[previous_ways] + _MONOTONE_EPSILON
                ):
                    violations.append(
                        f"{name}[{backend}]: miss rate rose from "
                        f"{raw[previous_ways]:.4f}@{previous_ways}w to "
                        f"{raw[ways]:.4f}@{ways}w"
                    )
                previous_ways = ways
        if per_backend["reference"] != per_backend["fast"]:
            drifted = sorted(
                ways
                for ways in per_backend["reference"]
                if per_backend["reference"][ways]
                != per_backend["fast"][ways]
            )
            for ways in drifted[:8]:
                violations.append(
                    f"{name}@{ways}w: backends disagree on the raw rate "
                    f"({per_backend['reference'][ways]:.6f} reference vs "
                    f"{per_backend['fast'][ways]:.6f} fast)"
                )
    return violations


# -----------------------------------------------------------------------------
# mode-downgrade-floor
# -----------------------------------------------------------------------------


def _ladder_walk(start: ExecutionMode, elastic_slack: float) -> List[str]:
    """Violations along the fault-recovery ladder from ``start``."""
    violations: List[str] = []
    mode: Optional[ExecutionMode] = start
    steps = 0
    while mode is not None:
        lower = downgrade_mode(mode, elastic_slack=elastic_slack)
        steps += 1
        if steps > 4:
            violations.append(
                f"ladder from {start.describe()} did not terminate"
            )
            break
        if lower is None:
            break
        if lower.throughput_floor > mode.throughput_floor:
            violations.append(
                f"downgrade {mode.describe()} -> {lower.describe()} raised "
                f"the throughput floor ({mode.throughput_floor:.4f} -> "
                f"{lower.throughput_floor:.4f})"
            )
        if lower.guarantee_rank <= mode.guarantee_rank:
            violations.append(
                f"downgrade {mode.describe()} -> {lower.describe()} did "
                "not descend the guarantee ladder"
            )
        mode = lower
    return violations


def _check_mode_downgrade_floor(seed: int) -> List[str]:
    violations: List[str] = []
    rng = DeterministicRng(seed, "verify-mode-ladder")
    for case in range(200):
        arrival = rng.uniform(0.0, 1.0)
        tw = rng.uniform(0.01, 0.5)
        deadline = arrival + tw * rng.uniform(1.0, 3.0)
        strict = ExecutionMode.strict()

        elastic = downgrade_to_elastic(arrival, deadline, tw)
        slack = time_slack(arrival, deadline, tw)
        if elastic is not None:
            if elastic.throughput_floor > strict.throughput_floor:
                violations.append(
                    f"case {case}: Elastic({elastic.slack:.4f}) floor "
                    f"{elastic.throughput_floor:.4f} above Strict's"
                )
            if not is_interchangeable(
                strict,
                elastic,
                arrival=arrival,
                deadline=deadline,
                max_wall_clock=tw,
            ):
                violations.append(
                    f"case {case}: voluntary downgrade produced a "
                    "non-interchangeable Elastic mode"
                )
        elif slack > 1e-12:
            violations.append(
                f"case {case}: positive slack {slack:.6f} but no "
                "Elastic downgrade offered"
            )

        window = opportunistic_window(arrival, deadline, tw)
        if (window is not None) != (slack > 0.0):
            violations.append(
                f"case {case}: opportunistic window offered iff slack>0 "
                f"violated (slack={slack:.6f}, window={window})"
            )

        elastic_slack = rng.uniform(0.01, 0.5)
        violations.extend(_ladder_walk(strict, elastic_slack))
        violations.extend(
            _ladder_walk(ExecutionMode.elastic(elastic_slack), elastic_slack)
        )
        opportunistic = ExecutionMode.opportunistic()
        # Idempotence at the bottom: Opportunistic's only remaining rung
        # is best-effort, which *is* Opportunistic execution — walking
        # further must change nothing and then stop.
        below = downgrade_mode(opportunistic, elastic_slack=elastic_slack)
        if below is not None and below != opportunistic:
            violations.append(
                f"case {case}: below Opportunistic came "
                f"{below.describe()}, not best-effort"
            )
    return violations


# -----------------------------------------------------------------------------
# core-permutation-symmetry
# -----------------------------------------------------------------------------


def _check_core_permutation_symmetry(seed: int) -> List[str]:
    violations: List[str] = []
    rng = DeterministicRng(seed, "verify-core-permutation")
    num_cores = 4
    geometry = CacheGeometry.from_sets(16, 8, 64)
    accesses = [
        (rng.randint(0, 255) * 64, rng.uniform() < 0.3, rng.randint(0, 3))
        for _ in range(3_000)
    ]
    permutation = list(range(num_cores))
    rng.shuffle(permutation)
    for backend in BACKENDS:
        base = make_partitioned_cache(
            geometry, num_cores, name="verify-base", backend=backend
        )
        relabeled = make_partitioned_cache(
            geometry, num_cores, name="verify-perm", backend=backend
        )
        for cache, mapping in (
            (base, list(range(num_cores))),
            (relabeled, permutation),
        ):
            for core in range(num_cores):
                cache.set_target(mapping[core], 2)
                cache.set_class(mapping[core], PartitionClass.RESERVED)
        for address, is_write, core in accesses:
            base.access(core, address, is_write=is_write)
            relabeled.access(
                permutation[core], address, is_write=is_write
            )
        for counter in (
            "accesses",
            "hits",
            "misses",
            "evictions",
            "writebacks",
            "fills",
        ):
            left = getattr(base.stats, counter)
            right = getattr(relabeled.stats, counter)
            if left != right:
                violations.append(
                    f"[{backend}] aggregate {counter} changed under core "
                    f"permutation: {left} vs {right}"
                )
        for core in range(num_cores):
            left_counters = base.stats.per_core.get(core)
            right_counters = relabeled.stats.per_core.get(
                permutation[core]
            )
            if left_counters != right_counters:
                violations.append(
                    f"[{backend}] core {core} counters != relabeled core "
                    f"{permutation[core]}: {left_counters} vs "
                    f"{right_counters}"
                )
    return violations


# -----------------------------------------------------------------------------
# fair-queue-conservation
# -----------------------------------------------------------------------------


def _check_fair_queue_conservation(seed: int) -> List[str]:
    violations: List[str] = []
    rng = DeterministicRng(seed, "verify-fair-queue")
    num_cores = 4
    shares = {core: 1.0 / num_cores for core in range(num_cores)}
    submissions = []
    clock = 0.0
    for _ in range(400):
        # Mix of bursts (zero gap) and idle stretches, so both the
        # backlogged and the idle-bus paths of drain() are exercised.
        clock += rng.choice([0.0, 0.0, rng.uniform(0.0, 15.0), 80.0])
        submissions.append((rng.randint(0, num_cores - 1), clock))
    for label, bus in (
        ("sfq", FairQueueBus(shares, service_cycles=20.0)),
        ("fcfs", FcfsBus(service_cycles=20.0)),
    ):
        for core, arrival in submissions:
            bus.submit(core, arrival)
        completed = bus.drain()
        if len(completed) != len(submissions):
            violations.append(
                f"[{label}] {len(submissions)} submitted but "
                f"{len(completed)} completed"
            )
            continue
        for index, request in enumerate(completed):
            if not math.isclose(
                request.finish - request.start,
                bus.service_cycles,
                rel_tol=1e-9,
            ):
                violations.append(
                    f"[{label}] grant {index} held the bus for "
                    f"{request.finish - request.start} cycles"
                )
            if request.start < request.arrival:
                violations.append(
                    f"[{label}] grant {index} started before its arrival"
                )
        # The completed list is in service order: grants must tile the
        # busy periods without overlap, and an idle gap is legal only
        # when nothing still waiting had already arrived.
        for index in range(1, len(completed)):
            previous, current = completed[index - 1], completed[index]
            if current.start < previous.finish:
                violations.append(
                    f"[{label}] grants {index - 1} and {index} overlap"
                )
            elif current.start > previous.finish:
                earliest_waiting = min(
                    request.arrival for request in completed[index:]
                )
                if earliest_waiting <= previous.finish:
                    violations.append(
                        f"[{label}] bus idled over "
                        f"({previous.finish}, {current.start}) while a "
                        f"request arrived at {earliest_waiting} waited"
                    )
    return violations


# -----------------------------------------------------------------------------
# figure5-shapes
# -----------------------------------------------------------------------------


def _check_figure5_shapes(seed: int) -> List[str]:
    sim_config = SimulationConfig(
        instructions_per_job=2_000_000,
        seed=seed,
        profile_num_sets=16,
        profile_accesses=4_000,
    )
    results = run_all_configurations(
        "bzip2", count=10, seed=seed, sim_config=sim_config
    )
    checks = shape_checks(results)
    return [
        f"shape invariant {name!r} failed at seed {seed}"
        for name, passed in sorted(checks.items())
        if not passed
    ]


# -----------------------------------------------------------------------------
# policy conformance laws
# -----------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyLaw:
    """One conformance property every registered policy must satisfy."""

    name: str
    description: str
    check: Callable[[int, str], List[str]]


class SyntheticPolicyWorld:
    """Deterministic closed-loop sandbox for exercising policies.

    A handful of reserved strict jobs with concave rate-vs-ways curves,
    seeded head-start progress (the auto-downgrade switch-back shape
    that gives :class:`~repro.core.policy.GrowShrinkWaysPolicy` real
    headroom), and a scripted bus-utilisation profile.  Actions are
    applied through the same :func:`~repro.core.policy.apply_action`
    harness the simulator uses, so laws and property tests checked here
    exercise exactly the production actuation path.
    """

    def __init__(
        self,
        seed: int,
        *,
        jobs: int = 3,
        l2_ways: int = 16,
        epoch: float = 0.001,
        utilisation: Optional[Callable[[float], float]] = None,
    ) -> None:
        rng = DeterministicRng(seed, "verify-policy-world")
        self.now = 0.0
        self.epoch = epoch
        self.epoch_index = 0
        self.l2_ways = l2_ways
        self.utilisation_fn = (
            utilisation if utilisation is not None else (lambda now: 0.3)
        )
        self._jobs: List[Dict[str, object]] = []
        ways: Dict[int, int] = {}
        caps: Dict[int, int] = {}
        for job_id in range(jobs):
            requested = rng.randint(2, 5)
            base = 2.0e9 * rng.uniform(0.5, 1.0)
            rates = tuple(
                0.0 if w == 0 else base * w / (w + 2.0)
                for w in range(l2_ways + 1)
            )
            instructions = int(rates[requested] * rng.uniform(0.004, 0.008))
            horizon = (
                instructions / rates[requested]
            ) * (1.0 + rng.uniform(0.05, 0.30))
            self._jobs.append(
                {
                    "job_id": job_id,
                    "requested": requested,
                    "rates": rates,
                    "instructions": instructions,
                    "progress": rng.uniform(0.0, 0.5) * instructions,
                    "limit": horizon,
                }
            )
            ways[job_id] = requested
            caps[job_id] = requested
        self.state = ActuatorState(
            total_ways=l2_ways, ways=ways, caps=caps
        )

    def finished(self) -> bool:
        return all(
            job["progress"] >= job["instructions"] for job in self._jobs
        )

    def apply(self, action) -> bool:
        """Apply one policy action through the shared harness."""
        return apply_action(self.state, action)

    def snapshot(self) -> SensorSnapshot:
        sensors = []
        reserved = 0
        for job in self._jobs:
            if job["progress"] >= job["instructions"]:
                continue
            ways = self.state.ways[job["job_id"]]
            reserved += ways
            rate = job["rates"][ways]
            remaining = job["instructions"] - job["progress"]
            projected = (
                self.now + remaining / rate if rate > 0.0 else math.inf
            )
            sensors.append(
                JobSensor(
                    job_id=job["job_id"],
                    mode="strict",
                    reserved=True,
                    elastic=False,
                    ways=ways,
                    requested_ways=job["requested"],
                    progress=job["progress"],
                    instructions=job["instructions"],
                    rate=rate,
                    deadline=job["limit"],
                    reservation_end=job["limit"],
                    projected_finish=projected,
                    miss_increase_fraction=0.0,
                    rates_by_ways=job["rates"],
                )
            )
        utilisation = self.utilisation_fn(self.now)
        return SensorSnapshot(
            now=self.now,
            epoch_index=self.epoch_index,
            l2_ways=self.l2_ways,
            reserved_ways=reserved,
            spare_ways=self.l2_ways - reserved,
            bus_utilisation=utilisation,
            bus_saturated=utilisation >= 1.0,
            bus_granted=self.state.bus_granted,
            jobs=tuple(sensors),
        )

    def advance(self) -> None:
        for job in self._jobs:
            if job["progress"] >= job["instructions"]:
                continue
            rate = job["rates"][self.state.ways[job["job_id"]]]
            job["progress"] = min(
                float(job["instructions"]),
                job["progress"] + rate * self.epoch,
            )
        self.now += self.epoch
        self.epoch_index += 1


#: Utilisation profiles the synthetic-world laws sweep: steady idle,
#: steady contention, and a bursty square wave.
_WORLD_PROFILES: Dict[str, Callable[[float], float]] = {
    "idle": lambda now: 0.2,
    "contended": lambda now: 0.92,
    "bursty": lambda now: 0.95 if int(now / 0.004) % 2 else 0.15,
}

#: (seed, policy name) -> (capacity audit, baseline result, subject
#: result); each policy's small reference simulation runs once and
#: feeds both simulation-backed laws.
_POLICY_RUN_CACHE: Dict = {}


def _policy_law_sim(seed: int, policy_name: Optional[str]):
    from repro.core.config import CONFIGURATIONS
    from repro.sim.system import QoSSystemSimulator
    from repro.workloads.composer import single_benchmark_workload

    sim_config = SimulationConfig(
        instructions_per_job=2_000_000,
        seed=seed,
        profile_num_sets=16,
        profile_accesses=4_000,
    )
    workload = single_benchmark_workload(
        "bzip2",
        CONFIGURATIONS["All-Strict+AutoDown"],
        count=8,
        seed=seed,
    )
    simulator = QoSSystemSimulator(
        workload,
        sim_config=sim_config,
        record_trace=False,
        policy=(
            make_policy(policy_name) if policy_name is not None else None
        ),
    )
    return simulator, simulator.run()


def _policy_run(seed: int, policy_name: Optional[str]):
    key = (seed, policy_name)
    if key not in _POLICY_RUN_CACHE:
        simulator, result = _policy_law_sim(seed, policy_name)
        _POLICY_RUN_CACHE[key] = (simulator.policy_audit, result)
    return _POLICY_RUN_CACHE[key]


def _check_policy_throughput_floor(seed: int, policy: str) -> List[str]:
    violations: List[str] = []
    _, baseline = _policy_run(seed, None)
    _, subject = _policy_run(seed, policy)
    if subject.deadline_report.met < baseline.deadline_report.met:
        violations.append(
            f"{policy}: deadlines met fell from "
            f"{baseline.deadline_report.met} to "
            f"{subject.deadline_report.met}"
        )
    ceiling = baseline.makespan_seconds * 1.05 + 1e-12
    if subject.makespan_seconds > ceiling:
        violations.append(
            f"{policy}: makespan {subject.makespan_seconds:.6f}s exceeds "
            f"the floor ceiling {ceiling:.6f}s "
            f"(baseline {baseline.makespan_seconds:.6f}s)"
        )
    return violations


def _check_policy_capacity_conservation(seed: int, policy: str) -> List[str]:
    from repro.sim.config import MachineConfig

    violations: List[str] = []
    audit, _ = _policy_run(seed, policy)
    l2_ways = MachineConfig().l2_ways
    if make_policy(policy).adaptive and not audit:
        violations.append(
            f"{policy}: adaptive policy produced no epoch audit records "
            "(epoch hook disconnected?)"
        )
    for now, reserved, spare in audit:
        if reserved + spare != l2_ways:
            violations.append(
                f"{policy}@t={now:.6f}: reserved {reserved} + spare "
                f"{spare} != {l2_ways} L2 ways"
            )
        if spare < 0 or reserved < 0:
            violations.append(
                f"{policy}@t={now:.6f}: negative allocation "
                f"(reserved={reserved}, spare={spare})"
            )
    return violations


def _check_policy_actuation_idempotence(
    seed: int, policy: str
) -> List[str]:
    violations: List[str] = []
    for profile_name, profile in _WORLD_PROFILES.items():
        instance = make_policy(policy)
        instance.reset()
        world = SyntheticPolicyWorld(
            seed, utilisation=profile
        )
        for step in range(60):
            if world.finished():
                break
            snapshot = world.snapshot()
            actions = instance.decide(snapshot)
            for action in actions:
                first = world.apply(action)
                second = world.apply(action)
                if second:
                    violations.append(
                        f"{policy}[{profile_name}] step {step}: "
                        f"re-applying {action.describe()} was not a "
                        "no-op"
                    )
                if not first:
                    # Emitting an action the harness rejects is legal
                    # (the simulator filters it) but an action that is
                    # *rejected then accepted* would be stateful.
                    again = world.apply(action)
                    if again:
                        violations.append(
                            f"{policy}[{profile_name}] step {step}: "
                            f"{action.describe()} rejected then "
                            "accepted"
                        )
            world.advance()
    return violations


POLICY_LAWS: Dict[str, PolicyLaw] = {
    law.name: law
    for law in (
        PolicyLaw(
            name="policy-throughput-floor",
            description="a policy never loses deadlines or meaningfully "
            "inflates makespan vs the policy-free run",
            check=_check_policy_throughput_floor,
        ),
        PolicyLaw(
            name="policy-capacity-conservation",
            description="reserved + spare ways equal the L2 at every "
            "decision epoch, spare never negative",
            check=_check_policy_capacity_conservation,
        ),
        PolicyLaw(
            name="policy-actuation-idempotence",
            description="re-applying an already-applied decision is a "
            "no-op",
            check=_check_policy_actuation_idempotence,
        ),
    )
}


LAWS: Dict[str, Law] = {
    law.name: law
    for law in (
        Law(
            name="miss-curve-monotone",
            description="more ways never raise the raw miss rate; "
            "backends measure identical raw points",
            check=_check_miss_curve_monotone,
        ),
        Law(
            name="mode-downgrade-floor",
            description="the downgrade ladder never raises a job's "
            "throughput floor and always terminates",
            check=_check_mode_downgrade_floor,
        ),
        Law(
            name="core-permutation-symmetry",
            description="partitioned-cache counters are equivariant "
            "under core relabelling",
            check=_check_core_permutation_symmetry,
        ),
        Law(
            name="fair-queue-conservation",
            description="the memory bus conserves service and never "
            "idles over a waiting request",
            check=_check_fair_queue_conservation,
        ),
        Law(
            name="figure5-shapes",
            description="the qualitative Figure 5 claims hold at this "
            "seed",
            check=_check_figure5_shapes,
        ),
    )
}


def run_laws(
    seed: int = 0,
    *,
    names: Optional[Sequence[str]] = None,
    policy: Optional[str] = None,
) -> VerifyReport:
    """Check the requested laws (default: all) at ``seed``.

    With ``policy`` set — one registry name or ``"all"`` — the *policy
    conformance* laws run instead, against the named policies;
    ``names`` then selects among :data:`POLICY_LAWS`.
    """
    if policy is not None:
        return run_policy_laws(seed, policy=policy, names=names)
    selected = list(names) if names is not None else list(LAWS)
    unknown = sorted(set(selected) - set(LAWS))
    if unknown:
        raise ValueError(
            f"unknown law(s) {unknown}; expected among {sorted(LAWS)}"
        )
    report = VerifyReport(command="laws")
    for name in selected:
        law = LAWS[name]
        violations = law.check(seed)
        report.reports.append(
            PairReport(
                kind=name,
                subject=f"{law.description} (seed={seed})",
                checks=[CheckResult.from_violations(name, violations)],
            )
        )
    return report


def run_policy_laws(
    seed: int = 0,
    *,
    policy: str = "all",
    names: Optional[Sequence[str]] = None,
) -> VerifyReport:
    """Run the policy conformance suite at ``seed``.

    ``policy`` is one registry name or ``"all"``; every selected law
    runs against every selected policy, so ``repro verify laws
    --policy all`` is the full conformance matrix.
    """
    registered = policy_names()
    targets = list(registered) if policy == "all" else [policy]
    unknown_policies = sorted(set(targets) - set(registered))
    if unknown_policies:
        raise ValueError(
            f"unknown policy(ies) {unknown_policies}; expected among "
            f"{sorted(registered)} or 'all'"
        )
    selected = list(names) if names is not None else list(POLICY_LAWS)
    unknown = sorted(set(selected) - set(POLICY_LAWS))
    if unknown:
        raise ValueError(
            f"unknown policy law(s) {unknown}; expected among "
            f"{sorted(POLICY_LAWS)}"
        )
    report = VerifyReport(command="laws")
    for name in selected:
        law = POLICY_LAWS[name]
        for target in targets:
            violations = law.check(seed, target)
            report.reports.append(
                PairReport(
                    kind=name,
                    subject=(
                        f"{law.description} "
                        f"(policy={target}, seed={seed})"
                    ),
                    checks=[
                        CheckResult.from_violations(
                            f"{name}[{target}]", violations
                        )
                    ],
                )
            )
    return report
