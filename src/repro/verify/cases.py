"""Replayable verification cases (``verify-case.json``).

When the fuzzer finds a scenario on which two supposedly-equivalent
executions disagree, the shrunk scenario is worth more than the log
line: serialised, it becomes a deterministic regression test anyone
can re-run with ``repro verify replay verify-case.json``.  This module
is that serialisation — a versioned JSON envelope around a
:class:`~repro.verify.differential.Scenario` plus the differential
pairs that failed on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple

from repro.verify.differential import PAIR_NAMES, Scenario

#: Envelope version; bump on any incompatible schema change.
VERIFY_CASE_VERSION = 1


@dataclass(frozen=True)
class VerifyCase:
    """One minimal failing (or pinned) differential scenario."""

    scenario: Scenario
    pairs: Tuple[str, ...]
    fuzz_seed: int = 0
    case_index: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        unknown = [pair for pair in self.pairs if pair not in PAIR_NAMES]
        if unknown:
            raise ValueError(
                f"unknown pair(s) {unknown}; expected among {PAIR_NAMES}"
            )
        if not self.pairs:
            raise ValueError("a verify case needs at least one pair")

    def to_dict(self) -> dict:
        return {
            "version": VERIFY_CASE_VERSION,
            "scenario": self.scenario.to_dict(),
            "pairs": list(self.pairs),
            "fuzz_seed": self.fuzz_seed,
            "case_index": self.case_index,
            "description": self.description,
        }

    @staticmethod
    def from_dict(payload: dict) -> "VerifyCase":
        version = payload.get("version")
        if version != VERIFY_CASE_VERSION:
            raise ValueError(
                f"verify-case version {version!r} not supported "
                f"(this build reads version {VERIFY_CASE_VERSION})"
            )
        try:
            return VerifyCase(
                scenario=Scenario.from_dict(payload["scenario"]),
                pairs=tuple(payload["pairs"]),
                fuzz_seed=int(payload.get("fuzz_seed", 0)),
                case_index=int(payload.get("case_index", 0)),
                description=str(payload.get("description", "")),
            )
        except KeyError as missing:
            raise ValueError(
                f"verify-case payload missing key {missing}"
            ) from None


def save_case(case: VerifyCase, path) -> Path:
    """Write ``case`` as deterministic, human-diffable JSON.

    Atomic (:mod:`repro.util.atomicio`): a shrunk failing case is the
    one artefact of a long fuzz run, so an interrupt while writing it
    must not leave unparsable JSON for ``repro verify replay``.
    """
    from repro.util.atomicio import write_atomic_text

    return write_atomic_text(
        Path(path),
        json.dumps(case.to_dict(), indent=2, sort_keys=True) + "\n",
    )


def load_case(path) -> VerifyCase:
    """Read back a case written by :func:`save_case`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{path} is not valid JSON: {error}") from None
    return VerifyCase.from_dict(payload)
