"""Seeded scenario fuzzing with shrinking.

The differential pairs and the metamorphic laws check scenarios
someone thought of.  The fuzzer composes scenarios nobody did: random
workloads (single benchmarks and the Table 3 mixes), random
configuration subsets, random job counts and seeds — all drawn from
one :class:`~repro.util.rng.DeterministicRng`, so a fuzz run is
exactly reproducible from its seed.

On the first failing case the fuzzer *shrinks* — fewer pairs, fewer
configurations, fewer jobs — re-running the differential after each
candidate reduction and keeping it only if it still fails, then
writes the minimal scenario as a replayable ``verify-case.json``
(:mod:`repro.verify.cases`).
"""

from __future__ import annotations

import dataclasses
import re
import time
from typing import Optional, Sequence, Tuple

from repro.core.policy import ADAPTIVE_POLICIES
from repro.util.rng import DeterministicRng
from repro.verify.cases import VerifyCase, load_case, save_case
from repro.verify.differential import (
    PAIR_NAMES,
    Scenario,
    run_diff,
)
from repro.verify.report import CheckResult, PairReport, VerifyReport
from repro.workloads.composer import MIX_ROLES

#: Workloads the fuzzer draws from: a cache-hungry, a moderate, and an
#: insensitive benchmark plus both heterogeneous mixes — small enough
#: to keep per-case profiling cheap, diverse enough to reach the
#: stealing, AutoDown, and EqualPart code paths.
FUZZ_WORKLOADS = ("bzip2", "hmmer", "gobmk", *sorted(MIX_ROLES))

_FUZZ_CONFIGURATIONS = (
    "All-Strict",
    "All-Strict+AutoDown",
    "Hybrid-1",
    "Hybrid-2",
    "EqualPart",
)

#: Policies a fuzz case may apply to both arms of its pairs.  ``None``
#: (no policy) stays the most likely draw; the rest cover a static
#: wrapper, both disabled variants, and both live adaptive policies.
_FUZZ_POLICIES = (
    None,
    None,
    "strict",
    "grow-shrink-off",
    "bandwidth-steal-off",
    "grow-shrink",
    "bandwidth-steal",
)

_BUDGET_PATTERN = re.compile(
    r"^\s*(\d+(?:\.\d+)?)\s*(s|sec|secs|m|min|mins|h)?\s*$"
)

_UNIT_SECONDS = {
    None: 1.0,
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "m": 60.0,
    "min": 60.0,
    "mins": 60.0,
    "h": 3600.0,
}


def parse_budget(text: str) -> float:
    """Parse a fuzz time budget: ``"60s"``, ``"2m"``, ``"45"`` (seconds)."""
    match = _BUDGET_PATTERN.match(text)
    if not match:
        raise ValueError(
            f"cannot parse budget {text!r}; expected e.g. 60s, 2m, 45"
        )
    seconds = float(match.group(1)) * _UNIT_SECONDS[match.group(2)]
    if seconds <= 0:
        raise ValueError(f"budget must be positive, got {text!r}")
    return seconds


def random_scenario(
    fuzz_seed: int, case_index: int
) -> Tuple[Scenario, Tuple[str, ...]]:
    """The ``case_index``-th scenario of fuzz run ``fuzz_seed``.

    A pure function of its arguments (each case draws from its own
    derived stream), so the shrinker and ``replay`` can re-derive any
    case without replaying the whole run.
    """
    rng = DeterministicRng(fuzz_seed, "verify-fuzz").stream(
        f"case-{case_index}"
    )
    workload = rng.choice(FUZZ_WORKLOADS)
    config_count = rng.randint(1, 3)
    configurations = tuple(
        sorted(
            rng.sample_without_replacement(
                _FUZZ_CONFIGURATIONS, config_count
            )
        )
    )
    scenario = Scenario(
        workload=workload,
        configurations=configurations,
        count=rng.randint(3, 6),
        seed=rng.randint(0, 2**16),
        jobs=2,
        instructions_per_job=1_000_000,
        profile_num_sets=16,
        profile_accesses=2_000,
        profile_warmup=500,
        record_trace=True,
    )
    pair_count = rng.randint(1, len(PAIR_NAMES))
    drawn = set(rng.sample_without_replacement(PAIR_NAMES, pair_count))
    pairs = tuple(
        pair
        for pair in PAIR_NAMES  # canonical order, random subset
        if pair in drawn
    )
    # Policy draws come last so the workload/configuration/pair streams
    # above stay stable relative to pre-policy fuzz corpora.  Active
    # adaptive policies are fair game for the backend/jobs/faults pairs:
    # decisions are deterministic functions of the trajectory, so both
    # arms must still agree byte-for-byte.
    scenario = dataclasses.replace(
        scenario,
        policy=rng.choice(_FUZZ_POLICIES),
        pair_policy=rng.choice(ADAPTIVE_POLICIES),
    )
    return scenario, pairs


def _fails(
    scenario: Scenario,
    pairs: Sequence[str],
    *,
    rel_tol: float,
    abs_tol: float,
) -> bool:
    return not run_diff(
        scenario, pairs=pairs, rel_tol=rel_tol, abs_tol=abs_tol
    ).passed


def shrink_case(
    scenario: Scenario,
    pairs: Sequence[str],
    *,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> Tuple[Scenario, Tuple[str, ...]]:
    """Greedily minimise a failing case, preserving failure.

    Three reduction passes, each kept only if the case still fails:
    isolate a single failing pair, then a single configuration, then
    the smallest failing job count.  Every candidate re-runs the
    differential, so shrinking is exact — never a guess.
    """
    pairs = tuple(pairs)
    for pair in pairs:
        if len(pairs) > 1 and _fails(
            scenario, (pair,), rel_tol=rel_tol, abs_tol=abs_tol
        ):
            pairs = (pair,)
            break
    if len(scenario.configurations) > 1:
        for name in scenario.configurations:
            candidate = Scenario.from_dict(
                {**scenario.to_dict(), "configurations": [name]}
            )
            if _fails(candidate, pairs, rel_tol=rel_tol, abs_tol=abs_tol):
                scenario = candidate
                break
    for count in range(1, scenario.count):
        candidate = Scenario.from_dict(
            {**scenario.to_dict(), "count": count}
        )
        if _fails(candidate, pairs, rel_tol=rel_tol, abs_tol=abs_tol):
            scenario = candidate
            break
    return scenario, pairs


def run_fuzz(
    fuzz_seed: int = 0,
    *,
    budget_seconds: Optional[float] = 60.0,
    max_cases: Optional[int] = None,
    out: str = "verify-case.json",
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    pairs: Optional[Sequence[str]] = None,
) -> VerifyReport:
    """Fuzz until the budget or ``max_cases`` runs out, or a case fails.

    ``pairs`` pins the differential pairs for every case (the mutation
    smoke tests use this); by default each case draws its own subset.
    On failure the case is shrunk and written to ``out``; the report's
    notes say how to replay it.
    """
    if budget_seconds is None and max_cases is None:
        raise ValueError("need a time budget or a case limit (or both)")
    report = VerifyReport(command="fuzz")
    started = time.monotonic()
    case_index = 0
    while True:
        if max_cases is not None and case_index >= max_cases:
            break
        if (
            budget_seconds is not None
            and case_index > 0  # always run at least one case
            and time.monotonic() - started >= budget_seconds
        ):
            break
        scenario, drawn_pairs = random_scenario(fuzz_seed, case_index)
        case_pairs = tuple(pairs) if pairs is not None else drawn_pairs
        diff = run_diff(
            scenario, pairs=case_pairs, rel_tol=rel_tol, abs_tol=abs_tol
        )
        case_report = PairReport(
            kind=f"case-{case_index}",
            subject=f"{scenario.describe()} via {'+'.join(case_pairs)}",
            checks=[
                CheckResult(
                    name=f"{pair_report.kind}:{check.name}",
                    passed=check.passed,
                    details=check.details,
                )
                for pair_report in diff.reports
                for check in pair_report.checks
            ],
        )
        report.reports.append(case_report)
        if not diff.passed:
            shrunk, shrunk_pairs = shrink_case(
                scenario, case_pairs, rel_tol=rel_tol, abs_tol=abs_tol
            )
            case = VerifyCase(
                scenario=shrunk,
                pairs=shrunk_pairs,
                fuzz_seed=fuzz_seed,
                case_index=case_index,
                description=(
                    f"shrunk from fuzz seed {fuzz_seed} case {case_index}"
                ),
            )
            path = save_case(case, out)
            report.notes.append(f"failing case shrunk and written to {path}")
            report.notes.append(f"replay with: repro verify replay {path}")
            break
        case_index += 1
    elapsed = time.monotonic() - started
    report.notes.append(
        f"fuzz: {len(report.reports)} case(s) in {elapsed:.1f}s "
        f"(seed {fuzz_seed})"
    )
    return report


def replay_case(
    case_or_path,
    *,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> VerifyReport:
    """Re-run a saved :class:`VerifyCase`; exit code semantics of diff.

    Accepts a case object or a path to a ``verify-case.json``.
    """
    case = (
        case_or_path
        if isinstance(case_or_path, VerifyCase)
        else load_case(case_or_path)
    )
    diff = run_diff(
        case.scenario, pairs=case.pairs, rel_tol=rel_tol, abs_tol=abs_tol
    )
    report = VerifyReport(command="replay", reports=diff.reports)
    if case.description:
        report.notes.append(f"case: {case.description}")
    return report


__all__ = [
    "FUZZ_WORKLOADS",
    "parse_budget",
    "random_scenario",
    "replay_case",
    "run_fuzz",
    "shrink_case",
]
