"""Standing verification methodology: differential, metamorphic, fuzz.

The repo deliberately maintains redundant ways to compute the same
answer — a reference and a fast cache backend, serial and ``--jobs N``
sweeps, an inert-when-zero fault layer.  Redundancy only buys trust
when agreement is *checked*, continuously and mechanically (the
argument of the simulator-validation literature in PAPERS.md).  This
package is that check, three layers deep:

- :mod:`repro.verify.differential` — paired executions of one scenario
  (backend pair, jobs pair, faults pair, policy pair) with byte-level
  or tolerance-classed comparison of every scalar observable and
  artifact stream.
- :mod:`repro.verify.laws` — metamorphic paper-level laws that need no
  oracle: miss curves never rise with more ways, the mode-downgrade
  ladder never raises a QoS job's throughput floor, partitioned caches
  are symmetric under core permutation, the fair-queue bus conserves
  bandwidth — plus the policy conformance suite (``--policy all``):
  throughput floor, capacity conservation, actuation idempotence for
  every registered adaptive policy.
- :mod:`repro.verify.fuzz` — a seeded scenario fuzzer composing random
  workloads and configurations, shrinking any failure to a minimal
  replayable ``verify-case.json`` (:mod:`repro.verify.cases`).

All of it is reachable as ``repro verify {diff,laws,fuzz,replay}``.
"""

from repro.verify.cases import VerifyCase, load_case, save_case
from repro.verify.differential import (
    PAIR_NAMES,
    Scenario,
    run_diff,
    run_pair,
)
from repro.verify.fuzz import parse_budget, replay_case, run_fuzz
from repro.verify.laws import (
    LAWS,
    POLICY_LAWS,
    run_laws,
    run_policy_laws,
)
from repro.verify.report import CheckResult, PairReport, VerifyReport

__all__ = [
    "CheckResult",
    "LAWS",
    "PAIR_NAMES",
    "POLICY_LAWS",
    "PairReport",
    "Scenario",
    "VerifyCase",
    "VerifyReport",
    "load_case",
    "parse_budget",
    "replay_case",
    "run_diff",
    "run_fuzz",
    "run_laws",
    "run_pair",
    "run_policy_laws",
    "save_case",
]
