"""Cache-space sensitivity classification (Figure 4, Section 6).

The paper classifies its fifteen benchmarks by the CPI increase
suffered when the L2 allocation shrinks from 7 ways to 1 way, and from
7 ways to 4 ways, then reads three groups off the scatter:

- Group 1 (highly sensitive): large increases on both axes.
- Group 2 (moderately sensitive): large 7→1 increase, small 7→4.
- Group 3 (insensitive): small increases on both axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.parallel import parallel_map
from repro.analysis.pool import current_shared
from repro.workloads.benchmarks import BENCHMARKS, BenchmarkProfile
from repro.workloads.profiler import MissRatioCurve, get_curve


@dataclass(frozen=True)
class SensitivityPoint:
    """One benchmark's coordinates in the Figure 4 scatter."""

    benchmark: str
    declared_group: int
    cpi_increase_7_to_1: float
    cpi_increase_7_to_4: float

    def classify(self, *, threshold: float = 0.25) -> int:
        """Assign a group from the coordinates.

        Group 1 when even the shallow cut (7→4) already costs ≥ the
        threshold in CPI; Group 3 when even the deep cut (7→1) costs
        less than it; Group 2 otherwise — hurt by deep cuts only, the
        Figure 4 shape of the moderately-sensitive cluster.
        """
        if self.cpi_increase_7_to_4 >= threshold:
            return 1
        if self.cpi_increase_7_to_1 < threshold:
            return 3
        return 2


def sensitivity_point(
    profile: BenchmarkProfile,
    *,
    curve: Optional[MissRatioCurve] = None,
    num_sets: int = 64,
    accesses: int = 40_000,
    backend: Optional[str] = None,
) -> SensitivityPoint:
    """Measure one benchmark's Figure 4 coordinates from its curve."""
    if curve is None:
        curve = get_curve(
            profile, num_sets=num_sets, accesses=accesses, backend=backend
        )
    cpi_model = profile.cpi_model()
    return SensitivityPoint(
        benchmark=profile.name,
        declared_group=profile.group,
        cpi_increase_7_to_1=cpi_model.cpi_increase_fraction(
            curve.mpi(7), curve.mpi(1)
        ),
        cpi_increase_7_to_4=cpi_model.cpi_increase_fraction(
            curve.mpi(7), curve.mpi(4)
        ),
    )


def _sensitivity_worker(name: str) -> SensitivityPoint:
    """Profile one benchmark's point (module-level for pickling)."""
    num_sets, accesses, backend = current_shared()
    return sensitivity_point(
        BENCHMARKS[name],
        num_sets=num_sets,
        accesses=accesses,
        backend=backend,
    )


def sensitivity_points(
    benchmarks: Optional[Iterable[str]] = None,
    *,
    num_sets: int = 64,
    accesses: int = 40_000,
    backend: Optional[str] = None,
    jobs: Optional[int] = 1,
) -> List[SensitivityPoint]:
    """Figure 4 coordinates for the given (default: all 15) benchmarks.

    ``jobs`` profiles benchmarks across processes; every point is a
    pure function of its (benchmark, geometry, seed) inputs, so the
    scatter is identical to a serial run.  Workers and the parent share
    the on-disk miss-curve store, so a parallel profiling pass warms
    the cache for everyone.
    """
    names = sorted(benchmarks) if benchmarks is not None else sorted(BENCHMARKS)
    return parallel_map(
        _sensitivity_worker,
        names,
        jobs=jobs,
        shared=(num_sets, accesses, backend),
    )


def classify_benchmarks(
    points: Iterable[SensitivityPoint],
    *,
    threshold: float = 0.25,
) -> Dict[str, int]:
    """Group assignment for each benchmark from measured coordinates."""
    return {
        point.benchmark: point.classify(threshold=threshold)
        for point in points
    }
