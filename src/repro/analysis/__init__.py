"""Experiment analysis layer.

- :mod:`repro.analysis.sensitivity` — the Figure 4 cache-sensitivity
  classification.
- :mod:`repro.analysis.runner` — shared experiment drivers: run one
  workload under one or all Table 2 configurations and collect the
  paper's metrics.
- :mod:`repro.analysis.report` — paper-style table rendering of the
  results.
- :mod:`repro.analysis.gantt` — ASCII Gantt rendering of execution
  traces (the Figure 7 view).
- :mod:`repro.analysis.export` — JSON serialisation of results for
  external plotting.
- :mod:`repro.analysis.sweeps` — one-line parameter sweeps (Elastic
  slack, cache capacity, offered load).
"""

from repro.analysis.export import export_result, result_to_dict, results_to_dict
from repro.analysis.gantt import render_gantt

from repro.analysis.runner import (
    run_all_configurations,
    run_configuration,
    normalised_throughputs,
)
from repro.analysis.sweeps import (
    sweep_arrival_rate,
    sweep_cache_size,
    sweep_elastic_slack,
)
from repro.analysis.sensitivity import (
    SensitivityPoint,
    classify_benchmarks,
    sensitivity_points,
)

__all__ = [
    "render_gantt",
    "export_result",
    "result_to_dict",
    "results_to_dict",
    "run_configuration",
    "run_all_configurations",
    "normalised_throughputs",
    "SensitivityPoint",
    "sensitivity_points",
    "classify_benchmarks",
    "sweep_elastic_slack",
    "sweep_cache_size",
    "sweep_arrival_rate",
]
