"""Resumable sharded sweep orchestration over the results store.

The paper's evaluation is a matrix of (workload, configuration,
machine geometry) points; this module runs such a matrix once and
makes every rerun cheap:

- a **sweep file** (versioned JSON) declares the points, either as an
  explicit list or as a cartesian ``matrix`` of axes,
- every point gets a **scenario digest** — SHA-256 over the canonical
  JSON of the point's payload (seed included), a source fingerprint of
  the simulation stack, and the artifact schema version — keying its
  :class:`~repro.sim.system.ResultArtifact` in the content-addressed
  :class:`~repro.analysis.store.ResultStore`,
- :func:`run_sweep` shards the not-yet-stored points across the
  persistent worker pool; each worker stores its artifact atomically
  the moment the point completes, so **resume after interruption is
  just rerun**: points already in the store are served from disk and
  only the missing ones execute,
- the **sweep report** is built purely from the spec and the stored
  artifacts (no timing, no hit counts), so an interrupted-then-resumed
  sweep produces a report byte-identical to an uninterrupted one,
- :func:`diff_reports` compares two sweep reports with
  :func:`repro.obs.diff.diff_snapshots` — the cross-run regression
  gate ``repro sweep diff`` and ``repro sweep run --baseline`` expose.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.parallel import parallel_map, resolve_jobs
from repro.analysis.pool import current_shared
from repro.analysis.store import ResultStore, content_digest, modules_fingerprint
from repro.obs.diff import DiffReport, diff_snapshots
from repro.obs.timeseries import HistoryWriter, history_point
from repro.util.atomicio import write_atomic_text

#: Version of the sweep *file* schema (the user-authored input).
SWEEP_FILE_VERSION = 1

#: Version of the sweep *report* schema (the orchestrator's output).
SWEEP_REPORT_VERSION = 1

#: Modules whose source determines a sweep point's artifact.  Editing
#: any of them changes every scenario digest, so stale artifacts are
#: never served for new code.  The curve-producing modules are covered
#: transitively: ``sim.system`` drives profiling through the same
#: stack the miss-curve store fingerprints.
_FINGERPRINT_MODULES = (
    "repro.cache.basic",
    "repro.cache.fastsim",
    "repro.cache.geometry",
    "repro.cache.replacement",
    "repro.core.admission",
    "repro.core.config",
    "repro.core.metrics",
    "repro.core.modes",
    "repro.core.stealing",
    "repro.sim.engine",
    "repro.sim.equalpart",
    "repro.sim.system",
    "repro.util.rng",
    "repro.workloads.benchmarks",
    "repro.workloads.composer",
    "repro.workloads.patterns",
    "repro.workloads.profiler",
)


def code_fingerprint() -> str:
    """SHA-256 over the source of every result-determining module."""
    return modules_fingerprint(_FINGERPRINT_MODULES)


# -- sweep points and specs --------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One scenario: a workload under a configuration, plus knobs.

    The optional fields override the paper's defaults — ``l2_ways``
    scales the shared L2 (128 KB/way), and the ``instructions`` /
    ``profile_*`` knobs shrink the run for smoke sweeps.  ``None``
    means "paper default", and is digest-distinct from an explicit
    value.
    """

    workload: str
    configuration: str
    count: int = 10
    seed: int = 42
    l2_ways: Optional[int] = None
    instructions_per_job: Optional[int] = None
    profile_num_sets: Optional[int] = None
    profile_accesses: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.core.config import CONFIGURATIONS
        from repro.workloads.benchmarks import BENCHMARKS

        valid_workloads = set(BENCHMARKS) | {"Mix-1", "Mix-2"}
        if self.workload not in valid_workloads:
            raise ValueError(
                f"unknown workload {self.workload!r}; expected one of "
                f"{sorted(valid_workloads)}"
            )
        if self.configuration not in CONFIGURATIONS:
            raise ValueError(
                f"unknown configuration {self.configuration!r}; expected "
                f"one of {sorted(CONFIGURATIONS)}"
            )
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.l2_ways is not None and self.l2_ways < 2:
            raise ValueError(
                f"l2_ways must be >= 2, got {self.l2_ways}"
            )

    def payload(self) -> Dict[str, object]:
        """Canonical scenario payload (every field, defaults included)."""
        return dataclasses.asdict(self)

    def label(self) -> str:
        """Stable human-readable identity, unique within a sweep.

        Doubles as the metric-series prefix in sweep diffs, so it must
        be a pure function of the payload.
        """
        parts = [self.workload, self.configuration]
        parts.append(f"count={self.count}")
        parts.append(f"seed={self.seed}")
        for field_name in (
            "l2_ways",
            "instructions_per_job",
            "profile_num_sets",
            "profile_accesses",
        ):
            value = getattr(self, field_name)
            if value is not None:
                parts.append(f"{field_name}={value}")
        return "/".join(parts)


def point_digest(point: SweepPoint) -> str:
    """The scenario digest keying ``point``'s artifact in the store."""
    from repro.sim.system import ARTIFACT_VERSION

    return content_digest(
        {
            "scenario": point.payload(),
            "code": code_fingerprint(),
            "artifact_version": ARTIFACT_VERSION,
        }
    )


@dataclass(frozen=True)
class SweepSpec:
    """A named, fully expanded list of sweep points."""

    name: str
    points: Tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        if not self.name or not all(
            ch.isalnum() or ch in "-_." for ch in self.name
        ):
            raise ValueError(
                f"sweep name must be a filesystem-safe slug, got "
                f"{self.name!r}"
            )
        if not self.points:
            raise ValueError("a sweep needs at least one point")
        labels = [point.label() for point in self.points]
        duplicates = sorted(
            {label for label in labels if labels.count(label) > 1}
        )
        if duplicates:
            raise ValueError(f"duplicate sweep point(s): {duplicates}")


_POINT_FIELDS = {
    field.name for field in dataclasses.fields(SweepPoint)
}


def _point_from_mapping(mapping: Dict[str, object]) -> SweepPoint:
    unknown = sorted(set(mapping) - _POINT_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown sweep point field(s) {unknown}; expected a subset "
            f"of {sorted(_POINT_FIELDS)}"
        )
    return SweepPoint(**mapping)  # type: ignore[arg-type]


def sweep_from_dict(payload: dict) -> SweepSpec:
    """Parse a sweep file payload into a fully expanded spec.

    Two shapes, both under ``{"version": 1, "name": ...}``:

    - ``"points"``: an explicit list of point mappings, or
    - ``"matrix"``: a mapping of point-field name to a list of values;
      the cartesian product (axes in sorted key order, values in
      listed order) becomes the point list.

    A ``"defaults"`` mapping merges under every point either way.
    """
    version = payload.get("version")
    if version != SWEEP_FILE_VERSION:
        raise ValueError(
            f"unsupported sweep file version {version!r} "
            f"(expected {SWEEP_FILE_VERSION})"
        )
    name = payload.get("name")
    if not isinstance(name, str):
        raise ValueError("sweep file needs a string 'name'")
    defaults = payload.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ValueError("'defaults' must be a mapping")

    has_points = "points" in payload
    has_matrix = "matrix" in payload
    if has_points == has_matrix:
        raise ValueError(
            "sweep file needs exactly one of 'points' or 'matrix'"
        )

    points: List[SweepPoint] = []
    if has_points:
        for entry in payload["points"]:
            if not isinstance(entry, dict):
                raise ValueError(f"point entries must be mappings: {entry!r}")
            points.append(_point_from_mapping({**defaults, **entry}))
    else:
        matrix = payload["matrix"]
        if not isinstance(matrix, dict) or not matrix:
            raise ValueError("'matrix' must be a non-empty mapping")
        for axis, values in matrix.items():
            if not isinstance(values, list) or not values:
                raise ValueError(
                    f"matrix axis {axis!r} must list at least one value"
                )
        axes = sorted(matrix)
        for combo in itertools.product(*(matrix[axis] for axis in axes)):
            entry = dict(zip(axes, combo))
            points.append(_point_from_mapping({**defaults, **entry}))
    return SweepSpec(name=name, points=tuple(points))


def load_sweep_file(path) -> SweepSpec:
    """Read and parse one sweep file."""
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
    except ValueError as error:
        raise ValueError(f"unparseable sweep file {path}: {error}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"sweep file {path} must hold a JSON object")
    return sweep_from_dict(payload)


# -- running one point -------------------------------------------------------


def run_point(point: SweepPoint):
    """Simulate one sweep point; returns its ``ResultArtifact``.

    Runs under a fresh local observer so the artifact carries the
    point's own metrics snapshot and an SLO report, independent of
    execution order and worker placement.
    """
    from repro.analysis.runner import _workload_for, run_configuration
    from repro.cache.geometry import CacheGeometry
    from repro.core.config import CONFIGURATIONS
    from repro.obs import Observer, observed
    from repro.sim.config import MachineConfig, SimulationConfig

    machine = None
    if point.l2_ways is not None:
        machine = MachineConfig(
            l2_geometry=CacheGeometry.from_sets(2048, point.l2_ways, 64)
        )
    sim_kwargs: Dict[str, object] = {"seed": point.seed}
    if point.instructions_per_job is not None:
        sim_kwargs["instructions_per_job"] = point.instructions_per_job
    if point.profile_num_sets is not None:
        sim_kwargs["profile_num_sets"] = point.profile_num_sets
    if point.profile_accesses is not None:
        sim_kwargs["profile_accesses"] = point.profile_accesses
    sim_config = SimulationConfig(**sim_kwargs)  # type: ignore[arg-type]
    workload = _workload_for(
        point.workload,
        CONFIGURATIONS[point.configuration],
        count=point.count,
        seed=point.seed,
    )
    with observed(Observer()) as observer:
        result = run_configuration(
            workload,
            machine=machine,
            sim_config=sim_config,
            record_trace=False,
        )
        metrics = observer.metrics.snapshot()
    return result.to_artifact(metrics=metrics)


def _point_worker(index: int) -> Dict[str, object]:
    """Run one sweep point into the store (module-level for pickling).

    Re-checks the store before simulating — the parent's partition can
    be stale after a crash-resume race — and stores the artifact
    *immediately* on completion.  That per-point atomic write is what
    makes a SIGKILL'd sweep resumable: every finished point survives,
    whatever happened to the process afterwards.
    """
    points, store_dir = current_shared()
    point = points[index]
    store = ResultStore(store_dir)
    digest = point_digest(point)
    if store.load_artifact(digest) is not None:
        return {"index": index, "digest": digest, "executed": False}
    artifact = run_point(point)
    store.store_artifact(digest, artifact)
    return {"index": index, "digest": digest, "executed": True}


# -- orchestration -----------------------------------------------------------


@dataclass(frozen=True)
class SweepOutcome:
    """What one :func:`run_sweep` call did."""

    spec: SweepSpec
    store_dir: Path
    report_path: Path
    report: dict
    served_from_store: int
    executed: int


def report_path_for(store: ResultStore, name: str) -> Path:
    """Where the named sweep's report lives inside the store."""
    return store.directory() / "sweeps" / f"{name}.json"


def progress_path_for(store: ResultStore, name: str) -> Path:
    """Where the named sweep's progress heartbeat stream lives."""
    return store.directory() / "sweeps" / f"{name}.progress.jsonl"


class _ProgressHeartbeat:
    """Per-chunk sweep heartbeats into a history JSONL stream.

    Wired into :func:`parallel_map`'s ``progress`` callback.  Each
    beat records cumulative done/served/pending counts, the worker
    census, an EWMA throughput (points/s), and the ETA it implies.
    Unlike the report, the stream is run-varying by design — ``t`` and
    the rates come from the host clock — which is why it lives in a
    separate ``*.progress.jsonl`` file the dashboard tails, never in
    the content-addressed artifacts.
    """

    EWMA_ALPHA = 0.3  # responsive within ~3 beats, still smooth

    def __init__(
        self,
        writer: HistoryWriter,
        sweep: str,
        *,
        total: int,
        served: int,
        workers: int,
    ) -> None:
        self._writer = writer
        self._sweep = sweep
        self._total = total
        self._served = served
        self._workers = workers
        self._started = time.monotonic()
        self._last_time = self._started
        self._last_done = 0
        self._ewma: Optional[float] = None

    def begin(self, pending: int) -> None:
        self._writer.write(
            history_point(
                0.0,
                "sweep.begin",
                series={
                    "total": self._total,
                    "served": self._served,
                    "pending": pending,
                    "workers": self._workers,
                },
                sweep=self._sweep,
            )
        )

    def __call__(self, done: int, total_pending: int) -> None:
        now = time.monotonic()
        step = done - self._last_done
        span = now - self._last_time
        if step > 0 and span > 0:
            instant = step / span
            self._ewma = (
                instant
                if self._ewma is None
                else self.EWMA_ALPHA * instant
                + (1.0 - self.EWMA_ALPHA) * self._ewma
            )
        self._last_done = done
        self._last_time = now
        remaining = total_pending - done
        series = {
            "done": self._served + done,
            "executed": done,
            "served": self._served,
            "pending": remaining,
            "total": self._total,
            "workers": self._workers,
            "throughput": round(self._ewma or 0.0, 6),
        }
        if self._ewma and remaining > 0:
            series["eta_seconds"] = round(remaining / self._ewma, 3)
        self._writer.write(
            history_point(
                max(0.0, now - self._started),
                "sweep.progress",
                series=series,
                sweep=self._sweep,
            )
        )

    def end(self, *, served: int, executed: int) -> None:
        self._writer.write(
            history_point(
                max(0.0, time.monotonic() - self._started),
                "sweep.end",
                series={
                    "done": served + executed,
                    "total": self._total,
                    "served": served,
                    "executed": executed,
                    "pending": 0,
                    "workers": self._workers,
                },
                sweep=self._sweep,
                status="complete",
            )
        )


def build_report(spec: SweepSpec, store: ResultStore) -> dict:
    """Assemble the sweep report purely from spec + stored artifacts.

    Nothing run-varying (timing, hit counts, worker layout) appears
    here — the report of a resumed sweep must be byte-identical to an
    uninterrupted run's.
    """
    points = []
    for point in spec.points:
        digest = point_digest(point)
        artifact = store.load_artifact(digest)
        if artifact is None:
            raise RuntimeError(
                f"sweep point {point.label()!r} has no stored artifact "
                f"({digest}); run the sweep to completion first"
            )
        points.append(
            {
                "label": point.label(),
                "scenario": point.payload(),
                "digest": digest,
                "fingerprint": artifact.counter_fingerprint(),
                "figures_of_merit": dict(artifact.figures_of_merit),
            }
        )
    return {
        "version": SWEEP_REPORT_VERSION,
        "sweep": spec.name,
        "points": points,
    }


def run_sweep(
    spec: SweepSpec,
    *,
    store_dir=None,
    jobs: Optional[int] = 1,
    progress_out: Union[None, bool, str, Path] = None,
) -> SweepOutcome:
    """Run every point of ``spec`` not already in the store.

    Points whose scenario digest already has a readable artifact are
    served from the store (a corrupt artifact quarantines and reruns);
    the rest are sharded across ``jobs`` workers, each landing its
    artifact atomically on completion.  Finishes by writing the sweep
    report to ``<store>/sweeps/<name>.json``.

    ``progress_out`` enables the heartbeat stream: ``True`` writes to
    ``<store>/sweeps/<name>.progress.jsonl``, a path writes there, and
    the default ``None`` writes nothing (no heartbeat cost).  The
    stream *appends* across runs — a resumed sweep's ``sweep.begin``
    records the served-from-store/pending split, so an interruption
    is visible in the history rather than erased by it.
    """
    store = ResultStore(store_dir)
    pending: List[int] = []
    served = 0
    for index, point in enumerate(spec.points):
        if store.load_artifact(point_digest(point)) is not None:
            served += 1
        else:
            pending.append(index)
    heartbeat: Optional[_ProgressHeartbeat] = None
    writer: Optional[HistoryWriter] = None
    if progress_out:
        path = (
            progress_path_for(store, spec.name)
            if progress_out is True
            else Path(progress_out)
        )
        writer = HistoryWriter(path)
        heartbeat = _ProgressHeartbeat(
            writer,
            spec.name,
            total=len(spec.points),
            served=served,
            workers=min(resolve_jobs(jobs), max(1, len(pending))),
        )
        heartbeat.begin(len(pending))
    executed = 0
    try:
        if pending:
            outcomes = parallel_map(
                _point_worker,
                pending,
                jobs=jobs,
                shared=(tuple(spec.points), str(store.directory())),
                progress=heartbeat,
            )
            for outcome in outcomes:
                if outcome["executed"]:
                    executed += 1
                else:
                    served += 1
        if heartbeat is not None:
            heartbeat.end(served=served, executed=executed)
    finally:
        if writer is not None:
            writer.close()
    report = build_report(spec, store)
    report_path = report_path_for(store, spec.name)
    write_atomic_text(
        report_path,
        json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n",
    )
    return SweepOutcome(
        spec=spec,
        store_dir=store.directory(),
        report_path=report_path,
        report=report,
        served_from_store=served,
        executed=executed,
    )


@dataclass(frozen=True)
class SweepStatus:
    """Read-only progress view of a sweep against a store."""

    spec: SweepSpec
    done: Tuple[str, ...]  # labels with a stored artifact
    missing: Tuple[str, ...]  # labels still to run


def sweep_status(spec: SweepSpec, *, store_dir=None) -> SweepStatus:
    """Which points are already in the store (existence check only)."""
    store = ResultStore(store_dir)
    done: List[str] = []
    missing: List[str] = []
    for point in spec.points:
        if store.contains(point_digest(point)):
            done.append(point.label())
        else:
            missing.append(point.label())
    return SweepStatus(
        spec=spec, done=tuple(done), missing=tuple(missing)
    )


# -- cross-run diffing -------------------------------------------------------


def report_metric_records(report: dict) -> List[dict]:
    """Flatten a sweep report into obs metrics-snapshot records.

    Each point contributes one gauge per figure of merit, named
    ``<label>.<figure>``, which lets :func:`repro.obs.diff.diff_snapshots`
    do the comparison: points present on only one side surface as
    added/removed series, moved numbers as changed ones.
    """
    records: List[dict] = []
    for point in report["points"]:
        label = point["label"]
        for key in sorted(point["figures_of_merit"]):
            records.append(
                {
                    "type": "gauge",
                    "name": f"{label}.{key}",
                    "value": float(point["figures_of_merit"][key]),
                }
            )
    return records


def diff_reports(
    baseline: dict,
    current: dict,
    *,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> DiffReport:
    """Regression-compare two sweep reports on their figures of merit."""
    return diff_snapshots(
        report_metric_records(baseline),
        report_metric_records(current),
        rel_tol=rel_tol,
        abs_tol=abs_tol,
    )


def load_report(reference, *, store_dir=None) -> dict:
    """Resolve a sweep report by path or by name within the store."""
    path = Path(reference)
    if not path.is_file():
        named = report_path_for(ResultStore(store_dir), str(reference))
        if named.is_file():
            path = named
        else:
            raise FileNotFoundError(
                f"no sweep report at {reference!r} nor a sweep named "
                f"{reference!r} in the store ({named})"
            )
    payload = json.loads(path.read_text())
    version = payload.get("version") if isinstance(payload, dict) else None
    if version != SWEEP_REPORT_VERSION:
        raise ValueError(
            f"unsupported sweep report version {version!r} in {path} "
            f"(expected {SWEEP_REPORT_VERSION})"
        )
    return payload
