"""Content-addressed on-disk store for miss-ratio curves.

Profiling one benchmark means driving ~55k synthetic accesses through a
real cache at sixteen way counts — and Fig. 4/5/9 sweeps and the LAC
admission search revisit the same (benchmark, geometry, seed) points
constantly, across processes and across runs.  This module memoises the
resulting :class:`~repro.workloads.profiler.MissRatioCurve` objects on
disk, keyed by a SHA-256 digest of everything the curve is a pure
function of:

- the full benchmark profile (name, mixture components, CPI parameters,
  write fraction — via ``dataclasses.asdict``),
- the profiling cache geometry (sets, block bytes) and way list,
- trace length (warmup + measured accesses) and the RNG seed,
- a fingerprint of the source code of every module the curve's values
  depend on, so editing the trace generators or the cache kernel
  invalidates all stored curves instead of silently serving stale ones.

The key deliberately excludes the cache backend: reference and fast
produce identical curves (pinned by the differential suite), so a curve
profiled under either is valid for both.

The storage mechanics — atomic fsync'd writes, quarantine-on-corrupt
(``<digest>.corrupt``), hit/miss/store counters — live in the shared
:class:`repro.analysis.store.ContentStore` base, which the sweep-level
results store also builds on; this module supplies only the curve
keying and the environment-variable configuration.  The store is
enabled by default; disable with :func:`set_enabled` or the
``REPRO_MISS_CACHE`` environment variable (``0``/``off`` — the CLI's
``--no-miss-cache``).  Counters are surfaced by :func:`stats` and
rendered by ``analysis/report.py``.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.analysis.store import (
    QUARANTINE_SUFFIX,
    ContentStore,
    content_digest,
    modules_fingerprint,
)

from repro.workloads.benchmarks import BenchmarkProfile
from repro.workloads.profiler import (
    MissRatioCurve,
    curve_from_dict,
    curve_to_dict,
)

__all__ = [
    "QUARANTINE_SUFFIX",
    "cache_dir",
    "set_cache_dir",
    "enabled",
    "set_enabled",
    "stats",
    "reset_stats",
    "code_fingerprint",
    "curve_key",
    "load_curve",
    "store_curve",
    "clear",
    "entry_count",
    "quarantine_count",
]

_ENV_DIR = "REPRO_MISS_CACHE_DIR"
_ENV_ENABLED = "REPRO_MISS_CACHE"

_cache_dir: Optional[Path] = None
_enabled: Optional[bool] = None  # None = follow the environment


# -- configuration -----------------------------------------------------------


def cache_dir() -> Path:
    """Directory holding the curve store (created lazily on store)."""
    if _cache_dir is not None:
        return _cache_dir
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-qos" / "miss-curves"


def set_cache_dir(path: Optional[os.PathLike]) -> None:
    """Override the store directory (``None`` restores the default).

    Mirrors into ``REPRO_MISS_CACHE_DIR`` so multiprocessing workers
    share the same store.
    """
    global _cache_dir
    _cache_dir = Path(path) if path is not None else None
    if path is None:
        os.environ.pop(_ENV_DIR, None)
    else:
        os.environ[_ENV_DIR] = str(path)


def enabled() -> bool:
    """Whether load/store are active."""
    if _enabled is not None:
        return _enabled
    return os.environ.get(_ENV_ENABLED, "1").lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def set_enabled(value: Optional[bool]) -> None:
    """Force the store on/off (``None`` restores env-var control).

    Mirrors into ``REPRO_MISS_CACHE`` so multiprocessing workers agree.
    """
    global _enabled
    _enabled = value
    if value is None:
        os.environ.pop(_ENV_ENABLED, None)
    else:
        os.environ[_ENV_ENABLED] = "1" if value else "0"


#: The shared-base store instance.  Directory and enablement are
#: callables so the env-var/setter configuration above stays live.
_STORE = ContentStore(cache_dir, enabled=enabled)


# -- statistics --------------------------------------------------------------


def stats() -> Dict[str, int]:
    """Copy of the process-wide hit/miss/store counters."""
    return _STORE.stats()


def reset_stats() -> None:
    """Zero the counters (test isolation / per-report accounting)."""
    _STORE.reset_stats()


# -- keying ------------------------------------------------------------------

#: Modules whose source determines curve values.  Editing any of them
#: changes the fingerprint and orphans previously stored entries.
_FINGERPRINT_MODULES = (
    "repro.cache.basic",
    "repro.cache.fastsim",
    "repro.cache.geometry",
    "repro.cache.replacement",
    "repro.util.rng",
    "repro.workloads.benchmarks",
    "repro.workloads.patterns",
    "repro.workloads.profiler",
)


def code_fingerprint() -> str:
    """SHA-256 over the source of every curve-determining module."""
    return modules_fingerprint(_FINGERPRINT_MODULES)


def curve_key(
    profile: BenchmarkProfile,
    *,
    num_sets: int,
    block_bytes: int,
    accesses: int,
    seed: int,
    warmup: int = 15_000,
    ways_list: Iterable[int] = tuple(range(1, 17)),
) -> str:
    """Content digest identifying one profiling configuration."""
    payload = {
        "profile": dataclasses.asdict(profile),
        "num_sets": num_sets,
        "block_bytes": block_bytes,
        "accesses": accesses,
        "warmup": warmup,
        "ways_list": list(ways_list),
        "seed": seed,
        "code": code_fingerprint(),
    }
    return content_digest(payload)


# -- load / store ------------------------------------------------------------


def _decode_curve(payload: dict) -> MissRatioCurve:
    """Schema step for :meth:`ContentStore.load`: entry dict → curve."""
    return curve_from_dict(payload["curve"])


def load_curve(
    profile: BenchmarkProfile,
    *,
    num_sets: int,
    block_bytes: int,
    accesses: int,
    seed: int,
) -> Optional[MissRatioCurve]:
    """Return the stored curve for this configuration, or ``None``.

    A corrupt entry (torn write from a crashed pre-fsync build, manual
    editing) counts as a miss and is quarantined — renamed to
    ``<digest>.corrupt`` — instead of raising or being deleted: the
    curve gets re-profiled and re-stored under the original name while
    the damaged bytes stay on disk for post-mortem inspection.
    """
    key = curve_key(
        profile,
        num_sets=num_sets,
        block_bytes=block_bytes,
        accesses=accesses,
        seed=seed,
    )
    curve = _STORE.load(key, decode=_decode_curve)
    assert curve is None or isinstance(curve, MissRatioCurve)
    return curve


def store_curve(
    curve: MissRatioCurve,
    profile: BenchmarkProfile,
    *,
    num_sets: int,
    block_bytes: int,
    accesses: int,
    seed: int,
) -> Optional[Path]:
    """Persist ``curve`` for this configuration; return its path.

    The write is atomic and durable (fsync'd temp file + rename via
    :mod:`repro.util.atomicio`) so a concurrent reader either sees the
    complete entry or none, and a crash mid-write never leaves a torn
    file at the entry's name.  Returns ``None`` when the store is
    disabled or the directory is unwritable — memoisation is an
    optimisation, never a hard dependency.
    """
    if not enabled():
        return None
    key = curve_key(
        profile,
        num_sets=num_sets,
        block_bytes=block_bytes,
        accesses=accesses,
        seed=seed,
    )
    payload = {
        "benchmark": profile.name,
        "num_sets": num_sets,
        "block_bytes": block_bytes,
        "accesses": accesses,
        "seed": seed,
        "curve": curve_to_dict(curve),
    }
    return _STORE.store(key, payload)


def clear() -> int:
    """Delete every stored entry (quarantined included); return the count."""
    return _STORE.clear()


def entry_count() -> int:
    """Number of readable entries currently on disk."""
    return _STORE.entry_count()


def quarantine_count() -> int:
    """Number of quarantined (corrupt) entries currently on disk."""
    return _STORE.quarantine_count()
