"""Content-addressed on-disk store for miss-ratio curves.

Profiling one benchmark means driving ~55k synthetic accesses through a
real cache at sixteen way counts — and Fig. 4/5/9 sweeps and the LAC
admission search revisit the same (benchmark, geometry, seed) points
constantly, across processes and across runs.  This module memoises the
resulting :class:`~repro.workloads.profiler.MissRatioCurve` objects on
disk, keyed by a SHA-256 digest of everything the curve is a pure
function of:

- the full benchmark profile (name, mixture components, CPI parameters,
  write fraction — via ``dataclasses.asdict``),
- the profiling cache geometry (sets, block bytes) and way list,
- trace length (warmup + measured accesses) and the RNG seed,
- a fingerprint of the source code of every module the curve's values
  depend on, so editing the trace generators or the cache kernel
  invalidates all stored curves instead of silently serving stale ones.

The key deliberately excludes the cache backend: reference and fast
produce identical curves (pinned by the differential suite), so a curve
profiled under either is valid for both.

Entries are atomic single-JSON files named ``<digest>.json``; writes go
through :func:`repro.util.atomicio.write_atomic_text` (fsync'd temp
file + ``os.replace``) so concurrent workers never observe partial
entries and a power cut never tears one.  An entry that is nonetheless
unreadable (manual editing, bit rot, a store written by a pre-fsync
build) is **quarantined** on read — renamed to ``<digest>.corrupt`` and
counted — rather than silently deleted, so the evidence survives for
inspection while the curve is transparently re-profiled.  The store is
enabled by default; disable with :func:`set_enabled` or the
``REPRO_MISS_CACHE`` environment variable (``0``/``off`` — the CLI's
``--no-miss-cache``).  Hit/miss/store/quarantine counters are surfaced
by :func:`stats` and rendered by ``analysis/report.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.util.atomicio import write_atomic_text

from repro.workloads.benchmarks import BenchmarkProfile
from repro.workloads.profiler import (
    MissRatioCurve,
    curve_from_dict,
    curve_to_dict,
)

_ENV_DIR = "REPRO_MISS_CACHE_DIR"
_ENV_ENABLED = "REPRO_MISS_CACHE"

_cache_dir: Optional[Path] = None
_enabled: Optional[bool] = None  # None = follow the environment
_fingerprint: Optional[str] = None

#: Process-wide counters: disk hits, disk misses, entries written,
#: corrupt entries quarantined on read.
_counters = {"hits": 0, "misses": 0, "stores": 0, "quarantined": 0}

#: Suffix given to quarantined (unreadable) entries.
QUARANTINE_SUFFIX = ".corrupt"


# -- configuration -----------------------------------------------------------


def cache_dir() -> Path:
    """Directory holding the curve store (created lazily on store)."""
    if _cache_dir is not None:
        return _cache_dir
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-qos" / "miss-curves"


def set_cache_dir(path: Optional[os.PathLike]) -> None:
    """Override the store directory (``None`` restores the default).

    Mirrors into ``REPRO_MISS_CACHE_DIR`` so multiprocessing workers
    share the same store.
    """
    global _cache_dir
    _cache_dir = Path(path) if path is not None else None
    if path is None:
        os.environ.pop(_ENV_DIR, None)
    else:
        os.environ[_ENV_DIR] = str(path)


def enabled() -> bool:
    """Whether load/store are active."""
    if _enabled is not None:
        return _enabled
    return os.environ.get(_ENV_ENABLED, "1").lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def set_enabled(value: Optional[bool]) -> None:
    """Force the store on/off (``None`` restores env-var control).

    Mirrors into ``REPRO_MISS_CACHE`` so multiprocessing workers agree.
    """
    global _enabled
    _enabled = value
    if value is None:
        os.environ.pop(_ENV_ENABLED, None)
    else:
        os.environ[_ENV_ENABLED] = "1" if value else "0"


# -- statistics --------------------------------------------------------------


def stats() -> Dict[str, int]:
    """Copy of the process-wide hit/miss/store counters."""
    return dict(_counters)


def reset_stats() -> None:
    """Zero the counters (test isolation / per-report accounting)."""
    for key in _counters:
        _counters[key] = 0


# -- keying ------------------------------------------------------------------

#: Modules whose source determines curve values.  Editing any of them
#: changes the fingerprint and orphans previously stored entries.
_FINGERPRINT_MODULES = (
    "repro.cache.basic",
    "repro.cache.fastsim",
    "repro.cache.geometry",
    "repro.cache.replacement",
    "repro.util.rng",
    "repro.workloads.benchmarks",
    "repro.workloads.patterns",
    "repro.workloads.profiler",
)


def code_fingerprint() -> str:
    """SHA-256 over the source of every curve-determining module."""
    global _fingerprint
    if _fingerprint is None:
        import importlib

        digest = hashlib.sha256()
        for module_name in _FINGERPRINT_MODULES:
            module = importlib.import_module(module_name)
            digest.update(module_name.encode())
            digest.update(inspect.getsource(module).encode())
        _fingerprint = digest.hexdigest()
    return _fingerprint


def curve_key(
    profile: BenchmarkProfile,
    *,
    num_sets: int,
    block_bytes: int,
    accesses: int,
    seed: int,
    warmup: int = 15_000,
    ways_list: Iterable[int] = tuple(range(1, 17)),
) -> str:
    """Content digest identifying one profiling configuration."""
    payload = {
        "profile": dataclasses.asdict(profile),
        "num_sets": num_sets,
        "block_bytes": block_bytes,
        "accesses": accesses,
        "warmup": warmup,
        "ways_list": list(ways_list),
        "seed": seed,
        "code": code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# -- load / store ------------------------------------------------------------


def load_curve(
    profile: BenchmarkProfile,
    *,
    num_sets: int,
    block_bytes: int,
    accesses: int,
    seed: int,
) -> Optional[MissRatioCurve]:
    """Return the stored curve for this configuration, or ``None``.

    A corrupt entry (torn write from a crashed pre-fsync build, manual
    editing) counts as a miss and is quarantined — renamed to
    ``<digest>.corrupt`` — instead of raising or being deleted: the
    curve gets re-profiled and re-stored under the original name while
    the damaged bytes stay on disk for post-mortem inspection.
    """
    if not enabled():
        return None
    key = curve_key(
        profile,
        num_sets=num_sets,
        block_bytes=block_bytes,
        accesses=accesses,
        seed=seed,
    )
    path = cache_dir() / f"{key}.json"
    try:
        payload = json.loads(path.read_text())
        curve = curve_from_dict(payload["curve"])
    except FileNotFoundError:
        _counters["misses"] += 1
        return None
    except (ValueError, KeyError, TypeError, OSError):
        _counters["misses"] += 1
        _quarantine(path)
        return None
    _counters["hits"] += 1
    return curve


def _quarantine(path: Path) -> Optional[Path]:
    """Move an unreadable entry aside; return its new path if moved.

    The rename is atomic, so a concurrent reader of the same corrupt
    entry either sees it (and re-quarantines onto the same name — the
    replace is idempotent) or already finds it gone and takes the plain
    miss path.
    """
    target = path.with_suffix(QUARANTINE_SUFFIX)
    try:
        os.replace(path, target)
    except OSError:
        return None
    _counters["quarantined"] += 1
    return target


def store_curve(
    curve: MissRatioCurve,
    profile: BenchmarkProfile,
    *,
    num_sets: int,
    block_bytes: int,
    accesses: int,
    seed: int,
) -> Optional[Path]:
    """Persist ``curve`` for this configuration; return its path.

    The write is atomic and durable (fsync'd temp file + rename via
    :mod:`repro.util.atomicio`) so a concurrent reader either sees the
    complete entry or none, and a crash mid-write never leaves a torn
    file at the entry's name.  Returns ``None`` when the store is
    disabled or the directory is unwritable — memoisation is an
    optimisation, never a hard dependency.
    """
    if not enabled():
        return None
    key = curve_key(
        profile,
        num_sets=num_sets,
        block_bytes=block_bytes,
        accesses=accesses,
        seed=seed,
    )
    path = cache_dir() / f"{key}.json"
    payload = {
        "benchmark": profile.name,
        "num_sets": num_sets,
        "block_bytes": block_bytes,
        "accesses": accesses,
        "seed": seed,
        "curve": curve_to_dict(curve),
    }
    try:
        write_atomic_text(path, json.dumps(payload, sort_keys=True))
    except OSError:
        return None
    _counters["stores"] += 1
    return path


def clear() -> int:
    """Delete every stored entry (quarantined included); return the count."""
    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for pattern in ("*.json", f"*{QUARANTINE_SUFFIX}"):
            for entry in directory.glob(pattern):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
    return removed


def entry_count() -> int:
    """Number of readable entries currently on disk."""
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    return sum(1 for _ in directory.glob("*.json"))


def quarantine_count() -> int:
    """Number of quarantined (corrupt) entries currently on disk."""
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    return sum(1 for _ in directory.glob(f"*{QUARANTINE_SUFFIX}"))
