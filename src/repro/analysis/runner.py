"""Shared experiment drivers.

Benches and examples all run the same shapes of experiment: one
workload under one Table 2 configuration, or a benchmark/mix under all
five configurations with normalised throughput.  These helpers
centralise the dispatch (QoS simulator vs EqualPart) and the curve
cache so every entry point measures identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.analysis.parallel import parallel_map
from repro.analysis.pool import current_shared
from repro.core.config import CONFIGURATIONS, ModeMixConfig
from repro.core.policy import make_policy
from repro.faults.model import FaultConfig
from repro.sim.config import MachineConfig, SimulationConfig
from repro.sim.equalpart import EqualPartSimulator
from repro.sim.system import QoSSystemSimulator, SystemResult
from repro.workloads.composer import (
    WorkloadSpec,
    mixed_workload,
    single_benchmark_workload,
)
from repro.workloads.profiler import MissRatioCurve


def run_configuration(
    workload: WorkloadSpec,
    *,
    machine: Optional[MachineConfig] = None,
    sim_config: Optional[SimulationConfig] = None,
    curves: Optional[Dict[str, MissRatioCurve]] = None,
    record_trace: bool = True,
    fault_config: Optional[FaultConfig] = None,
    policy: Optional[str] = None,
) -> SystemResult:
    """Run one workload under its embedded configuration.

    ``fault_config`` arms the fault-injection layer; it only makes
    sense for the QoS simulator (EqualPart has no admission control to
    degrade gracefully, so combining the two is rejected).  ``policy``
    names a registered adaptive policy (:mod:`repro.core.policy`); it
    is ignored for EqualPart, which has no QoS machinery to actuate.
    """
    if workload.configuration.equal_partition:
        if fault_config is not None:
            raise ValueError(
                "fault injection requires the QoS simulator; "
                f"configuration {workload.configuration.name!r} uses "
                "equal partitioning"
            )
        simulator: object = EqualPartSimulator(
            workload,
            machine=machine,
            sim_config=sim_config,
            curves=curves,
            record_trace=record_trace,
        )
    else:
        simulator = QoSSystemSimulator(
            workload,
            machine=machine,
            sim_config=sim_config,
            curves=curves,
            record_trace=record_trace,
            fault_config=fault_config,
            policy=make_policy(policy) if policy is not None else None,
        )
    return simulator.run()  # type: ignore[union-attr]


def _workload_for(
    benchmark_or_mix: str,
    configuration: ModeMixConfig,
    *,
    count: int,
    seed: int,
) -> WorkloadSpec:
    if benchmark_or_mix in ("Mix-1", "Mix-2"):
        return mixed_workload(
            benchmark_or_mix, configuration, count=count, seed=seed
        )
    return single_benchmark_workload(
        benchmark_or_mix, configuration, count=count, seed=seed
    )


def _configuration_worker(name: str) -> Tuple[str, SystemResult]:
    """Run one configuration point (module-level for picklability).

    The per-task payload is just the configuration name; everything
    common to the sweep (benchmark, counts, machine/sim configs, the
    curve set) ships once per pool as the shared payload.
    """
    (
        benchmark_or_mix,
        count,
        seed,
        machine,
        sim_config,
        curves,
        record_trace,
        policy,
    ) = current_shared()
    workload = _workload_for(
        benchmark_or_mix, CONFIGURATIONS[name], count=count, seed=seed
    )
    return name, run_configuration(
        workload,
        machine=machine,
        sim_config=sim_config,
        curves=curves,
        record_trace=record_trace,
        policy=policy,
    )


def run_all_configurations(
    benchmark_or_mix: str,
    *,
    configurations: Optional[Iterable[str]] = None,
    count: int = 10,
    seed: int = 42,
    machine: Optional[MachineConfig] = None,
    sim_config: Optional[SimulationConfig] = None,
    curves: Optional[Dict[str, MissRatioCurve]] = None,
    record_trace: bool = False,
    jobs: Optional[int] = 1,
    policy: Optional[str] = None,
) -> Dict[str, SystemResult]:
    """Run a benchmark (or Table 3 mix) under every Table 2 configuration.

    Deadline draws share the seed across configurations, as in the
    paper's methodology.  ``jobs`` runs the configurations across that
    many processes (:mod:`repro.analysis.parallel`); each point's seed
    is fixed by the call, so parallel results are identical to serial.
    ``policy`` ships across the pool as a registry *name* and is built
    fresh inside each worker, keeping the shared payload picklable.
    """
    names = (
        list(configurations)
        if configurations is not None
        else list(CONFIGURATIONS)
    )
    shared = (
        benchmark_or_mix,
        count,
        seed,
        machine,
        sim_config,
        curves,
        record_trace,
        policy,
    )
    pairs = parallel_map(
        _configuration_worker, names, jobs=jobs, shared=shared
    )
    return dict(pairs)


def normalised_throughputs(
    results: Dict[str, SystemResult],
    *,
    baseline: str = "All-Strict",
) -> Dict[str, float]:
    """Throughput of each configuration relative to ``baseline``.

    The Figure 5(b)/9(b) y-axis: >1 means the configuration completes
    the same ten jobs faster than All-Strict.
    """
    if baseline not in results:
        raise ValueError(
            f"baseline {baseline!r} missing from results "
            f"({sorted(results)})"
        )
    reference = results[baseline].throughput
    return {
        name: result.throughput.normalised_to(reference)
        for name, result in results.items()
    }
