"""Parameter-sweep utilities.

The paper's evaluation sweeps one knob at a time (the Elastic slack in
Figure 8; implicitly the workload mix in Figures 5/9).  These helpers
make such sweeps one-liners over the shared simulation stack, for the
benches and for downstream what-if studies:

- :func:`sweep_elastic_slack` — the Figure 8 axis.
- :func:`sweep_cache_size` — how the headline results shift with the
  L2 capacity (a study the paper's machine fixes at 2 MB).
- :func:`sweep_arrival_rate` — cluster acceptance vs offered load.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.parallel import parallel_map
from repro.analysis.pool import current_shared
from repro.cache.geometry import CacheGeometry
from repro.core.cluster import ClusterJobProfile, ClusterSimulator
from repro.core.config import ModeMixConfig
from repro.core.modes import ModeKind
from repro.analysis.runner import run_configuration
from repro.sim.config import MachineConfig, SimulationConfig
from repro.workloads.composer import single_benchmark_workload
from repro.workloads.profiler import MissRatioCurve


@dataclass(frozen=True)
class SlackPoint:
    """One Figure 8 sample."""

    slack: float
    elastic_mean_wall_clock: float
    opportunistic_mean_wall_clock: float
    steal_transfers: int
    deadline_hit_rate: float


def _mean_or_nan(values: Sequence[float]) -> float:
    """Mean, or NaN for an empty class.

    A mode mix can deterministically round to zero Elastic or
    Opportunistic jobs (small counts, skewed fractions); that is a
    legitimate sweep point, not a crash.  NaN propagates cleanly to
    JSON-free renderers (the Figure 8 table shows "-") and poisons any
    arithmetic that would silently misuse it.
    """
    return statistics.mean(values) if values else float("nan")


def _slack_worker(slack: float) -> SlackPoint:
    """Simulate one Figure 8 slack point (module-level for pickling)."""
    benchmark, curves, sim_config, count = current_shared()
    config = ModeMixConfig(
        name=f"Hybrid-2(X={slack:.0%})",
        strict_fraction=0.4,
        elastic_fraction=0.3,
        opportunistic_fraction=0.3,
        elastic_slack=slack,
    )
    workload = single_benchmark_workload(benchmark, config, count=count)
    result = run_configuration(
        workload,
        sim_config=sim_config,
        curves=curves,
        record_trace=False,
    )
    elastic = [
        j.wall_clock_time
        for j in result.jobs
        if j.requested_mode.kind is ModeKind.ELASTIC
    ]
    opportunistic = [
        j.wall_clock_time
        for j in result.jobs
        if j.requested_mode.kind is ModeKind.OPPORTUNISTIC
    ]
    return SlackPoint(
        slack=slack,
        elastic_mean_wall_clock=_mean_or_nan(elastic),
        opportunistic_mean_wall_clock=_mean_or_nan(opportunistic),
        steal_transfers=result.steal_transfers,
        deadline_hit_rate=result.deadline_report.hit_rate,
    )


def sweep_elastic_slack(
    benchmark: str,
    slacks: Sequence[float],
    *,
    curves: Optional[Dict[str, MissRatioCurve]] = None,
    sim_config: Optional[SimulationConfig] = None,
    count: int = 10,
    jobs: Optional[int] = 1,
) -> List[SlackPoint]:
    """Run Hybrid-2 with each slack X; collect the Figure 8 series.

    ``count`` sizes the workload; small counts can round a mode class
    to zero jobs, in which case that class's mean wall clock is NaN.
    ``jobs`` distributes the slack points across processes; every
    point's inputs are fixed by the call, so the series is identical
    to a serial run.
    """
    return parallel_map(
        _slack_worker,
        list(slacks),
        jobs=jobs,
        shared=(benchmark, curves, sim_config, count),
    )


@dataclass(frozen=True)
class CacheSizePoint:
    """One cache-capacity sample."""

    l2_ways: int
    l2_bytes: int
    makespan_cycles: float
    deadline_hit_rate: float


def _cache_size_worker(ways: int) -> CacheSizePoint:
    """Simulate one cache-capacity point (module-level for pickling)."""
    (
        benchmark,
        configuration,
        curves,
        sim_config,
        requested_fraction,
    ) = current_shared()
    machine = MachineConfig(
        l2_geometry=CacheGeometry.from_sets(2048, ways, 64)
    )
    requested = max(1, round(ways * requested_fraction))
    workload = single_benchmark_workload(
        benchmark, configuration, requested_ways=requested
    )
    result = run_configuration(
        workload,
        machine=machine,
        sim_config=sim_config,
        curves=curves,
        record_trace=False,
    )
    return CacheSizePoint(
        l2_ways=ways,
        l2_bytes=machine.l2_geometry.size_bytes,
        makespan_cycles=result.makespan_cycles,
        deadline_hit_rate=result.deadline_report.hit_rate,
    )


def sweep_cache_size(
    benchmark: str,
    way_counts: Sequence[int],
    *,
    configuration: Optional[ModeMixConfig] = None,
    curves: Optional[Dict[str, MissRatioCurve]] = None,
    sim_config: Optional[SimulationConfig] = None,
    requested_fraction: float = 7 / 16,
    jobs: Optional[int] = 1,
) -> List[CacheSizePoint]:
    """Scale the L2 (way count at 128 KB/way) and rerun the workload.

    Jobs keep requesting the same *fraction* of the cache the paper's
    jobs do (7/16), so the admission pattern (two-at-a-time) is
    preserved while per-job capacity grows or shrinks.  ``jobs``
    distributes the capacity points across processes.
    """
    from repro.core.config import ALL_STRICT

    configuration = configuration if configuration is not None else ALL_STRICT
    for ways in way_counts:
        if ways < 2:
            raise ValueError(f"need at least 2 ways, got {ways}")
    return parallel_map(
        _cache_size_worker,
        list(way_counts),
        jobs=jobs,
        shared=(
            benchmark,
            configuration,
            curves,
            sim_config,
            requested_fraction,
        ),
    )


@dataclass(frozen=True)
class LoadPoint:
    """One offered-load sample."""

    mean_interarrival: float
    acceptance_rate: float
    mean_load: float


def _arrival_rate_worker(interarrival: float) -> LoadPoint:
    """Simulate one offered-load point (module-level for pickling)."""
    profiles, num_nodes, horizon, seed = current_shared()
    report = ClusterSimulator(
        num_nodes=num_nodes,
        profiles=list(profiles),
        mean_interarrival=interarrival,
        seed=seed,
    ).run(horizon=horizon)
    return LoadPoint(
        mean_interarrival=interarrival,
        acceptance_rate=report.acceptance_rate,
        mean_load=report.mean_load,
    )


def sweep_arrival_rate(
    profiles: Sequence[ClusterJobProfile],
    interarrivals: Sequence[float],
    *,
    num_nodes: int = 4,
    horizon: float = 40.0,
    seed: int = 42,
    jobs: Optional[int] = 1,
) -> List[LoadPoint]:
    """Cluster acceptance as the offered load grows.

    Every point reuses the same ``seed`` (matching the serial
    behaviour), so acceptance differences across points reflect only
    the offered load; ``jobs`` distributes points across processes.
    """
    return parallel_map(
        _arrival_rate_worker,
        list(interarrivals),
        jobs=jobs,
        shared=(tuple(profiles), num_nodes, horizon, seed),
    )
