"""Paper-style result rendering.

Turns :class:`~repro.sim.system.SystemResult` collections into the text
tables the benchmark harness prints — one per reproduced figure/table.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.analysis.runner import normalised_throughputs
from repro.analysis.sensitivity import SensitivityPoint
from repro.sim.system import SystemResult
from repro.util.tables import format_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.sweeps import SlackPoint


def deadline_table(results: Dict[str, SystemResult], *, title: str) -> str:
    """Figure 5(a)/9(a): deadline hit rate per configuration."""
    rows = [
        [name, result.deadline_report.considered, result.deadline_report.hit_rate]
        for name, result in results.items()
    ]
    return format_table(
        ["configuration", "jobs with deadlines", "deadline hit rate"],
        rows,
        title=title,
    )


def throughput_table(
    results: Dict[str, SystemResult],
    *,
    title: str,
    baseline: str = "All-Strict",
) -> str:
    """Figure 5(b)/9(b): normalised throughput per configuration."""
    normalised = normalised_throughputs(results, baseline=baseline)
    rows = [
        [
            name,
            result.makespan_cycles / 1e6,
            normalised[name],
        ]
        for name, result in results.items()
    ]
    return format_table(
        ["configuration", "makespan (Mcycles)", f"throughput vs {baseline}"],
        rows,
        title=title,
    )


def wall_clock_table(result: SystemResult, *, title: str) -> str:
    """Figure 6: per-mode average and min/max wall-clock candles."""
    rows = []
    for mode_key in result.wall_clock.modes():
        stats = result.wall_clock.stats_for(mode_key)
        rows.append(
            [
                mode_key,
                stats.count,
                stats.mean * 1e3,
                stats.minimum * 1e3,
                stats.maximum * 1e3,
            ]
        )
    return format_table(
        ["mode", "jobs", "avg wall-clock (ms)", "min (ms)", "max (ms)"],
        rows,
        title=title,
    )


def trace_table(result: SystemResult, *, title: str) -> str:
    """Figure 7: per-job execution spans, deadlines, and downgrades.

    The ``fault downgrades`` column counts the rungs a job was pushed
    down the recovery ladder by fault injection (distinct from the
    voluntary AutoDown of Section 3.4, shown in the mode column).
    """
    resilience = result.resilience
    rows = []
    for job in result.jobs:
        span = result.trace.job_span(job.job_id)
        start, end = (span if span else (None, None))
        fault_downgrades = (
            len(resilience.downgrades_for(job.job_id))
            if resilience is not None
            else 0
        )
        rows.append(
            [
                job.job_id,
                job.requested_mode.describe()
                + ("+AutoDown" if job.auto_downgraded else ""),
                None if start is None else start * 1e3,
                None if end is None else end * 1e3,
                None if job.deadline is None else job.deadline * 1e3,
                None
                if job.switch_back_time is None
                else job.switch_back_time * 1e3,
                fault_downgrades,
                "yes" if job.met_deadline else "no",
            ]
        )
    return format_table(
        [
            "job",
            "mode",
            "start (ms)",
            "end (ms)",
            "deadline (ms)",
            "switch-back (ms)",
            "fault downgrades",
            "met deadline",
        ],
        rows,
        title=title,
    )


def slo_table(result: SystemResult, *, title: str) -> str:
    """In-run SLO monitoring outcome: who violated, for how long.

    Complements the after-the-fact deadline report: a job can meet its
    deadline yet have spent most of the run projected to miss it (a
    near-miss the ``violation fraction`` column exposes), and vice
    versa a doomed job is flagged long before it fails.
    """
    if result.slo is None:
        raise ValueError(
            "result has no SLO report; run with observability enabled"
        )
    rows = []
    for job in result.slo.jobs:
        rows.append(
            [
                job.job_id,
                job.deadline * 1e3,
                job.violations,
                job.violation_fraction,
                None
                if job.last_projected is None
                or not job.last_projected < float("inf")
                else job.last_projected * 1e3,
                "-"
                if job.met_deadline is None
                else ("yes" if job.met_deadline else "no"),
            ]
        )
    return format_table(
        [
            "job",
            "deadline (ms)",
            "violations",
            "violation fraction",
            "last projected (ms)",
            "met deadline",
        ],
        rows,
        title=title,
    )


def resilience_table(result: SystemResult, *, title: str) -> str:
    """Fault-injection outcome summary for one simulation.

    Raises if the run had no fault config at all; an all-zero config
    renders a table of zeros, which is itself evidence the fault layer
    stayed inert.
    """
    resilience = result.resilience
    if resilience is None:
        raise ValueError(
            "result has no resilience report; run with a FaultConfig"
        )
    rows = [
        ["faults injected", resilience.faults_injected],
        ["jobs displaced by core faults", resilience.displacements],
        ["successful re-admissions", resilience.readmissions],
        ["re-admission attempts", resilience.readmission_attempts],
        ["mode downgrades (ladder rungs)", resilience.downgrade_count],
        ["jobs degraded to best-effort", resilience.best_effort_jobs],
        ["dispatches deferred by failures", resilience.deferred_dispatches],
        ["stealing cancelled by ECC", resilience.ecc_cancellations],
        ["invariant checks passed", resilience.invariant_checks],
    ]
    for kind in sorted(resilience.fault_counts):
        rows.append([f"  of which {kind}", resilience.fault_counts[kind]])
    return format_table(["event", "count"], rows, title=title)


def downgrade_ladder_lines(result: SystemResult) -> List[str]:
    """One line per fault-recovery downgrade, in time order."""
    if result.resilience is None:
        return []
    return [
        f"t={record.time * 1e3:9.3f} ms  job {record.job_id}: "
        f"{record.from_mode} -> {record.to_mode}  ({record.reason})"
        for record in result.resilience.downgrades
    ]


def sensitivity_table(
    points: Sequence[SensitivityPoint], *, title: str
) -> str:
    """Figure 4: the sensitivity scatter as a table."""
    rows = [
        [
            point.benchmark,
            point.declared_group,
            point.classify(),
            point.cpi_increase_7_to_1,
            point.cpi_increase_7_to_4,
        ]
        for point in points
    ]
    return format_table(
        [
            "benchmark",
            "declared group",
            "measured group",
            "CPI incr 7→1",
            "CPI incr 7→4",
        ],
        rows,
        title=title,
    )


def slack_table(points: Sequence["SlackPoint"], *, title: str) -> str:
    """Figure 8: the Elastic-slack sweep as a table.

    A mode class that rounded to zero jobs has a NaN mean wall clock;
    it renders as "-" rather than propagating a bogus number into the
    row.
    """

    def cell(value: float) -> object:
        return None if math.isnan(value) else value

    rows = [
        [
            f"{point.slack:.0%}",
            cell(point.elastic_mean_wall_clock),
            cell(point.opportunistic_mean_wall_clock),
            point.steal_transfers,
            point.deadline_hit_rate,
        ]
        for point in points
    ]
    return format_table(
        [
            "slack X",
            "elastic wall clock",
            "opportunistic wall clock",
            "steals",
            "deadline hit",
        ],
        rows,
        title=title,
    )


def shape_checks(results: Dict[str, SystemResult]) -> Dict[str, bool]:
    """Figure-5 curve *shape* invariants as named booleans.

    The qualitative claims of the paper's Figure 5 that must survive
    any seed or instruction-count choice, as opposed to the exact
    floats the golden tests pin for one seed: reserved configurations
    (everything but EqualPart) meet every deadline, no QoS
    optimisation throughputs *below* the All-Strict baseline, and
    Hybrid-2 (which layers stealing on top of Hybrid-1's mode mix)
    stays within a few percent of Hybrid-1 — stealing redistributes
    work between donors and thieves, so it can land a hair either side
    of Hybrid-1, but never far away.  Shared by the metamorphic law suite
    and the golden seed-sweep smoke so both enforce the same shapes.
    Checks whose configurations are absent from ``results`` are
    reported as ``True`` (vacuous).
    """
    tolerance = 1e-9
    checks: Dict[str, bool] = {}
    checks["makespans_positive"] = all(
        result.makespan_cycles > 0 for result in results.values()
    )
    checks["reserved_hit_rate_one"] = all(
        result.deadline_report.hit_rate == 1.0
        for name, result in results.items()
        if name != "EqualPart" and result.deadline_report.considered > 0
    )
    if "All-Strict" in results:
        normalised = normalised_throughputs(results)
        checks["optimisations_at_least_all_strict"] = all(
            value >= 1.0 - tolerance for value in normalised.values()
        )
        if "Hybrid-1" in normalised and "Hybrid-2" in normalised:
            checks["hybrid2_close_to_hybrid1"] = (
                abs(normalised["Hybrid-2"] - normalised["Hybrid-1"])
                <= 0.05 * normalised["Hybrid-1"]
            )
    return checks


def miss_cache_lines() -> List[str]:
    """Miss-curve store accounting for bench logs and CLI footers.

    Reports this process's hit/miss/store counters against the
    on-disk store (:mod:`repro.analysis.misscache`).  Empty when the
    store is disabled and was never consulted — callers can append the
    lines unconditionally.
    """
    from repro.analysis import misscache

    counters = misscache.stats()
    consulted = counters["hits"] + counters["misses"]
    if consulted == 0:
        return []
    hit_rate = counters["hits"] / consulted
    line = (
        f"miss-curve cache: {counters['hits']}/{consulted} curve lookups "
        f"served from disk ({hit_rate:.0%}), {counters['stores']} stored, "
        f"{misscache.entry_count()} entries on disk"
    )
    if counters.get("quarantined"):
        line += f", {counters['quarantined']} corrupt entries quarantined"
    return [line]


def observability_lines() -> List[str]:
    """Metrics/events footer for CLI runs with observability enabled.

    Empty when the installed observer is the null observer (the
    default), so callers can append the lines unconditionally — same
    contract as :func:`miss_cache_lines`.
    """
    from repro.obs import get_observer

    observer = get_observer()
    if not observer.enabled:
        return []
    series, counted = observer.metrics.totals()
    lines = [
        f"observability: {series} metric series "
        f"({counted:g} counter increments), "
        f"{len(observer.events.records)} events recorded",
    ]
    lines.extend(f"  {line}" for line in observer.profiler.lines())
    return lines


def summary_lines(results: Dict[str, SystemResult]) -> List[str]:
    """Compact per-configuration one-liners for bench logs."""
    normalised = normalised_throughputs(results) if "All-Strict" in results else {}
    lines = []
    for name, result in results.items():
        extra = (
            f", throughput x{normalised[name]:.2f}" if name in normalised else ""
        )
        lines.append(
            f"{name}: hit-rate {result.deadline_report.hit_rate:.0%}, "
            f"makespan {result.makespan_cycles / 1e6:.0f} Mcycles"
            f"{extra}, steals {result.steal_transfers}"
        )
    return lines
