"""JSON export of simulation results.

Benches print paper-style text tables; downstream users plotting with
their own tooling need machine-readable results.  This module
serialises :class:`~repro.sim.system.SystemResult` (and collections of
them) into plain dictionaries / JSON files with every quantity the
paper's figures are built from: per-job timings, modes, deadlines,
per-mode wall-clock statistics, the throughput and deadline reports,
and the execution trace segments.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.sim.system import SystemResult


def job_to_dict(job) -> Dict:
    """Serialise one job's lifecycle."""
    return {
        "job_id": job.job_id,
        "benchmark": job.benchmark,
        "requested_mode": job.requested_mode.describe(),
        "auto_downgraded": job.auto_downgraded,
        "arrival_time": job.arrival_time,
        "start_time": job.start_time,
        "completion_time": job.completion_time,
        "terminated_time": job.terminated_time,
        "state": job.state.value,
        "deadline": job.deadline,
        "max_wall_clock": job.max_wall_clock,
        "wall_clock_time": job.wall_clock_time,
        "met_deadline": job.met_deadline,
        "switch_back_time": job.switch_back_time,
        "requested_ways": job.target.resources.cache_ways,
        "requested_cores": job.target.resources.cores,
        "mode_history": [
            {"time": time, "mode": mode.describe()}
            for time, mode in job.mode_history
        ],
    }


def result_to_dict(result: SystemResult, *, include_trace: bool = True) -> Dict:
    """Serialise one simulation result."""
    payload = {
        "workload": result.workload_name,
        "configuration": result.configuration_name,
        "makespan_seconds": result.makespan_seconds,
        "makespan_cycles": result.makespan_cycles,
        "deadline_report": {
            "considered": result.deadline_report.considered,
            "met": result.deadline_report.met,
            "hit_rate": result.deadline_report.hit_rate,
        },
        "throughput": {
            "jobs_measured": result.throughput.jobs_measured,
            "makespan": result.throughput.makespan,
        },
        "probes": result.probes,
        "rejections": result.rejections,
        "backfills": result.backfills,
        "terminations": result.terminations,
        "steal_transfers": result.steal_transfers,
        "steal_cancellations": result.steal_cancellations,
        "lac": {
            "admission_tests": result.lac_admission_tests,
            "candidate_windows": result.lac_candidate_windows,
        },
        "jobs": [job_to_dict(job) for job in result.jobs],
        "wall_clock_by_mode": {
            mode_key: {
                "count": stats.count,
                "mean": stats.mean,
                "min": stats.minimum,
                "max": stats.maximum,
            }
            for mode_key, stats in result.wall_clock.per_mode.items()
            if stats.count > 0
        },
    }
    if include_trace:
        payload["trace"] = [
            {
                "job_id": segment.job_id,
                "start": segment.start,
                "end": segment.end,
                "mode": segment.mode.describe(),
                "ways": segment.ways,
                "core_id": segment.core_id,
                "cpu_share": segment.cpu_share,
            }
            for segment in result.trace.segments
        ]
    return payload


def results_to_dict(
    results: Dict[str, SystemResult], *, include_trace: bool = False
) -> Dict:
    """Serialise a configuration sweep (e.g. Figure 5's five runs)."""
    return {
        name: result_to_dict(result, include_trace=include_trace)
        for name, result in results.items()
    }


def write_json(
    payload: Dict, path: Union[str, Path], *, indent: int = 2
) -> Path:
    """Write a serialised payload to ``path`` atomically; returns the path."""
    from repro.util.atomicio import write_atomic_text

    return write_atomic_text(
        Path(path), json.dumps(payload, indent=indent, sort_keys=True)
    )


def export_result(
    result: SystemResult,
    path: Union[str, Path],
    *,
    include_trace: bool = True,
) -> Path:
    """One-call export of a single result to a JSON file."""
    return write_json(
        result_to_dict(result, include_trace=include_trace), path
    )
