"""Content-addressed on-disk stores: the shared base and the results store.

Two kinds of artifact are memoised on disk by this package, both under
the same contract:

- miss-ratio curves (:mod:`repro.analysis.misscache`), keyed by the
  full profiling configuration, and
- whole-simulation result artifacts (:class:`ResultStore`, driving the
  ``repro sweep`` orchestrator), keyed by a scenario digest.

:class:`ContentStore` is that contract, factored out of the original
miss-curve implementation so both stores share one code path:

- entries are atomic single-JSON files named ``<digest>.json``; writes
  go through :func:`repro.util.atomicio.write_atomic_text` (fsync'd
  temp file + ``os.replace``) so concurrent workers never observe a
  partial entry and a crash mid-write never tears one,
- an unreadable entry (bit rot, manual editing, a torn write from a
  pre-fsync build) is **quarantined** on read — renamed to
  ``<digest>.corrupt`` and counted — rather than deleted, so the
  evidence survives for inspection while the artifact is transparently
  recomputed,
- per-store hit/miss/store/quarantine counters are surfaced by
  :meth:`ContentStore.stats`,
- the store is an optimisation, never a hard dependency: a disabled or
  unwritable store degrades to recomputation.

Keys are SHA-256 digests of canonical JSON (:func:`content_digest`);
including a source fingerprint of the producing modules
(:func:`modules_fingerprint`) in the keyed payload invalidates stored
artifacts when the code that computes them changes, instead of
silently serving stale ones.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Union

from repro.util.atomicio import write_atomic_text

#: Suffix given to quarantined (unreadable) entries.
QUARANTINE_SUFFIX = ".corrupt"

#: Exceptions that mark an on-disk entry as corrupt rather than absent.
#: ``FileNotFoundError`` (a subclass of ``OSError``) is handled first
#: by :meth:`ContentStore.load` and counts as a plain miss.
_CORRUPT_ERRORS = (ValueError, KeyError, TypeError, OSError)


def canonical_json(payload: object) -> str:
    """Canonical JSON: sorted keys, no whitespace — digest-stable."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(payload: object) -> str:
    """SHA-256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


_fingerprints: Dict[Sequence[str], str] = {}


def modules_fingerprint(module_names: Sequence[str]) -> str:
    """SHA-256 over the source of every named module (memoised).

    Keying stored artifacts on this fingerprint makes editing any
    producing module orphan previously stored entries instead of
    serving values the current code would no longer compute.
    """
    names = tuple(module_names)
    cached = _fingerprints.get(names)
    if cached is None:
        digest = hashlib.sha256()
        for module_name in names:
            module = importlib.import_module(module_name)
            digest.update(module_name.encode())
            digest.update(inspect.getsource(module).encode())
        cached = digest.hexdigest()
        _fingerprints[names] = cached
    return cached


class ContentStore:
    """Atomic, quarantining, counted store of ``<digest>.json`` entries.

    ``directory`` and ``enabled`` may be plain values or zero-argument
    callables; callables are re-evaluated on every access, which lets
    :mod:`repro.analysis.misscache` keep its environment-variable-
    driven configuration while delegating all mechanics here.
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike, Callable[[], Path]],
        *,
        enabled: Union[bool, Callable[[], bool]] = True,
    ) -> None:
        self._directory = directory
        self._enabled = enabled
        self._counters = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "quarantined": 0,
        }

    # -- configuration -------------------------------------------------

    def directory(self) -> Path:
        """Directory holding the entries (created lazily on store)."""
        if callable(self._directory):
            return self._directory()
        return Path(self._directory)

    def enabled(self) -> bool:
        """Whether load/store are active."""
        if callable(self._enabled):
            return self._enabled()
        return bool(self._enabled)

    # -- statistics ----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Copy of this store's hit/miss/store/quarantine counters."""
        return dict(self._counters)

    def reset_stats(self) -> None:
        """Zero the counters (test isolation / per-report accounting)."""
        for key in self._counters:
            self._counters[key] = 0

    # -- load / store --------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not present)."""
        return self.directory() / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Whether an entry exists on disk; no counters, no quarantine.

        A read-only probe for status displays — corruption is only
        discovered (and quarantined) by :meth:`load`.
        """
        return self.path_for(key).is_file()

    def load(
        self,
        key: str,
        *,
        decode: Optional[Callable[[dict], object]] = None,
    ) -> Optional[object]:
        """Return the stored payload for ``key``, or ``None``.

        ``decode`` post-processes the parsed JSON; any schema error it
        raises (``ValueError``/``KeyError``/``TypeError``) marks the
        entry corrupt exactly like unparseable JSON does.  A corrupt
        entry counts as a miss and is quarantined — renamed to
        ``<digest>.corrupt`` — instead of raising or being deleted:
        the artifact gets recomputed and re-stored under the original
        name while the damaged bytes stay on disk for post-mortem
        inspection.
        """
        if not self.enabled():
            return None
        path = self.path_for(key)
        try:
            payload: object = json.loads(path.read_text())
            if decode is not None:
                payload = decode(payload)  # type: ignore[arg-type]
        except FileNotFoundError:
            self._counters["misses"] += 1
            return None
        except _CORRUPT_ERRORS:
            self._counters["misses"] += 1
            self.quarantine(path)
            return None
        self._counters["hits"] += 1
        return payload

    def quarantine(self, path: Path) -> Optional[Path]:
        """Move an unreadable entry aside; return its new path if moved.

        The rename is atomic, so a concurrent reader of the same
        corrupt entry either sees it (and re-quarantines onto the same
        name — the replace is idempotent) or already finds it gone and
        takes the plain miss path.
        """
        target = path.with_suffix(QUARANTINE_SUFFIX)
        try:
            os.replace(path, target)
        except OSError:
            return None
        self._counters["quarantined"] += 1
        return target

    def store(self, key: str, payload: dict) -> Optional[Path]:
        """Persist ``payload`` under ``key``; return the entry's path.

        The write is atomic and durable (fsync'd temp file + rename
        via :mod:`repro.util.atomicio`) so a concurrent reader either
        sees the complete entry or none.  Returns ``None`` when the
        store is disabled or the directory is unwritable.
        """
        if not self.enabled():
            return None
        path = self.path_for(key)
        try:
            write_atomic_text(path, json.dumps(payload, sort_keys=True))
        except OSError:
            return None
        self._counters["stores"] += 1
        return path

    # -- maintenance ---------------------------------------------------

    def clear(self) -> int:
        """Delete every entry (quarantined included); return the count."""
        directory = self.directory()
        removed = 0
        if directory.is_dir():
            for pattern in ("*.json", f"*{QUARANTINE_SUFFIX}"):
                for entry in directory.glob(pattern):
                    try:
                        entry.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def entry_count(self) -> int:
        """Number of readable entries currently on disk."""
        directory = self.directory()
        if not directory.is_dir():
            return 0
        return sum(1 for _ in directory.glob("*.json"))

    def quarantine_count(self) -> int:
        """Number of quarantined (corrupt) entries currently on disk."""
        directory = self.directory()
        if not directory.is_dir():
            return 0
        return sum(1 for _ in directory.glob(f"*{QUARANTINE_SUFFIX}"))


# -- the results store -------------------------------------------------------

_ENV_RESULT_DIR = "REPRO_RESULT_STORE_DIR"


def default_result_dir() -> Path:
    """Default directory of the simulation-result store.

    ``REPRO_RESULT_STORE_DIR`` overrides it (the ``repro sweep``
    ``--store-dir`` flag mirrors into that variable so multiprocessing
    workers share the parent's store).
    """
    env = os.environ.get(_ENV_RESULT_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-qos" / "results"


class ResultStore(ContentStore):
    """Store of whole-simulation result artifacts, keyed by scenario.

    Keys are scenario digests (:func:`repro.analysis.sweep.point_digest`
    — scenario payload + code fingerprint + seed); values are
    serialised :class:`repro.sim.system.ResultArtifact` payloads.  The
    decode step validates the artifact schema, so a stored artifact
    with the wrong shape or version quarantines like corrupt JSON and
    the scenario transparently reruns.
    """

    def __init__(
        self,
        directory: Union[None, str, os.PathLike, Callable[[], Path]] = None,
    ) -> None:
        super().__init__(
            directory if directory is not None else default_result_dir
        )

    def load_artifact(self, key: str):
        """The stored :class:`~repro.sim.system.ResultArtifact`, or None."""
        from repro.sim.system import ResultArtifact

        return self.load(key, decode=ResultArtifact.from_dict)

    def store_artifact(self, key: str, artifact) -> Optional[Path]:
        """Persist one :class:`~repro.sim.system.ResultArtifact`."""
        return self.store(key, artifact.to_dict())
