"""ASCII Gantt rendering of execution traces (the Figure 7 view).

The paper's Figure 7 draws each accepted job as a horizontal bar from
start to completion, a dashed extension to its deadline, and arrows at
automatic-downgrade switch-back instants.  This module renders the
same picture in plain text from an :class:`~repro.sim.tracing.ExecutionTrace`:

::

    job  1 |SSSSSSSSSSSSSSSS....                              |
    job  2 |ooooooooOOOOOOOOOOOOSSSSSSSS..                    |
             ^ Opportunistic    ^ switched back to Strict

Legend: ``S`` Strict, ``E`` Elastic, ``o`` Opportunistic (idle share),
``O`` Opportunistic (running), ``.`` slack to the deadline, ``!`` a
missed deadline, ``|`` the chart frame.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.job import Job
from repro.core.modes import ModeKind
from repro.sim.tracing import ExecutionTrace
from repro.util.validation import check_positive

_MODE_GLYPHS = {
    ModeKind.STRICT: "S",
    ModeKind.ELASTIC: "E",
    ModeKind.OPPORTUNISTIC: "O",
}


def _glyph(mode_kind: ModeKind, cpu_share: float) -> str:
    glyph = _MODE_GLYPHS[mode_kind]
    if mode_kind is ModeKind.OPPORTUNISTIC and cpu_share <= 0.0:
        return "o"  # queued/stalled: no core available
    return glyph


def render_gantt(
    jobs: Sequence[Job],
    trace: ExecutionTrace,
    *,
    width: int = 72,
    horizon: Optional[float] = None,
) -> str:
    """Render jobs' execution segments as an ASCII Gantt chart.

    ``horizon`` fixes the time axis (defaults to the latest deadline or
    completion); each character cell covers ``horizon / width`` time.
    """
    check_positive("width", width)
    if not jobs:
        raise ValueError("no jobs to render")

    ends = []
    for job in jobs:
        if job.completion_time is not None:
            ends.append(job.completion_time)
        if job.deadline is not None:
            ends.append(job.deadline)
    if horizon is None:
        horizon = max(ends) if ends else 1.0
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    cell = horizon / width

    lines: List[str] = []
    for job in jobs:
        row = [" "] * width
        for segment in trace.segments_for(job.job_id):
            glyph = _glyph(segment.mode.kind, segment.cpu_share)
            first = int(segment.start / cell)
            last = int(min(segment.end, horizon) / cell)
            for index in range(first, min(last + 1, width)):
                row[index] = glyph
        # Dashed run-out to the deadline (or '!' when it was missed).
        if job.deadline is not None and job.completion_time is not None:
            completion_cell = int(job.completion_time / cell)
            deadline_cell = int(min(job.deadline, horizon) / cell)
            if job.completion_time <= job.deadline:
                for index in range(
                    completion_cell + 1, min(deadline_cell + 1, width)
                ):
                    if row[index] == " ":
                        row[index] = "."
            elif deadline_cell < width:
                row[deadline_cell] = "!"
        label = f"job {job.job_id:>3} "
        lines.append(f"{label}|{''.join(row)}|")

    scale = (
        f"{'':8}|{'0':<{width // 2}}{f'{horizon:.3g}':>{width // 2}}|"
    )
    legend = (
        "legend: S=Strict  E=Elastic  O=Opportunistic  "
        "o=queued  .=deadline slack  !=missed"
    )
    return "\n".join(lines + [scale, legend])
