"""Persistent worker pool with shared read-only session state.

``multiprocessing.Pool`` per call was the old shape of ``--jobs N``:
every sweep (and every retry round of the robust path) forked a fresh
pool, re-imported the world, re-pickled the full per-point payload for
every point, and shipped one observer back per point.  At sweep sizes
of a handful of points the setup cost ate the parallel win —
``BENCH_perf.json`` recorded ``parallel.speedup: 0.95``.

:class:`WorkerPool` replaces that lifecycle:

- **Fork once per sweep, reuse across maps.**  A pool object owns its
  worker processes for its whole lifetime; successive :meth:`map`
  calls reuse them.  :func:`shared_pool` keeps one process-wide pool
  per worker count and hands it to every ``parallel_map`` call whose
  session state still matches, so consecutive sweeps in one CLI run
  share workers.
- **Shared read-only state via the pool initializer.**  The resolved
  session knobs (cache backend, miss-cache enable/dir — captured as a
  :class:`SessionState`) plus one optional caller-provided ``shared``
  payload (curves, machine config, workload profiles) ship to each
  worker exactly once, at fork.  Per-task payloads shrink to small
  indices/labels; workers read the bulky rest with
  :func:`current_shared`.  The serial path installs the same payload
  in-process so worker functions are written once.
- **Adaptive chunked dispatch.**  Items are split into about
  ``worker_count × 4`` contiguous chunks (:func:`chunk_ranges`), never
  reordered, so dispatch overhead is per-chunk while load still
  balances.  Results always come back in input order.
- **Lazy observer merge.**  When the parent has a live observer, each
  worker accumulates one local :class:`~repro.obs.Observer` per
  *chunk* and ships it once per chunk; the parent folds chunk
  observers in input order (events seq-rebase across chunk
  boundaries), which reproduces the serial run's artefacts byte for
  byte exactly as the old per-point shipping did — at 1/chunk-size
  the pickle traffic.
- **Per-chunk liveness on the same pool.**  ``task_timeout`` arms the
  robust path: chunks are dispatched as individual tasks and collected
  with a timeout scaled by chunk length.  A chunk whose worker died
  (``Pool`` respawns the process) or hung is retried on the *same*
  pool — live workers pick the retry up — and finally recomputed
  serially in the parent, still folding telemetry in input order.  If
  any timeout fired, the pool re-forks its workers afterwards so a
  wedged process cannot leak into the next sweep.

Workers also expose a diagnostic surface: :meth:`WorkerPool.\
fingerprints` probes every live worker (a barrier makes each worker
answer exactly once) so ``verify diff --pair jobs`` can show the
backend/miss-cache state of the pool that *actually ran the sweep*
rather than of a throwaway lookalike.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing
import os
import threading
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.obs import Observer, get_observer, observed

T = TypeVar("T")
R = TypeVar("R")

#: How many chunks to aim for per worker; ~4 balances dispatch overhead
#: against straggler smoothing (the classic self-scheduling heuristic).
CHUNKS_PER_WORKER = 4

# -- worker-side globals (installed by the pool initializer) -----------------

_worker_shared: Any = None
_worker_barrier = None


def current_shared() -> Any:
    """The shared read-only payload of the active map (or ``None``).

    In a worker process this is the payload the pool initializer
    installed at fork; on the serial path it is whatever
    ``parallel_map(..., shared=...)`` scoped around the inline loop.
    Worker functions read their bulky common inputs (curves, configs,
    profiles) from here so per-task payloads stay small.
    """
    return _worker_shared


@contextlib.contextmanager
def installed_shared(shared: Any) -> Iterator[None]:
    """Scope ``shared`` as the in-process payload (serial path)."""
    global _worker_shared
    previous = _worker_shared
    _worker_shared = shared
    try:
        yield
    finally:
        _worker_shared = previous


def worker_fingerprint(_item: object = None) -> dict:
    """Session state a worker process actually resolved, as plain data.

    Captures the settings that must survive the trip into a
    multiprocessing worker for ``--jobs N`` to reproduce the serial
    run: the resolved cache backend and the miss-cache enable flag and
    directory.  Module-level (picklable) so it can be mapped over a
    pool; callable inline for the serial baseline.
    """
    from repro.analysis import misscache
    from repro.cache.backend import default_backend

    return {
        "pid": os.getpid(),
        "cache_backend": default_backend(),
        "miss_cache_enabled": misscache.enabled(),
        "miss_cache_dir": str(misscache.cache_dir()),
    }


@dataclass(frozen=True)
class SessionState:
    """The resolved session knobs a worker must replicate.

    Captured in the parent at pool-fork time and installed by the pool
    initializer, so workers agree with the parent under *any* start
    method — the environment-variable mirroring still covers direct
    ``multiprocessing`` users, but the pool no longer depends on it.
    Also the persistence key: :func:`shared_pool` re-forks when the
    captured state stops matching a cached pool's.
    """

    cache_backend: str
    miss_cache_enabled: bool
    miss_cache_dir: str

    @staticmethod
    def capture() -> "SessionState":
        from repro.analysis import misscache
        from repro.cache.backend import default_backend

        return SessionState(
            cache_backend=default_backend(),
            miss_cache_enabled=misscache.enabled(),
            miss_cache_dir=str(misscache.cache_dir()),
        )

    def install(self) -> None:
        from repro.analysis import misscache
        from repro.cache.backend import set_default_backend

        set_default_backend(self.cache_backend)
        misscache.set_enabled(self.miss_cache_enabled)
        misscache.set_cache_dir(self.miss_cache_dir)


def _pool_initializer(state: SessionState, shared: Any, barrier) -> None:
    """Runs once in each worker at fork: install the session world."""
    global _worker_shared, _worker_barrier
    from repro.obs import reset_observer

    # A pool forked mid-observation would inherit the parent's live
    # observer; chunk tasks scope their own, but anything a worker
    # records *outside* a chunk must go nowhere.
    reset_observer()
    state.install()
    _worker_shared = shared
    _worker_barrier = barrier


def _barrier_probe(_slot: int) -> dict:
    """Fingerprint one worker, holding it until every worker answered.

    The barrier forces the pool's tasks onto distinct workers (a fast
    worker cannot grab two probes), so ``worker_count`` probes return
    ``worker_count`` distinct pids.  A dead or wedged worker breaks
    the barrier after the wait timeout; survivors still report.
    """
    if _worker_barrier is not None:
        try:
            _worker_barrier.wait(timeout=5.0)
        except threading.BrokenBarrierError:
            pass
    return worker_fingerprint()


def chunk_ranges(
    total: int,
    worker_count: int,
    *,
    chunks_per_worker: int = CHUNKS_PER_WORKER,
) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunks covering ``range(total)``.

    Aims for ``worker_count × chunks_per_worker`` chunks (never more
    than ``total``), sized within one item of each other, in input
    order — the shape that keeps dispatch overhead per-chunk while the
    ~4× oversubscription absorbs stragglers.
    """
    if total <= 0:
        return []
    if worker_count < 1:
        raise ValueError(f"worker_count must be >= 1, got {worker_count}")
    chunk_count = min(total, max(1, worker_count * chunks_per_worker))
    base, extra = divmod(total, chunk_count)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(chunk_count):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class _ChunkTask:
    """Picklable wrapper running one chunk under one local observer.

    The lazy-merge half of the telemetry contract: one
    :class:`Observer` (with summary-sample retention, so the parent
    can merge by exact replay) per *chunk*, not per point.  Within the
    chunk, points run in input order, so the chunk observer's stream
    is exactly the serial stream's slice for that range.
    """

    __slots__ = ("func", "observe")

    def __init__(self, func: Callable[[T], R], observe: bool) -> None:
        self.func = func
        self.observe = observe

    def __call__(
        self, chunk: Sequence[T]
    ) -> Tuple[List[R], Optional[Observer]]:
        func = self.func
        if not self.observe:
            return [func(item) for item in chunk], None
        telemetry = Observer(record_samples=True)
        with observed(telemetry):
            results = [func(item) for item in chunk]
        return results, telemetry


class WorkerPool:
    """A persistent, reusable multiprocessing pool for sweep points.

    Workers are forked lazily on the first :meth:`map` and then reused
    by every later call until :meth:`shutdown` (or context-manager
    exit).  ``shared`` is an arbitrary picklable payload shipped to
    each worker exactly once via the pool initializer; worker
    functions read it back with :func:`current_shared`.

    The pool guarantees the same contract as the serial loop: results
    in input order, exceptions from the task propagate (leaving the
    pool usable), and with a live parent observer the merged telemetry
    is byte-identical to serial.
    """

    def __init__(
        self,
        worker_count: int,
        *,
        shared: Any = None,
        state: Optional[SessionState] = None,
    ) -> None:
        if worker_count < 1:
            raise ValueError(
                f"worker_count must be >= 1, got {worker_count}"
            )
        self.worker_count = worker_count
        self.shared = shared
        self.state = state if state is not None else SessionState.capture()
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._barrier = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def forked(self) -> bool:
        """True once worker processes exist (first map or probe)."""
        return self._pool is not None

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context()
            self._barrier = context.Barrier(self.worker_count)
            self._pool = context.Pool(
                self.worker_count,
                initializer=_pool_initializer,
                initargs=(self.state, self.shared, self._barrier),
            )
        return self._pool

    def restart(self) -> None:
        """Tear down the worker processes; the next map re-forks.

        Used after a robust-path timeout so a wedged worker cannot
        squat a slot forever, and harmless otherwise.
        """
        self._terminate()

    def shutdown(self) -> None:
        """Terminate the workers and retire the pool object."""
        self._terminate()

    def _terminate(self) -> None:
        pool, self._pool, self._barrier = self._pool, None, None
        if pool is not None:
            # terminate(), not close(): a hung/killed worker would make
            # close()+join() wait forever on work that never finishes.
            pool.terminate()
            pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- mapping -----------------------------------------------------------

    def map(
        self,
        func: Callable[[T], R],
        items: Sequence[T],
        *,
        task_timeout: Optional[float] = None,
        task_retries: int = 1,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> List[R]:
        """Map ``func`` over ``items`` on the persistent workers.

        Results come back in input order.  ``task_timeout`` (seconds
        per item) arms per-chunk liveness: see the module docstring.
        ``progress`` is called as ``progress(items_done, items_total)``
        after each chunk is collected (in input order, so ``done`` is
        monotone) — the sweep heartbeat hook.  Exceptions raised by
        ``func`` propagate and are never retried — a deterministic bug
        would fail every retry anyway — and the pool stays usable
        afterwards.
        """
        items = list(items)
        if not items:
            return []
        parent_observer = get_observer()
        task = _ChunkTask(func, parent_observer.enabled)
        chunks = [
            items[start:stop]
            for start, stop in chunk_ranges(
                len(items),
                self.worker_count,
                chunks_per_worker=chunks_per_worker,
            )
        ]
        pool = self._ensure_pool()
        if task_timeout is None:
            if progress is None:
                pairs = pool.map(task, chunks, chunksize=1)
            else:
                # Per-chunk dispatch so completions surface as they
                # collect; input-order collection keeps ``done``
                # monotone (a later chunk finishing early just waits).
                handles = [
                    pool.apply_async(task, (chunk,)) for chunk in chunks
                ]
                pairs = []
                done = 0
                for chunk, handle in zip(chunks, handles):
                    pairs.append(handle.get())
                    done += len(chunk)
                    progress(done, len(items))
        else:
            pairs = self._robust_map(
                pool,
                task,
                chunks,
                task_timeout=task_timeout,
                task_retries=task_retries,
                progress=progress,
            )
        results: List[R] = []
        for chunk_results, telemetry in pairs:  # input order == serial
            if telemetry is not None:
                parent_observer.absorb(telemetry)
            results.extend(chunk_results)
        return results

    def _robust_map(
        self,
        pool,
        task: "_ChunkTask",
        chunks: List[List[T]],
        *,
        task_timeout: float,
        task_retries: int,
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        """Chunk map that survives hung or killed workers.

        Each chunk is one task with deadline ``task_timeout × len``.
        A chunk whose worker crashed (``Pool`` respawns the process)
        or hung never delivers — the wait times out and the chunk is
        resubmitted to the same pool, where a live worker picks it up,
        up to ``task_retries`` times; chunks still missing after that
        are recomputed serially in the parent, so results stay
        complete and in input order.  Task exceptions are not retried:
        they propagate exactly as on the fast path.
        """
        slots: List[Optional[Tuple[List[R], Optional[Observer]]]] = [
            None
        ] * len(chunks)
        total = sum(len(chunk) for chunk in chunks)
        done = 0
        pending = list(range(len(chunks)))
        timed_out = False
        try:
            for _attempt in range(task_retries + 1):
                if not pending:
                    break
                handles = {
                    index: pool.apply_async(task, (chunks[index],))
                    for index in pending
                }
                survivors: List[int] = []
                for index in pending:
                    deadline = task_timeout * max(1, len(chunks[index]))
                    try:
                        slots[index] = handles[index].get(deadline)
                    except multiprocessing.TimeoutError:
                        survivors.append(index)
                        timed_out = True
                    else:
                        done += len(chunks[index])
                        if progress is not None:
                            progress(done, total)
                pending = survivors
            for index in pending:  # serial fallback, parent process
                slots[index] = task(chunks[index])
                done += len(chunks[index])
                if progress is not None:
                    progress(done, total)
        finally:
            if timed_out:
                # Re-fork so a wedged worker cannot squat a slot (or a
                # zombie task deliver a stale result) into the next map.
                self.restart()
        return slots

    # -- diagnostics -------------------------------------------------------

    def fingerprints(self, *, timeout: float = 30.0) -> List[dict]:
        """One :func:`worker_fingerprint` per live worker process.

        Probes the pool's *actual* workers (forking them first if the
        pool is still cold): a barrier holds each probe until every
        worker has one, so all ``worker_count`` slots answer exactly
        once.  A worker that cannot answer within ``timeout`` is
        reported as a timed-out slot rather than silently skipped.
        """
        pool = self._ensure_pool()
        handles = [
            pool.apply_async(_barrier_probe, (slot,))
            for slot in range(self.worker_count)
        ]
        probes: List[dict] = []
        for slot, handle in enumerate(handles):
            try:
                probes.append(handle.get(timeout))
            except multiprocessing.TimeoutError:
                probes.append({"slot": slot, "error": "probe timed out"})
        if self._barrier is not None:
            try:
                self._barrier.reset()
            except (OSError, ValueError):  # pragma: no cover - diagnostics
                pass
        return probes


# -- the process-wide persistent pools ---------------------------------------

_POOLS: Dict[int, WorkerPool] = {}


def shared_pool(worker_count: int, *, shared: Any = None) -> WorkerPool:
    """The process-wide persistent pool for ``worker_count`` workers.

    Reused across sweeps while the captured :class:`SessionState` and
    the ``shared`` payload (compared by identity) are unchanged;
    otherwise the stale pool is shut down and a fresh one forked —
    "forked once per sweep" in the worst case, "forked once per
    process" in the common one.
    """
    state = SessionState.capture()
    pool = _POOLS.get(worker_count)
    if (
        pool is not None
        and pool.state == state
        and pool.shared is shared
    ):
        return pool
    if pool is not None:
        pool.shutdown()
    pool = WorkerPool(worker_count, shared=shared, state=state)
    _POOLS[worker_count] = pool
    return pool


def existing_pool(worker_count: int) -> Optional[WorkerPool]:
    """The cached pool for ``worker_count``, if any — no re-fork checks.

    The diagnostic accessor: ``pool_fingerprints`` wants the pool a
    sweep *actually used*, even if the session state has since
    drifted, so it must not go through :func:`shared_pool` (which
    would replace a drifted pool with a pristine one).
    """
    return _POOLS.get(worker_count)


def shutdown_shared_pools() -> None:
    """Terminate every cached process-wide pool (tests, atexit)."""
    pools = list(_POOLS.values())
    _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_shared_pools)
