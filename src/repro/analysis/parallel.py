"""Multiprocessing map over independent simulation points.

Every analysis driver runs the same shape of loop: N independent
(benchmark × configuration × seed) points, each a pure function of its
inputs.  parti-gem5 (PAPERS.md) exploits exactly this partition-level
parallelism; here it is one helper, :func:`parallel_map`, used by
``analysis/runner.py``, ``analysis/sweeps.py`` and
``analysis/sensitivity.py`` behind a ``jobs=`` parameter (the CLI's
``--jobs N``).

Guarantees:

- **Deterministic ordering** — results come back in input order
  regardless of worker scheduling (``Pool.map`` semantics), so a
  parallel run's output is identical to the serial run's.
- **Graceful serial fallback** — ``jobs=1`` (the default) never touches
  ``multiprocessing``: the work runs inline, exceptions propagate
  naturally, and debuggers/profilers see one process.
- **Deterministic seeding** — existing entry points keep their
  per-point seed semantics (a point's seed must not depend on how many
  workers ran it); new fan-outs derive per-point seeds with
  :func:`point_seed`, which hashes (parent seed, point label) via
  :func:`repro.util.rng.derive_seed`.

Workers must be module-level functions and their payloads picklable
(spawn-safe — the macOS/Windows default start method).  Session state
that lives in environment variables (the cache-backend default, the
miss-cache directory and enable flag) is inherited by workers under
both fork and spawn because the setters mirror into ``os.environ``.

**Observer aggregation** — when the parent process has a live observer
installed, each worker runs its point under a *local* observer (worker
processes never see the parent's in-memory observer), ships the
telemetry back alongside the result, and the parent folds the worker
observers into its own **in input order**.  Counters add, gauges take
the last write in input order, summaries replay their retained samples,
events rebase onto the parent's sequence space, trace spans append
verbatim.  Because serial execution visits the same points in the same
order, ``--jobs N`` produces byte-identical metric snapshots to
``--jobs 1``.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.obs import Observer, get_observer, observed
from repro.util.rng import derive_seed

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial; ``0`` and negative values mean "all
    cores" (like ``make -j``); anything else is used as given.
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def point_seed(parent_seed: int, label: object) -> int:
    """Derive the seed for one sweep point from the run's parent seed.

    Stable in the point's identity (its label, e.g. an index or a
    benchmark name) and independent of execution order or worker
    count, so serial and parallel runs of the same sweep simulate
    byte-identical points.
    """
    return derive_seed(parent_seed, f"point-{label}")


def worker_fingerprint(_item: object = None) -> dict:
    """Session state a worker process actually resolved, as plain data.

    Captures the settings that must survive the trip into a
    multiprocessing worker for ``--jobs N`` to reproduce the serial
    run: the resolved cache backend and the miss-cache enable flag and
    directory.  Module-level (picklable) so it can be mapped over a
    pool; callable inline for the serial baseline.
    """
    from repro.analysis import misscache
    from repro.cache.backend import default_backend

    return {
        "pid": os.getpid(),
        "cache_backend": default_backend(),
        "miss_cache_enabled": misscache.enabled(),
        "miss_cache_dir": str(misscache.cache_dir()),
    }


def pool_fingerprints(jobs: Optional[int]) -> List[dict]:
    """Fingerprint the parent plus each prospective worker slot.

    Runs :func:`worker_fingerprint` inline once and then across a pool
    of ``jobs`` workers (one probe per slot).  ``verify diff`` prints
    these when a jobs-pair mismatches so backend/miss-cache divergence
    between parent and workers is visible rather than inferred.
    """
    worker_count = resolve_jobs(jobs)
    fingerprints = [dict(worker_fingerprint(), role="parent")]
    if worker_count <= 1:
        return fingerprints
    import multiprocessing

    with multiprocessing.Pool(worker_count) as pool:
        probes = pool.map(worker_fingerprint, range(worker_count))
    fingerprints.extend(dict(probe, role="worker") for probe in probes)
    return fingerprints


class _ObservedTask:
    """Picklable wrapper running one point under a worker-local observer.

    The worker installs a fresh :class:`Observer` (with summary-sample
    retention, so the parent can merge by exact replay), runs the real
    function, and returns ``(result, observer)`` — observers are plain
    data (dicts, lists, dataclasses) and pickle cleanly.
    """

    __slots__ = ("func",)

    def __init__(self, func: Callable[[T], R]) -> None:
        self.func = func

    def __call__(self, item: T) -> Tuple[R, Observer]:
        telemetry = Observer(record_samples=True)
        with observed(telemetry):
            result = self.func(item)
        return result, telemetry


def _robust_pool_map(
    task: Callable[[T], R],
    items: List[T],
    worker_count: int,
    *,
    task_timeout: float,
    task_retries: int,
) -> List[R]:
    """Pool map that survives hung or killed workers.

    Each item is submitted as its own task and collected with a
    per-task timeout.  A worker that crashes (``SIGKILL``, OOM, a
    segfaulting extension) loses its in-flight task — the result never
    arrives and the wait times out; a hung worker looks identical.
    Timed-out items are retried in a **fresh** pool up to
    ``task_retries`` times (the old pool is ``terminate()``'d, so a
    wedged worker cannot leak), and items still failing after that run
    **serially in the parent** — the point is recomputed rather than
    silently dropped, so results stay complete and in input order.

    Exceptions *raised by the task itself* are not retried: they
    propagate exactly as in the serial path — a deterministic bug
    would fail every retry anyway, and hiding it behind retries would
    only triple the time to the traceback.
    """
    import multiprocessing

    results: List[Optional[R]] = [None] * len(items)
    pending = list(range(len(items)))
    for _attempt in range(task_retries + 1):
        if not pending:
            break
        pool = multiprocessing.Pool(min(worker_count, len(pending)))
        try:
            handles = {
                index: pool.apply_async(task, (items[index],))
                for index in pending
            }
            survivors: List[int] = []
            for index in pending:
                try:
                    results[index] = handles[index].get(task_timeout)
                except multiprocessing.TimeoutError:
                    survivors.append(index)
        finally:
            # terminate(), not close(): a hung/killed worker would make
            # close()+join() wait forever on work that will never finish.
            pool.terminate()
            pool.join()
        pending = survivors
    for index in pending:  # serial fallback, parent process
        results[index] = task(items[index])
    return results  # type: ignore[return-value]


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    jobs: Optional[int] = 1,
    chunksize: int = 1,
    task_timeout: Optional[float] = None,
    task_retries: int = 1,
) -> List[R]:
    """Map ``func`` over ``items``, optionally across processes.

    With ``jobs=1`` this is ``[func(item) for item in items]``.  With
    more jobs a ``multiprocessing.Pool`` runs the map; ``func`` must be
    a module-level function and every item picklable.  Results are
    always in input order.  Worker counts are capped at ``len(items)``
    — there is no point forking more processes than points.

    ``task_timeout`` (seconds) arms the crash-resilient path: any item
    whose worker dies or hangs is retried in a fresh pool up to
    ``task_retries`` times and finally recomputed serially in the
    parent (see :func:`_robust_pool_map`).  The default (``None``)
    keeps the fast ``Pool.map`` path with no liveness monitoring.
    Exceptions raised by ``func`` itself always propagate, on both
    paths.

    When the parent has a live observer, worker telemetry is captured
    per point and merged back deterministically (see module docstring);
    with the default null observer, workers run unobserved and nothing
    is shipped.  On the resilient path the merge happens after all
    points complete, still in input order, so retries and fallbacks
    cannot reorder telemetry.
    """
    worker_count = resolve_jobs(jobs)
    items = list(items)
    if worker_count <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    worker_count = min(worker_count, len(items))
    import multiprocessing

    parent_observer = get_observer()
    if not parent_observer.enabled:
        if task_timeout is not None:
            return _robust_pool_map(
                func,
                items,
                worker_count,
                task_timeout=task_timeout,
                task_retries=task_retries,
            )
        with multiprocessing.Pool(worker_count) as pool:
            return pool.map(func, items, chunksize=chunksize)

    task = _ObservedTask(func)
    if task_timeout is not None:
        pairs = _robust_pool_map(
            task,
            items,
            worker_count,
            task_timeout=task_timeout,
            task_retries=task_retries,
        )
    else:
        with multiprocessing.Pool(worker_count) as pool:
            pairs = pool.map(task, items, chunksize=chunksize)
    results: List[R] = []
    for result, telemetry in pairs:  # input order == serial order
        parent_observer.absorb(telemetry)
        results.append(result)
    return results
