"""Multiprocessing map over independent simulation points.

Every analysis driver runs the same shape of loop: N independent
(benchmark × configuration × seed) points, each a pure function of its
inputs.  parti-gem5 (PAPERS.md) exploits exactly this partition-level
parallelism; here it is one helper, :func:`parallel_map`, used by
``analysis/runner.py``, ``analysis/sweeps.py`` and
``analysis/sensitivity.py`` behind a ``jobs=`` parameter (the CLI's
``--jobs N``).

Since the persistent-pool rework, :func:`parallel_map` is a thin front
over :mod:`repro.analysis.pool`: work is dispatched in adaptive
contiguous chunks onto a process-wide :class:`~repro.analysis.pool.\
WorkerPool` that is forked once and reused across sweeps, with shared
read-only state (resolved cache backend, miss-cache config, and the
caller's ``shared`` payload) installed in each worker by the pool
initializer rather than re-pickled per point.

Guarantees:

- **Deterministic ordering** — results come back in input order
  regardless of worker scheduling (chunks are contiguous input slices,
  folded in order), so a parallel run's output is identical to the
  serial run's.
- **Graceful serial fallback** — ``jobs=1`` (the default) never touches
  ``multiprocessing``: the work runs inline, exceptions propagate
  naturally, and debuggers/profilers see one process.
- **Deterministic seeding** — existing entry points keep their
  per-point seed semantics (a point's seed must not depend on how many
  workers ran it); new fan-outs derive per-point seeds with
  :func:`point_seed`, which hashes (parent seed, point label) via
  :func:`repro.util.rng.derive_seed`.

Workers must be module-level functions and their payloads picklable
(spawn-safe — the macOS/Windows default start method).  Bulky inputs
shared by every point (curves, machine/sim configs, workload profiles)
travel once per pool via ``shared=`` and are read back inside the
worker function with :func:`repro.analysis.pool.current_shared`; the
serial path installs the same payload in-process, so worker functions
are written once.

**Observer aggregation** — when the parent process has a live observer
installed, each worker runs its *chunk* under a local observer (worker
processes never see the parent's in-memory observer), ships the
telemetry back once per chunk, and the parent folds the chunk
observers into its own **in input order**.  Counters add, gauges take
the last write in input order, summaries replay their retained samples,
events rebase onto the parent's sequence space (across chunk
boundaries), trace spans append verbatim.  Because serial execution
visits the same points in the same order, ``--jobs N`` produces
byte-identical metric snapshots to ``--jobs 1``.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from repro.analysis.pool import (
    WorkerPool,
    existing_pool,
    installed_shared,
    shared_pool,
    worker_fingerprint,
)
from repro.util.rng import derive_seed

__all__ = [
    "parallel_map",
    "point_seed",
    "pool_fingerprints",
    "resolve_jobs",
    "worker_fingerprint",
]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial; ``0`` and negative values mean "all
    cores" (like ``make -j``) — the affinity-visible count where the
    platform exposes one, so a container pinned to 2 of 64 cores forks
    2 workers, not 64; anything else is used as given.
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        return visible_cpu_count()
    return jobs


def visible_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.sched_getaffinity`` where available (Linux — respects
    cgroup/affinity masks, the count that governs real scaling),
    ``os.cpu_count()`` elsewhere.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def point_seed(parent_seed: int, label: object) -> int:
    """Derive the seed for one sweep point from the run's parent seed.

    Stable in the point's identity (its label, e.g. an index or a
    benchmark name) and independent of execution order or worker
    count, so serial and parallel runs of the same sweep simulate
    byte-identical points.
    """
    return derive_seed(parent_seed, f"point-{label}")


def pool_fingerprints(
    jobs: Optional[int], *, pool: Optional[WorkerPool] = None
) -> List[dict]:
    """Fingerprint the parent plus each live persistent-pool worker.

    Probes the pool a sweep at this worker count *actually uses* — the
    process-wide persistent pool, preferring one that already exists
    (even if the session state has drifted since it forked, which is
    exactly the divergence worth seeing) over forking a pristine one.
    ``verify diff`` prints these when a jobs-pair mismatches so
    backend/miss-cache divergence between parent and workers is
    visible rather than inferred.
    """
    worker_count = resolve_jobs(jobs)
    fingerprints = [dict(worker_fingerprint(), role="parent")]
    if worker_count <= 1:
        return fingerprints
    if pool is None:
        pool = existing_pool(worker_count) or shared_pool(worker_count)
    fingerprints.extend(
        dict(probe, role="worker") for probe in pool.fingerprints()
    )
    return fingerprints


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    *,
    jobs: Optional[int] = 1,
    task_timeout: Optional[float] = None,
    task_retries: int = 1,
    shared: Any = None,
    pool: Optional[WorkerPool] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[R]:
    """Map ``func`` over ``items``, optionally across processes.

    With ``jobs=1`` this is ``[func(item) for item in items]`` (with
    ``shared`` scoped in-process).  With more jobs the work runs on
    the process-wide persistent :class:`WorkerPool` for that worker
    count — forked on first use, reused across calls and sweeps while
    the session state and ``shared`` payload are unchanged — in
    adaptive contiguous chunks; ``func`` must be a module-level
    function and every item picklable.  Results are always in input
    order.  Worker counts are capped at ``len(items)`` — there is no
    point forking more processes than points.

    ``shared`` is a read-only payload shipped to workers once at pool
    fork (not per task); worker functions read it back with
    :func:`repro.analysis.pool.current_shared` on both the serial and
    the parallel path.  ``pool`` runs the map on an explicit
    :class:`WorkerPool` instead (its ``shared`` payload, its workers).

    ``task_timeout`` (seconds per item) arms the crash-resilient path:
    any chunk whose worker dies or hangs is retried on the same
    persistent pool up to ``task_retries`` times and finally
    recomputed serially in the parent.  The default (``None``) keeps
    the fast path with no liveness monitoring.  Exceptions raised by
    ``func`` itself always propagate, on both paths.

    When the parent has a live observer, worker telemetry is captured
    per chunk and merged back deterministically (see module
    docstring); with the default null observer, workers run unobserved
    and nothing is shipped.

    ``progress`` is called as ``progress(items_done, items_total)``
    with monotone ``done`` — per item on the serial path, per
    collected chunk on the pool path (the sweep-heartbeat hook).
    """
    items = list(items)
    if pool is None:
        worker_count = resolve_jobs(jobs)
        if worker_count <= 1 or len(items) <= 1:
            with installed_shared(shared):
                if progress is None:
                    return [func(item) for item in items]
                results: List[R] = []
                for item in items:
                    results.append(func(item))
                    progress(len(results), len(items))
                return results
        worker_count = min(worker_count, len(items))
        pool = shared_pool(worker_count, shared=shared)
    return pool.map(
        func,
        items,
        task_timeout=task_timeout,
        task_retries=task_retries,
        progress=progress,
    )
