"""Workload composition (Section 6, Tables 2 and 3).

A workload is an ordered template of jobs to be *accepted*: the paper
measures the wall-clock time to complete the first ten accepted jobs,
with the ten jobs' execution modes set by the Table 2 configuration.

Two compositions are used:

- **single-benchmark**: ten instances of one benchmark (bzip2, hmmer,
  or gobmk), modes from the configuration's percentages.
- **mixed** (Table 3): jobs cycle through three benchmarks with fixed
  *roles* — Mix-1 assigns hmmer→Strict, gobmk→Elastic(5%),
  bzip2→Opportunistic (favourable to stealing: the insensitive
  benchmark donates, the sensitive one receives); Mix-2 swaps bzip2
  and gobmk's roles (unfavourable).

For configurations without Elastic or Opportunistic modes, a role maps
to the strongest mode the configuration supports (e.g. under All-Strict
every role runs Strict; under Hybrid-1 the Elastic role runs Strict).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import ModeMixConfig
from repro.core.modes import ExecutionMode, ModeKind
from repro.util.rng import DeterministicRng
from repro.util.validation import check_positive
from repro.workloads.arrival import DeadlineClass, DeadlinePolicy
from repro.workloads.benchmarks import get_benchmark


@dataclass(frozen=True)
class JobSpec:
    """Template for one job in a workload.

    ``max_wall_clock`` optionally overrides the simulator's derived
    ``tw`` — the batch-system reality (Section 3.2) where users declare
    wall-clock limits themselves and may under-estimate; a reserved job
    that overruns its declared limit is terminated.
    """

    benchmark: str
    mode: ExecutionMode
    deadline_class: DeadlineClass
    requested_ways: int = 7
    requested_cores: int = 1
    max_wall_clock: Optional[float] = None

    def __post_init__(self) -> None:
        get_benchmark(self.benchmark)  # validates the name
        check_positive("requested_ways", self.requested_ways)
        check_positive("requested_cores", self.requested_cores)
        if self.max_wall_clock is not None:
            check_positive("max_wall_clock", self.max_wall_clock)


@dataclass(frozen=True)
class WorkloadSpec:
    """An ordered job template plus its provenance."""

    name: str
    jobs: Tuple[JobSpec, ...]
    configuration: ModeMixConfig

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError(f"workload {self.name} has no jobs")

    @property
    def size(self) -> int:
        """Number of jobs in the template."""
        return len(self.jobs)

    def benchmarks_used(self) -> List[str]:
        """Distinct benchmark names, sorted."""
        return sorted({spec.benchmark for spec in self.jobs})


def _deadline_classes(
    count: int, seed: int, policy: Optional[DeadlinePolicy]
) -> List[DeadlineClass]:
    policy = policy if policy is not None else DeadlinePolicy()
    rng = DeterministicRng(seed, "deadline-classes")
    return policy.assign(count, rng)


def single_benchmark_workload(
    benchmark: str,
    configuration: ModeMixConfig,
    *,
    count: int = 10,
    seed: int = 42,
    requested_ways: int = 7,
    deadline_policy: Optional[DeadlinePolicy] = None,
) -> WorkloadSpec:
    """Ten identical-benchmark jobs with configuration-assigned modes.

    Deadline classes use the same seed across configurations, so e.g.
    All-Strict and AutoDown see identical deadline draws — the paper's
    comparisons rely on that.
    """
    get_benchmark(benchmark)
    check_positive("count", count)
    modes = configuration.mode_sequence(count)
    classes = _deadline_classes(count, seed, deadline_policy)
    jobs = tuple(
        JobSpec(
            benchmark=benchmark,
            mode=mode,
            deadline_class=deadline_class,
            requested_ways=requested_ways,
        )
        for mode, deadline_class in zip(modes, classes)
    )
    return WorkloadSpec(
        name=f"{benchmark}-x{count}-{configuration.name}",
        jobs=jobs,
        configuration=configuration,
    )


#: Table 3 role assignments: benchmark → intended mode kind.
MIX_ROLES = {
    "Mix-1": (
        ("hmmer", ModeKind.STRICT),
        ("gobmk", ModeKind.ELASTIC),
        ("bzip2", ModeKind.OPPORTUNISTIC),
    ),
    "Mix-2": (
        ("hmmer", ModeKind.STRICT),
        ("bzip2", ModeKind.ELASTIC),
        ("gobmk", ModeKind.OPPORTUNISTIC),
    ),
}


def _role_mode(
    role: ModeKind, configuration: ModeMixConfig
) -> ExecutionMode:
    """Resolve a Table 3 role to a mode the configuration supports."""
    if configuration.equal_partition:
        return ExecutionMode.strict()
    if role is ModeKind.OPPORTUNISTIC:
        if configuration.opportunistic_fraction > 0:
            return ExecutionMode.opportunistic()
        return ExecutionMode.strict()
    if role is ModeKind.ELASTIC:
        if configuration.elastic_fraction > 0:
            return ExecutionMode.elastic(configuration.elastic_slack)
        if configuration.opportunistic_fraction > 0:
            # Hybrid-1 has no Elastic mode; the donor role stays Strict
            # (it made a throughput promise it cannot relax further).
            return ExecutionMode.strict()
        return ExecutionMode.strict()
    return ExecutionMode.strict()


def mixed_workload(
    mix_name: str,
    configuration: ModeMixConfig,
    *,
    count: int = 10,
    seed: int = 42,
    requested_ways: int = 7,
    deadline_policy: Optional[DeadlinePolicy] = None,
) -> WorkloadSpec:
    """A Table 3 mixed-benchmark workload under ``configuration``."""
    try:
        roles = MIX_ROLES[mix_name]
    except KeyError:
        raise ValueError(
            f"unknown mix {mix_name!r}; expected one of {sorted(MIX_ROLES)}"
        ) from None
    check_positive("count", count)
    classes = _deadline_classes(count, seed, deadline_policy)
    jobs = []
    for index in range(count):
        benchmark, role = roles[index % len(roles)]
        jobs.append(
            JobSpec(
                benchmark=benchmark,
                mode=_role_mode(role, configuration),
                deadline_class=classes[index],
                requested_ways=requested_ways,
            )
        )
    return WorkloadSpec(
        name=f"{mix_name}-x{count}-{configuration.name}",
        jobs=tuple(jobs),
        configuration=configuration,
    )
