"""Trace file I/O: run *real* address traces through the substrate.

The synthetic generators stand in for SPEC2006 (DESIGN.md §1), but the
cache substrate is trace-driven, so anyone with real traces — from a
binary-instrumentation tool, a hardware trace unit, or another
simulator — can feed them straight in.  The format is deliberately
trivial:

- one access per line: ``R <hex address>`` or ``W <hex address>``;
- ``#``-prefixed lines are comments;
- a ``.gz`` suffix selects transparent gzip.

:func:`record_trace` captures a synthetic generator's stream into this
format (useful for sharing exact workloads between tools), and
:func:`read_trace` / :class:`FileTracePattern` replay a file either as
a raw access iterator or as an :class:`~repro.workloads.patterns.AccessPattern`
usable anywhere the synthetic patterns are.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from repro.cpu.core import MemoryAccess
from repro.util.validation import check_positive
from repro.workloads.patterns import AccessPattern

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def write_trace(accesses: Iterable[MemoryAccess], path: PathLike) -> int:
    """Write accesses to ``path``; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with _open_text(path, "w") as handle:
        handle.write("# repro trace v1: '<R|W> <hex address>' per line\n")
        for access in accesses:
            kind = "W" if access.is_write else "R"
            handle.write(f"{kind} {access.address:#x}\n")
            count += 1
    return count


def record_trace(generator, path: PathLike, *, count: int) -> int:
    """Capture ``count`` accesses of a bound trace generator to a file."""
    check_positive("count", count)
    return write_trace(generator.accesses(count), path)


class TraceFormatError(ValueError):
    """A trace file line could not be parsed.

    The message always names the offending file and 1-based line
    number, so a malformed multi-gigabyte trace is diagnosable without
    bisection.
    """

    def __init__(self, path: Path, line_number: int, detail: str) -> None:
        super().__init__(f"{path}: line {line_number}: {detail}")
        self.path = path
        self.line_number = line_number
        self.detail = detail


#: Backwards-compatible alias (the pre-hardening exception name).
TraceParseError = TraceFormatError


def _parse_line(line: str, path: Path, line_number: int) -> MemoryAccess:
    parts = line.split()
    if len(parts) != 2 or parts[0] not in ("R", "W"):
        raise TraceFormatError(
            path,
            line_number,
            f"expected '<R|W> <address>', got {line.rstrip()!r}",
        )
    try:
        address = int(parts[1], 0)
    except ValueError:
        raise TraceFormatError(
            path, line_number, f"bad address {parts[1]!r}"
        ) from None
    if address < 0:
        raise TraceFormatError(path, line_number, "negative address")
    return MemoryAccess(address, is_write=parts[0] == "W")


def read_trace(
    path: PathLike,
    *,
    lenient: bool = False,
    skipped: Optional[List[int]] = None,
) -> Iterator[MemoryAccess]:
    """Stream accesses from a trace file (lazily; files may be huge).

    Malformed or truncated lines raise :class:`TraceFormatError` naming
    the file and 1-based line number.  With ``lenient=True`` bad lines
    are skipped instead; pass a list as ``skipped`` to collect their
    line numbers (the skip count is ``len(skipped)``).
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                yield _parse_line(stripped, path, line_number)
            except TraceFormatError:
                if not lenient:
                    raise
                if skipped is not None:
                    skipped.append(line_number)


def load_trace(path: PathLike, *, lenient: bool = False) -> List[MemoryAccess]:
    """Read an entire trace into memory (for repeated replay)."""
    return list(read_trace(path, lenient=lenient))


class FileTracePattern(AccessPattern):
    """An :class:`AccessPattern` that replays a recorded trace.

    The trace is loaded once and replayed cyclically, so it can be
    mixed with synthetic components in a
    :class:`~repro.workloads.generator.TraceGenerator` or profiled with
    :func:`~repro.workloads.profiler.profile_benchmark` via a custom
    profile.  Addresses are used verbatim (offset by the bound region
    base), so the file's own locality structure is preserved.
    """

    def __init__(self, path: PathLike) -> None:
        self._accesses = load_trace(path)
        if not self._accesses:
            raise ValueError(f"trace file {path} contains no accesses")
        distinct_blocks = {a.address >> 6 for a in self._accesses}
        # Footprint in ways is geometry-dependent; computed at bind.
        self._distinct_blocks = len(distinct_blocks)
        super().__init__(footprint_ways=1.0)  # placeholder until bind

    def _on_bind(self) -> None:
        self.footprint_ways = self._distinct_blocks / self.num_sets
        self._cursor = 0

    @property
    def trace_length(self) -> int:
        """Number of accesses in the file."""
        return len(self._accesses)

    def next_address(self) -> int:
        access = self._accesses[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._accesses)
        return self.region_base + access.address

    def next_access(self) -> MemoryAccess:
        """Like :meth:`next_address` but preserving the read/write bit."""
        access = self._accesses[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._accesses)
        return MemoryAccess(
            self.region_base + access.address, is_write=access.is_write
        )
