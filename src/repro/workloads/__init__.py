"""Synthetic SPEC2006-like workloads.

The paper evaluates with fifteen SPEC2006 benchmarks under Simics.
Neither is available here, so this package provides the substitution
documented in DESIGN.md §1: synthetic L2 access-trace generators whose
*cache behaviour as a function of allocated ways* matches the paper's
three sensitivity classes (Figure 4) and the Table 1 statistics of the
three representative benchmarks.

- :mod:`repro.workloads.patterns` — access-pattern primitives (cyclic
  loops, streaming, Zipf-popular pools).
- :mod:`repro.workloads.generator` — weighted pattern mixtures and the
  trace generator.
- :mod:`repro.workloads.benchmarks` — the fifteen named benchmark
  profiles with CPI-model parameters.
- :mod:`repro.workloads.profiler` — miss-ratio-curve profiling (misses
  per instruction as a function of allocated ways), the input to the
  system simulator's timing model.
- :mod:`repro.workloads.arrival` — Poisson arrivals and the paper's
  tight/moderate/relaxed deadline mix.
- :mod:`repro.workloads.composer` — 10-job workload construction,
  including the Table 3 Mix-1/Mix-2 workloads and Table 2 mode
  configurations.
- :mod:`repro.workloads.tracefile` — trace file I/O, so real recorded
  address traces can replace the synthetic stand-ins.
"""

from repro.workloads.arrival import DeadlineClass, DeadlinePolicy, PoissonArrivals
from repro.workloads.benchmarks import (
    BENCHMARKS,
    REPRESENTATIVES,
    BenchmarkProfile,
    get_benchmark,
)
from repro.workloads.composer import (
    JobSpec,
    WorkloadSpec,
    mixed_workload,
    single_benchmark_workload,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.patterns import (
    LoopPattern,
    PhasedPattern,
    StreamingPattern,
    ZipfPattern,
)
from repro.workloads.profiler import (
    MissRatioCurve,
    load_curves,
    profile_benchmark,
    save_curves,
)
from repro.workloads.tracefile import (
    FileTracePattern,
    load_trace,
    read_trace,
    record_trace,
    write_trace,
)

__all__ = [
    "LoopPattern",
    "PhasedPattern",
    "StreamingPattern",
    "ZipfPattern",
    "TraceGenerator",
    "BenchmarkProfile",
    "BENCHMARKS",
    "REPRESENTATIVES",
    "get_benchmark",
    "MissRatioCurve",
    "profile_benchmark",
    "save_curves",
    "load_curves",
    "FileTracePattern",
    "write_trace",
    "read_trace",
    "load_trace",
    "record_trace",
    "PoissonArrivals",
    "DeadlinePolicy",
    "DeadlineClass",
    "JobSpec",
    "WorkloadSpec",
    "single_benchmark_workload",
    "mixed_workload",
]
