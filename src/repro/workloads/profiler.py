"""Miss-ratio-curve profiling.

The system simulator's timing model needs, for every benchmark, the L2
miss rate as a function of allocated ways — exactly what the paper's
framework observes through its allocation counters and what utility-
based partitioning papers call a miss-ratio curve (MRC).

:func:`profile_benchmark` obtains the curve the honest way: it runs the
benchmark's synthetic trace through a real trace-driven LRU cache at
every candidate way count.  Profiling runs on a scaled-down set count
(footprints are way-denominated, so the curve is set-count invariant;
see :mod:`repro.workloads.patterns`) and results are memoised
process-wide because every experiment reuses the same fifteen curves.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.cache.backend import make_cache
from repro.cache.geometry import CacheGeometry
from repro.util.rng import DeterministicRng
from repro.util.validation import check_non_negative, check_positive
from repro.workloads.benchmarks import BenchmarkProfile


@dataclass
class MissRatioCurve:
    """L2 miss rate (and misses/instruction) versus allocated ways.

    ``points`` maps integer way counts to miss rates.  The curve is
    normalised to be non-increasing in ways (more cache can only help
    under LRU inclusion) — simulation noise on finite traces could
    otherwise produce tiny inversions that would break downstream
    invariants.
    """

    benchmark: str
    l2_accesses_per_instruction: float
    points: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive(
            "l2_accesses_per_instruction", self.l2_accesses_per_instruction
        )
        if 0 not in self.points:
            self.points[0] = 1.0  # no allocation: every access misses
        self._enforce_monotone()

    def _enforce_monotone(self) -> None:
        running_min = 1.0
        for ways in sorted(self.points):
            value = min(self.points[ways], running_min)
            if not 0.0 <= self.points[ways] <= 1.0:
                raise ValueError(
                    f"miss rate at {ways} ways is {self.points[ways]}, "
                    "outside [0, 1]"
                )
            self.points[ways] = value
            running_min = value

    @property
    def max_ways(self) -> int:
        """Largest way count the curve was profiled at."""
        return max(self.points)

    def miss_rate(self, ways: float) -> float:
        """Miss rate at ``ways``, linearly interpolated between points.

        Fractional allocations arise in the EqualPart baseline (16 ways
        over a varying number of jobs, e.g. Figure 1's three-job case
        giving 5.33 ways each).  Queries beyond the profiled range clamp
        to the last point.
        """
        check_non_negative("ways", ways)
        known = sorted(self.points)
        if ways >= known[-1]:
            return self.points[known[-1]]
        lower = max(w for w in known if w <= ways)
        upper = min(w for w in known if w >= ways)
        if lower == upper:
            return self.points[lower]
        t = (ways - lower) / (upper - lower)
        return self.points[lower] * (1 - t) + self.points[upper] * t

    def mpi(self, ways: float) -> float:
        """Misses per instruction at ``ways``."""
        return self.miss_rate(ways) * self.l2_accesses_per_instruction

    def miss_increase_fraction(self, baseline_ways: float, reduced_ways: float) -> float:
        """Fractional miss increase when shrinking the allocation.

        This is the quantity the resource-stealing criterion bounds by
        the Elastic slack X (Section 4.2).
        """
        base = self.miss_rate(baseline_ways)
        if base == 0.0:
            return 0.0 if self.miss_rate(reduced_ways) == 0.0 else float("inf")
        return (self.miss_rate(reduced_ways) - base) / base

    def min_ways_for_miss_rate(self, target_miss_rate: float) -> Optional[int]:
        """Smallest profiled way count achieving ``target_miss_rate``.

        Returns ``None`` when even the full curve cannot reach the
        target — the paper's point about RPM targets being possibly
        ill-defined (Section 3.2).
        """
        check_non_negative("target_miss_rate", target_miss_rate)
        for ways in sorted(self.points):
            if self.points[ways] <= target_miss_rate:
                return ways
        return None


def measure_miss_rates(
    profile: BenchmarkProfile,
    *,
    ways_list: Iterable[int] = tuple(range(1, 17)),
    num_sets: int = 64,
    block_bytes: int = 64,
    accesses: int = 40_000,
    warmup: int = 15_000,
    seed: int = 1234,
    backend: Optional[str] = None,
) -> Dict[int, float]:
    """Raw per-way miss rates, exactly as the cache measured them.

    The measurement loop behind :func:`profile_benchmark`, *without*
    the :class:`MissRatioCurve` monotonicity normalisation — the
    verification laws check the raw points (more ways never hurts
    under LRU inclusion), which the normalised curve would hide by
    construction.
    """
    check_positive("accesses", accesses)
    check_non_negative("warmup", warmup)
    from itertools import islice

    points: Dict[int, float] = {}
    for ways in ways_list:
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        geometry = CacheGeometry.from_sets(num_sets, ways, block_bytes)
        cache = make_cache(
            geometry, name=f"{profile.name}-{ways}w", backend=backend
        )
        generator = profile.make_generator()
        generator.bind(
            num_sets=num_sets,
            block_bytes=block_bytes,
            rng=DeterministicRng(seed, f"profile-{profile.name}"),
        )
        stream = generator.address_stream(warmup + accesses)
        if warmup:
            addresses, writes = zip(*islice(stream, warmup))
            cache.access_block(addresses, writes)
        addresses, writes = zip(*stream)
        measured = cache.access_block(addresses, writes)
        points[ways] = measured.miss_rate
    return points


def profile_benchmark(
    profile: BenchmarkProfile,
    *,
    ways_list: Iterable[int] = tuple(range(1, 17)),
    num_sets: int = 64,
    block_bytes: int = 64,
    accesses: int = 40_000,
    warmup: int = 15_000,
    seed: int = 1234,
    backend: Optional[str] = None,
) -> MissRatioCurve:
    """Measure ``profile``'s miss-ratio curve by direct cache simulation.

    For each candidate way count ``w`` the benchmark's trace runs alone
    through a ``w``-way LRU cache with ``num_sets`` sets (a partition
    view of the shared L2).  ``warmup`` accesses fill the cache before
    ``accesses`` measured ones.  ``backend`` selects the cache
    implementation (:mod:`repro.cache.backend`); both backends produce
    identical curves.
    """
    points = measure_miss_rates(
        profile,
        ways_list=ways_list,
        num_sets=num_sets,
        block_bytes=block_bytes,
        accesses=accesses,
        warmup=warmup,
        seed=seed,
        backend=backend,
    )
    return MissRatioCurve(
        benchmark=profile.name,
        l2_accesses_per_instruction=profile.l2_accesses_per_instruction,
        points=points,
    )


_CURVE_CACHE: Dict[Tuple[str, int, int, int, int], MissRatioCurve] = {}


def profile_digest(profile: BenchmarkProfile) -> str:
    """Content digest of a full benchmark profile.

    The in-process curve cache keys on this rather than on
    ``profile.name``: two distinct profiles sharing a name (e.g.
    fuzzer-mutated variants from ``repro verify fuzz``) must not serve
    each other's curves.  The on-disk store has always keyed on the
    full ``dataclasses.asdict(profile)``; this digest matches that
    granularity.
    """
    payload = json.dumps(
        dataclasses.asdict(profile), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def get_curve(
    profile: BenchmarkProfile,
    *,
    num_sets: int = 64,
    block_bytes: int = 64,
    accesses: int = 40_000,
    seed: int = 1234,
    backend: Optional[str] = None,
) -> MissRatioCurve:
    """Memoised :func:`profile_benchmark` (one curve per configuration).

    Two layers of memoisation: the in-process dict below, then the
    content-addressed on-disk store (:mod:`repro.analysis.misscache`)
    shared across processes and runs.  Neither key includes the cache
    backend — both backends produce identical curves (pinned by the
    differential test suite), so a curve profiled under one backend is
    valid under the other.
    """
    key = (profile_digest(profile), num_sets, block_bytes, accesses, seed)
    if key not in _CURVE_CACHE:
        # Imported lazily: misscache keys on this module's source, so a
        # top-level import would be circular.
        from repro.analysis import misscache

        cached = misscache.load_curve(
            profile,
            num_sets=num_sets,
            block_bytes=block_bytes,
            accesses=accesses,
            seed=seed,
        )
        if cached is None:
            cached = profile_benchmark(
                profile,
                num_sets=num_sets,
                block_bytes=block_bytes,
                accesses=accesses,
                seed=seed,
                backend=backend,
            )
            misscache.store_curve(
                cached,
                profile,
                num_sets=num_sets,
                block_bytes=block_bytes,
                accesses=accesses,
                seed=seed,
            )
        _CURVE_CACHE[key] = cached
    return _CURVE_CACHE[key]


def clear_curve_cache() -> None:
    """Drop all memoised curves (test isolation helper)."""
    _CURVE_CACHE.clear()


# -----------------------------------------------------------------------------
# Curve persistence: profiling the fifteen benchmarks takes a couple of
# minutes; saving the curves lets CLIs and notebooks skip re-profiling.
# -----------------------------------------------------------------------------


def curve_to_dict(curve: MissRatioCurve) -> dict:
    """Serialise one curve to plain data."""
    return {
        "benchmark": curve.benchmark,
        "l2_accesses_per_instruction": curve.l2_accesses_per_instruction,
        "points": {str(ways): rate for ways, rate in curve.points.items()},
    }


def curve_from_dict(payload: dict) -> MissRatioCurve:
    """Rebuild a curve serialised by :func:`curve_to_dict`."""
    try:
        return MissRatioCurve(
            benchmark=payload["benchmark"],
            l2_accesses_per_instruction=payload[
                "l2_accesses_per_instruction"
            ],
            points={
                int(ways): float(rate)
                for ways, rate in payload["points"].items()
            },
        )
    except KeyError as missing:
        raise ValueError(f"curve payload missing key {missing}") from None


def save_curves(curves, path) -> "Path":
    """Write a ``{name: curve}`` mapping to a JSON file."""
    import json
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {name: curve_to_dict(curve) for name, curve in curves.items()}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_curves(path) -> Dict[str, MissRatioCurve]:
    """Read back a curve file written by :func:`save_curves`."""
    import json
    from pathlib import Path

    payload = json.loads(Path(path).read_text())
    return {
        name: curve_from_dict(entry) for name, entry in payload.items()
    }
