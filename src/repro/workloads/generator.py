"""Trace generation from weighted pattern mixtures.

A benchmark's L2 access stream is modelled as a weighted interleaving
of pattern primitives (loops, Zipf pools, streams).  Each component gets
a private, non-overlapping address region; per access, one component is
drawn by weight and asked for its next address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.cpu.core import MemoryAccess
from repro.util.rng import DeterministicRng
from repro.util.validation import check_fraction, check_positive
from repro.workloads.patterns import AccessPattern


@dataclass(frozen=True)
class MixtureComponent:
    """One weighted component of a benchmark's access mixture."""

    pattern: AccessPattern
    weight: float

    def __post_init__(self) -> None:
        check_positive("weight", self.weight)


class TraceGenerator:
    """Generates a benchmark's L2 access trace for one job instance.

    Parameters
    ----------
    components:
        Weighted pattern mixture.  Patterns are bound lazily to the
        geometry passed to :meth:`bind`.
    write_fraction:
        Probability that an access is a write (creates dirty blocks and
        hence write-back traffic).
    """

    # Regions are spaced on large power-of-two boundaries so different
    # jobs' and components' addresses can never collide.
    REGION_ALIGNMENT = 1 << 26  # 64 MB

    def __init__(
        self,
        components: Sequence[MixtureComponent],
        *,
        write_fraction: float = 0.2,
    ) -> None:
        if not components:
            raise ValueError("a trace needs at least one mixture component")
        check_fraction("write_fraction", write_fraction)
        self.components: List[MixtureComponent] = list(components)
        self.write_fraction = write_fraction
        self._bound = False

    def bind(
        self,
        *,
        num_sets: int,
        block_bytes: int,
        rng: DeterministicRng,
        base_address: int = 0,
    ) -> None:
        """Bind all components to a geometry and private regions.

        ``base_address`` offsets the whole job's address space, letting
        multiple jobs share one cache without address collisions.
        """
        self._rng = rng
        region = base_address
        for index, component in enumerate(self.components):
            component.pattern.bind(
                num_sets=num_sets,
                block_bytes=block_bytes,
                region_base=region,
                rng=rng.stream(f"component-{index}"),
            )
            needed = component.pattern.region_bytes()
            slots = (needed + self.REGION_ALIGNMENT - 1) // self.REGION_ALIGNMENT
            region += max(1, slots) * self.REGION_ALIGNMENT
        self._weights = [component.weight for component in self.components]
        self._pick_rng = rng.stream("component-pick")
        self._write_rng = rng.stream("write-pick")
        self._bound = True

    @property
    def footprint_ways(self) -> float:
        """Total footprint of all components, in ways-worth of blocks."""
        return sum(component.pattern.footprint_ways for component in self.components)

    def accesses(self, count: int) -> Iterator[MemoryAccess]:
        """Yield ``count`` accesses from the bound mixture."""
        if not self._bound:
            raise RuntimeError("bind() must be called before generating")
        check_positive("count", count)
        components = self.components
        if len(components) == 1:
            only = components[0].pattern
            for _ in range(count):
                yield MemoryAccess(
                    only.next_address(),
                    is_write=self._write_rng.uniform() < self.write_fraction,
                )
            return
        for _ in range(count):
            component = self._pick_rng.weighted_choice(components, self._weights)
            yield MemoryAccess(
                component.pattern.next_address(),
                is_write=self._write_rng.uniform() < self.write_fraction,
            )

    def address_stream(self, count: int) -> Iterator[Tuple[int, bool]]:
        """Yield ``(address, is_write)`` tuples (lighter than dataclasses)."""
        for access in self.accesses(count):
            yield access.address, access.is_write
