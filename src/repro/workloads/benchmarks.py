"""The fifteen SPEC2006-like benchmark profiles.

The paper (Section 6) uses fifteen SPEC2006 C/C++ benchmarks, classifies
them by cache-space sensitivity into three groups (Figure 4), and picks
one representative per group: **bzip2** (Group 1, highly sensitive),
**hmmer** (Group 2, moderately sensitive), **gobmk** (Group 3,
insensitive).  Table 1 reports their L2 miss rate and misses per
instruction at a 7-way allocation.

Here each benchmark is a :class:`BenchmarkProfile`: a weighted mixture
of access-pattern primitives plus CPI-model parameters.  Footprints and
weights are calibrated so that

- the three representatives land near their Table 1 miss statistics at
  7 ways, and
- the fifteen profiles scatter into the paper's three sensitivity
  groups when classified by CPI increase from 7→1 and 7→4 ways
  (reproduced by ``benchmarks/bench_fig4_sensitivity.py``).

The absolute constants are synthetic; DESIGN.md §1 records this
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cpu.cpi import CpiModel
from repro.util.validation import check_fraction, check_positive
from repro.workloads.generator import MixtureComponent, TraceGenerator
from repro.workloads.patterns import (
    AccessPattern,
    LoopPattern,
    StreamingPattern,
    ZipfPattern,
)


@dataclass(frozen=True)
class ComponentSpec:
    """Declarative description of one mixture component."""

    kind: str  # 'loop' | 'zipf' | 'stream'
    footprint_ways: float
    weight: float
    alpha: float = 1.0

    def build(self) -> AccessPattern:
        """Instantiate the pattern primitive."""
        if self.kind == "loop":
            return LoopPattern(self.footprint_ways)
        if self.kind == "zipf":
            return ZipfPattern(self.footprint_ways, alpha=self.alpha)
        if self.kind == "stream":
            return StreamingPattern(self.footprint_ways)
        raise ValueError(f"unknown component kind {self.kind!r}")


@dataclass(frozen=True)
class BenchmarkProfile:
    """One synthetic benchmark: access mixture + CPI parameters.

    Attributes
    ----------
    name:
        SPEC2006-style benchmark name.
    group:
        Sensitivity group per Figure 4 (1 = highly sensitive,
        2 = moderately sensitive, 3 = insensitive).
    components:
        Access-pattern mixture defining the L2 access stream.
    l2_accesses_per_instruction:
        ``h2`` of the CPI model; also converts trace length (L2
        accesses) into instructions.
    cpi_l1_inf:
        Compute CPI with an infinite L1.
    write_fraction:
        Fraction of L2 accesses that are writes.
    """

    name: str
    group: int
    components: Tuple[ComponentSpec, ...]
    l2_accesses_per_instruction: float
    cpi_l1_inf: float
    write_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.group not in (1, 2, 3):
            raise ValueError(f"group must be 1, 2 or 3, got {self.group}")
        if not self.components:
            raise ValueError(f"benchmark {self.name} has no components")
        check_positive(
            "l2_accesses_per_instruction", self.l2_accesses_per_instruction
        )
        check_positive("cpi_l1_inf", self.cpi_l1_inf)
        check_fraction("write_fraction", self.write_fraction)

    def make_generator(self) -> TraceGenerator:
        """Build a fresh (unbound) trace generator for one job instance."""
        return TraceGenerator(
            [
                MixtureComponent(spec.build(), spec.weight)
                for spec in self.components
            ],
            write_fraction=self.write_fraction,
        )

    def cpi_model(
        self, *, l2_latency: float = 10.0, memory_latency: float = 300.0
    ) -> CpiModel:
        """The benchmark's CPI decomposition on the machine model."""
        return CpiModel(
            cpi_l1_inf=self.cpi_l1_inf,
            l2_accesses_per_instruction=self.l2_accesses_per_instruction,
            l2_access_penalty=l2_latency,
            l2_miss_penalty=memory_latency,
        )

    @property
    def hot_footprint_ways(self) -> float:
        """Ways-worth of blocks the benchmark keeps resident.

        The sum of the non-streaming components' footprints — what a
        context switch actually evicts and the next quantum must
        re-fetch (streaming blocks are dead on arrival either way).
        Used by the EqualPart timesharing model's refill penalty.
        """
        return sum(
            spec.footprint_ways
            for spec in self.components
            if spec.kind != "stream"
        )

    def instructions_for_accesses(self, accesses: int) -> int:
        """Instructions represented by ``accesses`` L2 accesses."""
        return round(accesses / self.l2_accesses_per_instruction)

    def accesses_for_instructions(self, instructions: int) -> int:
        """L2 accesses generated while retiring ``instructions``."""
        return max(1, round(instructions * self.l2_accesses_per_instruction))


def _profile(
    name: str,
    group: int,
    components: Tuple[ComponentSpec, ...],
    h2: float,
    cpi_l1_inf: float,
    write_fraction: float = 0.2,
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        group=group,
        components=components,
        l2_accesses_per_instruction=h2,
        cpi_l1_inf=cpi_l1_inf,
        write_fraction=write_fraction,
    )


# ----------------------------------------------------------------------------
# Group 1 -- highly cache-sensitive.  Shape: a streaming floor, a mid-size
# loop whose LRU cliff sits just below the 7-way request (so the miss rate
# is low at >= 7 ways and climbs steeply below), and a hot Zipf head that
# keeps the 1-way plateau moderate (Opportunistic instances must remain
# runnable on spare ways, Section 7.1).  bzip2's constants are calibrated
# to Table 1 (20% miss rate, 0.0055 MPI at 7 ways) and to the paper's solo
# IPC of 0.375 in Figure 1.
# ----------------------------------------------------------------------------

_GROUP1 = (
    _profile(
        "bzip2",
        1,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.17),
            ComponentSpec("loop", footprint_ways=3.3, weight=0.19),
            ComponentSpec("zipf", footprint_ways=0.7, weight=0.64, alpha=1.2),
        ),
        h2=0.0275,
        cpi_l1_inf=1.00,
    ),
    _profile(
        "mcf",
        1,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.20),
            ComponentSpec("loop", footprint_ways=3.2, weight=0.30),
            ComponentSpec("zipf", footprint_ways=0.7, weight=0.50, alpha=1.15),
        ),
        h2=0.060,
        cpi_l1_inf=1.10,
    ),
    _profile(
        "soplex",
        1,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.13),
            ComponentSpec("loop", footprint_ways=2.9, weight=0.20),
            ComponentSpec("zipf", footprint_ways=0.7, weight=0.67, alpha=1.2),
        ),
        h2=0.035,
        cpi_l1_inf=1.05,
    ),
    _profile(
        "astar",
        1,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.11),
            ComponentSpec("loop", footprint_ways=3.6, weight=0.17),
            ComponentSpec("zipf", footprint_ways=0.9, weight=0.72, alpha=1.1),
        ),
        h2=0.022,
        cpi_l1_inf=1.00,
    ),
    _profile(
        "sphinx",
        1,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.16),
            ComponentSpec("loop", footprint_ways=3.1, weight=0.23),
            ComponentSpec("zipf", footprint_ways=0.6, weight=0.61, alpha=1.2),
        ),
        h2=0.030,
        cpi_l1_inf=0.95,
    ),
)

# ----------------------------------------------------------------------------
# Group 2 -- moderately sensitive: the loop cliff sits at 2-3 ways, so the
# CPI barely moves from 7 to 4 ways but jumps from 7 to 1 (the Figure 4
# signature of this group).  hmmer is calibrated to Table 1 (17% miss
# rate, 0.001 MPI at 7 ways).
# ----------------------------------------------------------------------------

_GROUP2 = (
    _profile(
        "hmmer",
        2,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.13),
            ComponentSpec("loop", footprint_ways=2.6, weight=0.11),
            ComponentSpec("zipf", footprint_ways=0.6, weight=0.76, alpha=1.2),
        ),
        h2=0.0059,
        cpi_l1_inf=0.90,
    ),
    _profile(
        "gcc",
        2,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.15),
            ComponentSpec("loop", footprint_ways=2.3, weight=0.13),
            ComponentSpec("zipf", footprint_ways=0.5, weight=0.72, alpha=1.2),
        ),
        h2=0.012,
        cpi_l1_inf=1.05,
    ),
    _profile(
        "perl",
        2,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.11),
            ComponentSpec("loop", footprint_ways=2.0, weight=0.12),
            ComponentSpec("zipf", footprint_ways=0.55, weight=0.77, alpha=1.25),
        ),
        h2=0.009,
        cpi_l1_inf=1.00,
    ),
    _profile(
        "h264ref",
        2,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.12),
            ComponentSpec("loop", footprint_ways=2.8, weight=0.10),
            ComponentSpec("zipf", footprint_ways=0.45, weight=0.78, alpha=1.15),
        ),
        h2=0.008,
        cpi_l1_inf=0.95,
    ),
    _profile(
        "milc",
        2,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.20),
            ComponentSpec("loop", footprint_ways=1.5, weight=0.10),
            ComponentSpec("zipf", footprint_ways=0.5, weight=0.70, alpha=1.1),
        ),
        h2=0.018,
        cpi_l1_inf=1.10,
    ),
)

# ----------------------------------------------------------------------------
# Group 3 -- cache-insensitive: a dominant streaming/huge-loop component
# plus a tiny hot set that fits in a single way; the miss-ratio curve is
# essentially flat, which is what makes these ideal stealing donors.
# gobmk is calibrated to Table 1 (24% miss rate, 0.004 MPI at 7 ways).
# ----------------------------------------------------------------------------

_GROUP3 = (
    _profile(
        "gobmk",
        3,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.26),
            ComponentSpec("zipf", footprint_ways=0.35, weight=0.74, alpha=1.3),
        ),
        h2=0.0167,
        cpi_l1_inf=1.05,
    ),
    _profile(
        "sjeng",
        3,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.17),
            ComponentSpec("zipf", footprint_ways=0.3, weight=0.83, alpha=1.3),
        ),
        h2=0.010,
        cpi_l1_inf=1.00,
    ),
    _profile(
        "libquantum",
        3,
        (
            ComponentSpec("loop", footprint_ways=64.0, weight=0.72),
            ComponentSpec("zipf", footprint_ways=0.25, weight=0.28, alpha=1.3),
        ),
        h2=0.025,
        cpi_l1_inf=0.85,
    ),
    _profile(
        "namd",
        3,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.12),
            ComponentSpec("zipf", footprint_ways=0.3, weight=0.88, alpha=1.35),
        ),
        h2=0.004,
        cpi_l1_inf=0.90,
    ),
    _profile(
        "povray",
        3,
        (
            ComponentSpec("stream", footprint_ways=256.0, weight=0.10),
            ComponentSpec("zipf", footprint_ways=0.4, weight=0.90, alpha=1.3),
        ),
        h2=0.003,
        cpi_l1_inf=0.95,
    ),
)

BENCHMARKS: Dict[str, BenchmarkProfile] = {
    profile.name: profile for profile in (_GROUP1 + _GROUP2 + _GROUP3)
}

#: The paper's representative benchmark per sensitivity group.
REPRESENTATIVES: Dict[int, str] = {1: "bzip2", 2: "hmmer", 3: "gobmk"}


def get_benchmark(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; expected one of "
            f"{sorted(BENCHMARKS)}"
        ) from None
