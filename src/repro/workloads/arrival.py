"""Job arrivals and deadline assignment (Section 6, "Workload Composition").

The paper assumes Poisson arrivals at the rate of a fully-utilised
128-CMP server: on a 4-core CMP, 4 × 128 jobs arrive (and probe the
LAC) per job wall-clock time.  Deadlines are assigned pseudo-randomly:
50% tight (``td - ta = 1.05 tw``), 30% moderate (``2 tw``), 20% relaxed
(``3 tw``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.util.rng import DeterministicRng
from repro.util.validation import check_fraction, check_positive


class DeadlineClass(enum.Enum):
    """The paper's three deadline tightness classes."""

    TIGHT = "tight"
    MODERATE = "moderate"
    RELAXED = "relaxed"


#: ``(td - ta) / tw`` per class (Section 6).
DEADLINE_MULTIPLIERS = {
    DeadlineClass.TIGHT: 1.05,
    DeadlineClass.MODERATE: 2.0,
    DeadlineClass.RELAXED: 3.0,
}


@dataclass(frozen=True)
class DeadlinePolicy:
    """Pseudo-random deadline-class assignment with the paper's mix."""

    tight_fraction: float = 0.5
    moderate_fraction: float = 0.3
    relaxed_fraction: float = 0.2

    def __post_init__(self) -> None:
        check_fraction("tight_fraction", self.tight_fraction)
        check_fraction("moderate_fraction", self.moderate_fraction)
        check_fraction("relaxed_fraction", self.relaxed_fraction)
        total = (
            self.tight_fraction + self.moderate_fraction + self.relaxed_fraction
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"deadline fractions must sum to 1, got {total}")

    def assign(self, count: int, rng: DeterministicRng) -> List[DeadlineClass]:
        """Draw ``count`` deadline classes with the configured mix."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        classes = [
            DeadlineClass.TIGHT,
            DeadlineClass.MODERATE,
            DeadlineClass.RELAXED,
        ]
        weights = [
            self.tight_fraction,
            self.moderate_fraction,
            self.relaxed_fraction,
        ]
        return [rng.weighted_choice(classes, weights) for _ in range(count)]

    @staticmethod
    def multiplier(deadline_class: DeadlineClass) -> float:
        """``(td - ta) / tw`` for the class."""
        return DEADLINE_MULTIPLIERS[deadline_class]

    @staticmethod
    def is_auto_downgradable(deadline_class: DeadlineClass) -> bool:
        """All-Strict+AutoDown downgrades moderate/relaxed jobs only.

        Table 2: "jobs with moderate or relaxed deadlines are
        automatically downgraded" — tight jobs have too little slack to
        run Opportunistically first.
        """
        return deadline_class in (DeadlineClass.MODERATE, DeadlineClass.RELAXED)


class PoissonArrivals:
    """Poisson process over probe/arrival instants."""

    def __init__(self, mean_interarrival: float, rng: DeterministicRng) -> None:
        check_positive("mean_interarrival", mean_interarrival)
        self.mean_interarrival = mean_interarrival
        self._rng = rng

    def next_gap(self) -> float:
        """Draw one exponential inter-arrival gap."""
        return self._rng.exponential(self.mean_interarrival)

    def times(self, count: int, *, start: float = 0.0) -> List[float]:
        """The first ``count`` arrival instants after ``start``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        times = []
        now = start
        for _ in range(count):
            now += self.next_gap()
            times.append(now)
        return times

    def stream(self, *, start: float = 0.0) -> Iterator[float]:
        """Unbounded arrival instants (generator)."""
        now = start
        while True:
            now += self.next_gap()
            yield now


def saturation_interarrival(
    job_wall_clock: float, *, cores_per_cmp: int = 4, cmp_count: int = 128
) -> float:
    """Mean inter-arrival at full server utilisation (Section 6).

    ``cores_per_cmp * cmp_count`` jobs arrive per job wall-clock time,
    so the mean gap is ``tw / (cores * cmps)`` — ``tw / 512`` for the
    paper's setup.
    """
    check_positive("job_wall_clock", job_wall_clock)
    check_positive("cores_per_cmp", cores_per_cmp)
    check_positive("cmp_count", cmp_count)
    return job_wall_clock / (cores_per_cmp * cmp_count)
