"""Access-pattern primitives for synthetic traces.

Each pattern emits block-aligned byte addresses inside its own private
region of the address space.  Footprints are specified in *ways-worth of
blocks*: a footprint of 6.0 means the pattern touches
``6.0 * num_sets`` distinct blocks spread evenly over the sets, i.e. it
needs 6 ways per set to be fully cache-resident.  Specifying footprints
this way makes miss-ratio curves (misses vs allocated ways) invariant
to the set count, so profiling can run on a scaled-down geometry.

Three primitives cover the behaviours needed to reproduce the paper's
sensitivity classes (Figure 4):

- :class:`LoopPattern` — cyclic sweep over its footprint.  Under LRU it
  is all-or-nothing: hits when the footprint fits the allocation,
  misses when it does not (the classic LRU cliff).
- :class:`ZipfPattern` — popularity-skewed random accesses.  Produces
  smooth, concave miss-ratio curves; the workhorse for cache-sensitive
  benchmarks.
- :class:`StreamingPattern` — ever-advancing addresses with no reuse.
  Misses at any allocation; the workhorse for cache-insensitive
  benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.util.rng import DeterministicRng
from repro.util.validation import check_positive


class AccessPattern(ABC):
    """A stateful generator of block addresses within a private region.

    ``bind`` fixes the cache geometry (set count, block size) and the
    region base address; ``next_address`` then yields addresses one at a
    time.  Patterns are deliberately cheap per call: the system profiler
    draws millions of addresses.
    """

    def __init__(self, footprint_ways: float) -> None:
        check_positive("footprint_ways", footprint_ways)
        self.footprint_ways = footprint_ways
        self._bound = False

    def bind(
        self,
        *,
        num_sets: int,
        block_bytes: int,
        region_base: int,
        rng: DeterministicRng,
    ) -> None:
        """Materialise the pattern for a concrete geometry and region."""
        check_positive("num_sets", num_sets)
        check_positive("block_bytes", block_bytes)
        self.num_sets = num_sets
        self.block_bytes = block_bytes
        self.region_base = region_base
        self.rng = rng
        self.num_blocks = max(1, round(self.footprint_ways * num_sets))
        self._bound = True
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclass state initialisation after binding."""

    def region_bytes(self) -> int:
        """Size of the private address region this pattern needs."""
        if not self._bound:
            raise RuntimeError("pattern must be bound before use")
        return self.num_blocks * self.block_bytes

    def _block_to_address(self, block_index: int) -> int:
        """Map a logical block index to a byte address in the region.

        Consecutive logical blocks map to consecutive sets, so a
        footprint of W ways occupies exactly W blocks in every set —
        the property that makes footprints way-denominated.
        """
        return self.region_base + block_index * self.block_bytes

    @abstractmethod
    def next_address(self) -> int:
        """Return the next byte address of the pattern."""


class LoopPattern(AccessPattern):
    """Cyclic sequential sweep over the footprint (LRU cliff behaviour)."""

    def _on_bind(self) -> None:
        self._cursor = 0

    def next_address(self) -> int:
        address = self._block_to_address(self._cursor)
        self._cursor = (self._cursor + 1) % self.num_blocks
        return address


class ZipfPattern(AccessPattern):
    """Zipf-popular random accesses over the footprint.

    ``alpha`` controls skew: larger alpha concentrates accesses on a
    hotter head, making the pattern *more* tolerant of small
    allocations (the hot head fits first).
    """

    def __init__(self, footprint_ways: float, *, alpha: float = 1.0) -> None:
        super().__init__(footprint_ways)
        check_positive("alpha", alpha)
        self.alpha = alpha

    def _on_bind(self) -> None:
        # Scatter popularity ranks over the region so that hot blocks are
        # spread across sets rather than clustered in the first sets.
        self._rank_to_block = list(range(self.num_blocks))
        self.rng.shuffle(self._rank_to_block)

    def next_address(self) -> int:
        rank = self.rng.zipf_index(self.num_blocks, self.alpha)
        return self._block_to_address(self._rank_to_block[rank])


class PhasedPattern(AccessPattern):
    """Alternates between sub-patterns every ``phase_length`` accesses.

    Models program *phases* — e.g. a build phase streaming through a
    structure followed by a compute phase looping over a hot set.
    Phase changes are what stress the resource-stealing controller's
    cancel path: capacity that looked excess in one phase becomes hot
    in the next, the shadow tags register the miss surge, and the
    stolen ways snap back.

    The pattern's footprint is the maximum of its phases' footprints
    (phases reuse one region, as a real program's address space does).
    """

    def __init__(
        self,
        phases: Sequence[AccessPattern],
        *,
        phase_length: int = 2_048,
    ) -> None:
        if not phases:
            raise ValueError("PhasedPattern needs at least one phase")
        check_positive("phase_length", phase_length)
        super().__init__(max(p.footprint_ways for p in phases))
        self.phases = list(phases)
        self.phase_length = phase_length

    def _on_bind(self) -> None:
        for index, phase in enumerate(self.phases):
            phase.bind(
                num_sets=self.num_sets,
                block_bytes=self.block_bytes,
                region_base=self.region_base,
                rng=self.rng.stream(f"phase-{index}"),
            )
        self._current = 0
        self._remaining = self.phase_length

    @property
    def current_phase(self) -> int:
        """Index of the phase currently generating accesses."""
        return self._current

    def next_address(self) -> int:
        if self._remaining == 0:
            self._current = (self._current + 1) % len(self.phases)
            self._remaining = self.phase_length
        self._remaining -= 1
        return self.phases[self._current].next_address()


class StreamingPattern(AccessPattern):
    """No-reuse streaming: advances forever through a wrapping window.

    The footprint sets the wrap window (kept much larger than any
    realistic allocation), so by the time the stream wraps, its old
    blocks have long been evicted — every access misses regardless of
    the partition size.
    """

    def __init__(self, footprint_ways: float = 256.0) -> None:
        super().__init__(footprint_ways)

    def _on_bind(self) -> None:
        self._cursor = 0
        # Stride by an odd number of blocks so consecutive accesses land
        # in different sets (like a real streaming kernel's cache walk).
        self._stride = 1

    def next_address(self) -> int:
        address = self._block_to_address(self._cursor)
        self._cursor = (self._cursor + self._stride) % self.num_blocks
        return address
