"""The paper's contribution: the CMP QoS framework.

Modules map one-to-one onto the paper's sections:

- :mod:`repro.core.spec` — QoS target specification (Section 3.2):
  Resource Usage Metrics (RUM) vectors, the convertibility property,
  preset targets, and non-convertible RPM/OPM targets kept to
  demonstrate *why* the paper rejects them.
- :mod:`repro.core.modes` — Strict / Elastic(X) / Opportunistic
  execution modes, interchangeability, and manual/automatic mode
  downgrade (Sections 3.3–3.4).
- :mod:`repro.core.job` — the unit of admission: a job with a QoS
  target, deadline bookkeeping, and lifecycle state.
- :mod:`repro.core.admission` — the Local Admission Controller
  (Section 5): FCFS admission with resource-timeline reservation.
- :mod:`repro.core.advisor` — the Section 3.1/3.3 negotiation loop:
  enumerate admissible downgrades and counter-offers for a rejected
  job.
- :mod:`repro.core.gac` — the Global Admission Controller probing
  multiple CMP nodes (Section 3.1).
- :mod:`repro.core.cluster` — reservation-level multi-node server
  simulation and capacity sizing (the Figure 2 architecture at scale).
- :mod:`repro.core.ipc_manager` — the prior-work IPC-target resource
  manager the introduction contrasts against (the Figure 1 foil).
- :mod:`repro.core.stealing` — the resource-stealing controller
  (Section 4), driven by shadow-tag (or curve-predicted) miss
  feedback.
- :mod:`repro.core.config` — the Table 2 evaluation configurations.
- :mod:`repro.core.metrics` — deadline hit rate, throughput, and
  wall-clock summaries (Section 7).
"""

from repro.core.advisor import AdmissionOption, advise
from repro.core.admission import (
    AdmissionDecision,
    LocalAdmissionController,
    Reservation,
)
from repro.core.config import (
    ALL_STRICT,
    ALL_STRICT_AUTODOWN,
    CONFIGURATIONS,
    EQUAL_PART,
    HYBRID_1,
    HYBRID_2,
    ModeMixConfig,
)
from repro.core.cluster import (
    ClusterJobProfile,
    ClusterReport,
    ClusterSimulator,
    size_cluster,
)
from repro.core.gac import GlobalAdmissionController, NodeProbeResult
from repro.core.ipc_manager import (
    IpcManagedJob,
    IpcTargetManager,
    RebalanceResult,
)
from repro.core.job import Job, JobState
from repro.core.metrics import (
    DeadlineReport,
    LacOccupancyTracker,
    ThroughputReport,
    WallClockSummary,
)
from repro.core.modes import ExecutionMode, ModeKind
from repro.core.partitioners import (
    PartitionedJob,
    equal_partition,
    evaluate_partition,
    fair_slowdown_partition,
    min_miss_partition,
)
from repro.core.spec import (
    IpcTarget,
    MissRateTarget,
    PRESET_TARGETS,
    QoSTarget,
    ResourceVector,
    TimeslotRequest,
)
from repro.core.stealing import ResourceStealingController, StealingState

__all__ = [
    "ResourceVector",
    "TimeslotRequest",
    "QoSTarget",
    "IpcTarget",
    "MissRateTarget",
    "PRESET_TARGETS",
    "ExecutionMode",
    "ModeKind",
    "Job",
    "JobState",
    "LocalAdmissionController",
    "AdmissionDecision",
    "Reservation",
    "advise",
    "AdmissionOption",
    "GlobalAdmissionController",
    "NodeProbeResult",
    "ClusterSimulator",
    "ClusterJobProfile",
    "ClusterReport",
    "size_cluster",
    "IpcTargetManager",
    "IpcManagedJob",
    "RebalanceResult",
    "PartitionedJob",
    "equal_partition",
    "min_miss_partition",
    "fair_slowdown_partition",
    "evaluate_partition",
    "ResourceStealingController",
    "StealingState",
    "ModeMixConfig",
    "ALL_STRICT",
    "HYBRID_1",
    "HYBRID_2",
    "ALL_STRICT_AUTODOWN",
    "EQUAL_PART",
    "CONFIGURATIONS",
    "DeadlineReport",
    "ThroughputReport",
    "WallClockSummary",
    "LacOccupancyTracker",
]
