"""The Global Admission Controller (Section 3.1).

A server platform consists of multiple CMP nodes, each with its own
Local Admission Controller.  The GAC receives newly submitted jobs,
probes each node's LAC for a feasible reservation, and places the job
on the first node that can satisfy its QoS target.  When no node can,
the job is rejected — or, as the paper suggests, the GAC can *negotiate*
by proposing the earliest deadline some node could honour.

The paper scopes its evaluation to a single node's LAC; the GAC here is
the straightforward realisation of the architecture in Figure 2, used
by the server-consolidation example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.admission import AdmissionDecision, LocalAdmissionController
from repro.core.job import Job
from repro.core.modes import ModeKind
from repro.core.spec import QoSTarget, TimeslotRequest


@dataclass(frozen=True)
class NodeProbeResult:
    """One node's answer to a GAC probe."""

    node_index: int
    decision: AdmissionDecision


@dataclass(frozen=True)
class PlacementResult:
    """The GAC's overall outcome for one job."""

    accepted: bool
    node_index: Optional[int]
    decision: Optional[AdmissionDecision]
    probes: Sequence[NodeProbeResult]
    counter_offer_deadline: Optional[float] = None


class GlobalAdmissionController:
    """Places jobs across CMP nodes by probing their LACs.

    Two placement policies:

    - ``first_fit`` (default): probe nodes in order, take the first
      acceptance — the minimal policy the paper's Figure 2 implies.
    - ``least_loaded``: probe the nodes in ascending order of their
      current core load, spreading reservations so bursts of large
      jobs find headroom somewhere.
    """

    PLACEMENT_POLICIES = ("first_fit", "least_loaded")

    def __init__(
        self,
        nodes: Sequence[LocalAdmissionController],
        *,
        placement_policy: str = "first_fit",
    ) -> None:
        if not nodes:
            raise ValueError("the GAC needs at least one CMP node")
        if placement_policy not in self.PLACEMENT_POLICIES:
            raise ValueError(
                f"placement_policy must be one of "
                f"{self.PLACEMENT_POLICIES}, got {placement_policy!r}"
            )
        self.nodes: List[LocalAdmissionController] = list(nodes)
        self.placement_policy = placement_policy

    def _probe_order(self, now: float) -> List[int]:
        indices = list(range(len(self.nodes)))
        if self.placement_policy == "least_loaded":
            indices.sort(
                key=lambda i: (
                    self.nodes[i].used_at(now).cores,
                    self.nodes[i].used_at(now).cache_ways,
                    i,
                )
            )
        return indices

    def place(
        self, job: Job, *, now: float, auto_downgrade: bool = False
    ) -> PlacementResult:
        """Probe nodes (in policy order); admit on the first feasible one.

        When every node refuses and the job has a deadline, a
        counter-offer deadline is computed (the negotiation avenue in
        Section 3.1): the earliest completion some node could guarantee
        if the user relaxed the deadline.
        """
        probes: List[NodeProbeResult] = []
        for index in self._probe_order(now):
            node = self.nodes[index]
            decision = node.admit(job, now=now, auto_downgrade=auto_downgrade)
            probes.append(NodeProbeResult(index, decision))
            if decision.accepted:
                return PlacementResult(True, index, decision, probes)
        counter = self._counter_offer(job, now)
        return PlacementResult(False, None, None, probes, counter)

    def _counter_offer(self, job: Job, now: float) -> Optional[float]:
        """Earliest deadline any node could satisfy, ignoring the current one."""
        if job.target.timeslot is None:
            return None
        mode = job.target.mode
        if mode.kind is ModeKind.OPPORTUNISTIC:
            return None
        duration = mode.reservation_duration(job.target.timeslot.max_wall_clock)
        best: Optional[float] = None
        for node in self.nodes:
            start = node.earliest_fit(
                job.target.resources, duration, not_before=now
            )
            if start is None:
                continue
            completion = start + duration
            if best is None or completion < best:
                best = completion
        return best

    def renegotiated_target(
        self, job: Job, *, now: float
    ) -> Optional[QoSTarget]:
        """A copy of the job's target with the counter-offer deadline.

        Returns ``None`` when no node can ever fit the request (the
        request exceeds every node's capacity).
        """
        offer = self._counter_offer(job, now)
        if offer is None or job.target.timeslot is None:
            return None
        relaxed = TimeslotRequest(
            max_wall_clock=job.target.timeslot.max_wall_clock,
            deadline=offer,
        )
        return QoSTarget(job.target.resources, relaxed, job.target.mode)

    def total_capacity_cores(self) -> int:
        """Aggregate core count over all nodes."""
        return sum(node.capacity.cores for node in self.nodes)

    def load_at(self, time: float) -> float:
        """Fraction of aggregate cores reserved at ``time``."""
        total = self.total_capacity_cores()
        if total == 0:
            return 0.0
        used = sum(node.used_at(time).cores for node in self.nodes)
        return used / total
