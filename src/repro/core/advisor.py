"""Admission advisor: what to do when a job cannot be admitted as-is.

Section 3.3 expects *users* to pick execution modes, and Section 3.1's
GAC "negotiates with the user for another acceptable QoS target" on
rejection.  This module packages that negotiation into one call: given
a job and a node, :func:`advise` returns the admission options, each a
concrete, re-submittable target —

1. as requested (when it fits);
2. the same resources under an interchangeable *Elastic(X)* downgrade
   (X derived from the job's own time slack, Section 3.3's formula);
3. Opportunistic execution (no guarantee, always admissible);
4. the original mode with the earliest deadline the node could honour
   (the GAC counter-offer).

Every reserved-mode option returned has been admission-*tested* (a
trial reservation is made and immediately cancelled), so acting on an
option cannot fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.admission import LocalAdmissionController
from repro.core.job import Job
from repro.core.modes import (
    ExecutionMode,
    ModeKind,
    downgrade_to_elastic,
)
from repro.core.spec import QoSTarget, TimeslotRequest


@dataclass(frozen=True)
class AdmissionOption:
    """One concrete way the job could be admitted."""

    description: str
    target: QoSTarget
    reserved_start: Optional[float]
    guaranteed: bool

    @property
    def mode(self) -> ExecutionMode:
        """The option's execution mode."""
        return self.target.mode


def _trial(
    lac: LocalAdmissionController,
    job: Job,
    target: QoSTarget,
    *,
    now: float,
) -> Optional[float]:
    """Admission-test ``target`` without keeping the reservation.

    Returns the reserved start on success, ``None`` otherwise.
    """
    trial_job = Job(
        job_id=job.job_id,
        benchmark=job.benchmark,
        target=target,
        arrival_time=now,
        instructions=job.instructions,
    )
    decision = lac.admit(trial_job, now=now)
    if not decision.accepted:
        return None
    start = decision.reserved_start
    if decision.reservation is not None:
        lac.cancel(decision.reservation)
    return start if start is not None else now


def advise(
    lac: LocalAdmissionController,
    job: Job,
    *,
    now: float,
) -> List[AdmissionOption]:
    """Enumerate admissible targets for ``job`` on ``lac``.

    Options are ordered strongest-first: the original request, then
    interchangeable downgrades, then the deadline counter-offer, then
    Opportunistic.  The list is never empty (Opportunistic always
    admits) unless the request exceeds the node's very capacity, in
    which case it is empty — no target shaped like this one can ever
    run here.
    """
    if not job.target.resources.fits_within(lac.capacity):
        return []
    options: List[AdmissionOption] = []
    timeslot = job.target.timeslot

    # 1. As requested.
    start = _trial(lac, job, job.target, now=now)
    if start is not None:
        options.append(
            AdmissionOption(
                description="as requested",
                target=job.target,
                reserved_start=start,
                guaranteed=job.target.mode.reserves_resources,
            )
        )

    # 2. Interchangeable Elastic downgrade (Strict jobs with slack).
    if (
        timeslot is not None
        and timeslot.deadline is not None
        and job.target.mode.kind is ModeKind.STRICT
    ):
        elastic = downgrade_to_elastic(
            now, timeslot.deadline, timeslot.max_wall_clock
        )
        if elastic is not None:
            target = job.target.with_mode(elastic)
            start = _trial(lac, job, target, now=now)
            if start is not None and not any(
                o.description == "as requested" for o in options
            ):
                options.append(
                    AdmissionOption(
                        description=(
                            f"downgrade to {elastic.describe()} "
                            "(same deadline, stealable)"
                        ),
                        target=target,
                        reserved_start=start,
                        guaranteed=True,
                    )
                )

    # 3. Deadline counter-offer in the original mode.
    if (
        timeslot is not None
        and job.target.mode.reserves_resources
        and not any(o.description == "as requested" for o in options)
    ):
        duration = job.target.mode.reservation_duration(
            timeslot.max_wall_clock
        )
        start = lac.earliest_fit(
            job.target.resources, duration, not_before=now
        )
        if start is not None:
            relaxed = QoSTarget(
                job.target.resources,
                TimeslotRequest(
                    max_wall_clock=timeslot.max_wall_clock,
                    deadline=start + duration,
                ),
                job.target.mode,
            )
            confirmed = _trial(lac, job, relaxed, now=now)
            if confirmed is not None:
                options.append(
                    AdmissionOption(
                        description=(
                            f"keep {job.target.mode.describe()}, relax "
                            f"deadline to {start + duration:.6g}"
                        ),
                        target=relaxed,
                        reserved_start=confirmed,
                        guaranteed=True,
                    )
                )

    # 4. Opportunistic: always admissible, never guaranteed.
    if job.target.mode.kind is not ModeKind.OPPORTUNISTIC:
        options.append(
            AdmissionOption(
                description="run Opportunistically (no guarantee)",
                target=job.target.with_mode(
                    ExecutionMode.opportunistic()
                ),
                reserved_start=None,
                guaranteed=False,
            )
        )
    return options
