"""Reservation-level cluster simulation (the Figure 2 server).

The paper's working environment is a server of CMP nodes fronted by a
Global Admission Controller; its evaluation stays within one node.
This module scales the admission machinery up: a Poisson stream of
QoS jobs arrives at the GAC, which probes every node's LAC and places
or rejects.  Fidelity is *reservation-level* — each accepted job simply
occupies its reservation for its maximum wall-clock time (the Strict
contract) — which is exactly the granularity capacity-planning
questions need: how many nodes does a given arrival rate and SLA mix
require before the rejection rate exceeds the budget?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.admission import LocalAdmissionController
from repro.core.gac import GlobalAdmissionController
from repro.core.job import Job
from repro.core.modes import ExecutionMode
from repro.core.spec import QoSTarget, ResourceVector, TimeslotRequest
from repro.util.rng import DeterministicRng
from repro.util.stats import RunningStats
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ClusterJobProfile:
    """Distribution of one job class in the arriving mix."""

    name: str
    weight: float
    resources: ResourceVector
    mean_wall_clock: float
    deadline_multiplier: float = 2.0

    def __post_init__(self) -> None:
        check_positive("weight", self.weight)
        check_positive("mean_wall_clock", self.mean_wall_clock)
        if self.deadline_multiplier < 1.0:
            raise ValueError(
                f"deadline_multiplier must be >= 1, got "
                f"{self.deadline_multiplier}"
            )


@dataclass
class ClusterReport:
    """What one cluster run measured."""

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    placements_per_node: Dict[int, int] = field(default_factory=dict)
    acceptance_by_class: Dict[str, Tuple[int, int]] = field(
        default_factory=dict
    )  # name -> (accepted, submitted)
    load_samples: RunningStats = field(default_factory=RunningStats)
    counter_offers: int = 0

    @property
    def acceptance_rate(self) -> float:
        """Accepted / submitted (1.0 when nothing was submitted)."""
        return self.accepted / self.submitted if self.submitted else 1.0

    @property
    def mean_load(self) -> float:
        """Average fraction of cluster cores reserved."""
        return self.load_samples.mean

    def class_acceptance_rate(self, name: str) -> float:
        """Acceptance rate for one job class."""
        accepted, submitted = self.acceptance_by_class.get(name, (0, 0))
        return accepted / submitted if submitted else 1.0


class ClusterSimulator:
    """Drive a Poisson job stream through a GAC over N CMP nodes."""

    def __init__(
        self,
        *,
        num_nodes: int,
        node_capacity: Optional[ResourceVector] = None,
        profiles: Sequence[ClusterJobProfile],
        mean_interarrival: float,
        seed: int = 42,
        placement_policy: str = "first_fit",
    ) -> None:
        check_positive("num_nodes", num_nodes)
        check_positive("mean_interarrival", mean_interarrival)
        if not profiles:
            raise ValueError("at least one job profile is required")
        self.num_nodes = num_nodes
        self.node_capacity = (
            node_capacity
            if node_capacity is not None
            else ResourceVector(cores=4, cache_ways=16)
        )
        self.profiles = list(profiles)
        self.mean_interarrival = mean_interarrival
        self.placement_policy = placement_policy
        self.rng = DeterministicRng(seed, "cluster")

    def run(self, *, horizon: float) -> ClusterReport:
        """Simulate arrivals in ``[0, horizon)`` and report.

        The load is sampled at every arrival instant, giving a
        job-averaged utilisation (PASTA: Poisson arrivals see time
        averages).
        """
        check_positive("horizon", horizon)
        nodes = [
            LocalAdmissionController(self.node_capacity)
            for _ in range(self.num_nodes)
        ]
        gac = GlobalAdmissionController(
            nodes, placement_policy=self.placement_policy
        )
        report = ClusterReport()

        arrival_rng = self.rng.stream("arrivals")
        pick_rng = self.rng.stream("class-pick")
        wall_rng = self.rng.stream("wall-clock")
        weights = [p.weight for p in self.profiles]

        now = arrival_rng.exponential(self.mean_interarrival)
        job_id = 0
        while now < horizon:
            job_id += 1
            profile = pick_rng.weighted_choice(self.profiles, weights)
            # Wall-clock times jitter around the class mean (±25%).
            tw = profile.mean_wall_clock * wall_rng.uniform(0.75, 1.25)
            job = Job(
                job_id=job_id,
                benchmark=profile.name,
                target=QoSTarget(
                    resources=profile.resources,
                    timeslot=TimeslotRequest(
                        max_wall_clock=tw,
                        deadline=now + profile.deadline_multiplier * tw,
                    ),
                    mode=ExecutionMode.strict(),
                ),
                arrival_time=now,
                instructions=1,
            )
            report.submitted += 1
            accepted, submitted = report.acceptance_by_class.get(
                profile.name, (0, 0)
            )

            report.load_samples.add(gac.load_at(now))
            placement = gac.place(job, now=now)
            if placement.accepted:
                report.accepted += 1
                report.placements_per_node[placement.node_index] = (
                    report.placements_per_node.get(placement.node_index, 0)
                    + 1
                )
                report.acceptance_by_class[profile.name] = (
                    accepted + 1,
                    submitted + 1,
                )
            else:
                report.rejected += 1
                report.acceptance_by_class[profile.name] = (
                    accepted,
                    submitted + 1,
                )
                if placement.counter_offer_deadline is not None:
                    report.counter_offers += 1
            now += arrival_rng.exponential(self.mean_interarrival)
        return report


def size_cluster(
    *,
    profiles: Sequence[ClusterJobProfile],
    mean_interarrival: float,
    target_acceptance: float = 0.95,
    horizon: float = 50.0,
    max_nodes: int = 64,
    seed: int = 42,
) -> int:
    """Smallest node count meeting a target acceptance rate.

    The capacity-planning loop a GAC operator would run: grow the
    cluster until the SLA mix is admitted at the target rate.
    """
    if not 0 < target_acceptance <= 1:
        raise ValueError(
            f"target_acceptance must be in (0, 1], got {target_acceptance}"
        )
    for num_nodes in range(1, max_nodes + 1):
        report = ClusterSimulator(
            num_nodes=num_nodes,
            profiles=profiles,
            mean_interarrival=mean_interarrival,
            seed=seed,
        ).run(horizon=horizon)
        if report.acceptance_rate >= target_acceptance:
            return num_nodes
    raise ValueError(
        f"even {max_nodes} nodes cannot reach {target_acceptance:.0%} "
        "acceptance for this mix"
    )
