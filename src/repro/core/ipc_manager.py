"""A prior-work-style IPC-target resource manager (Section 1/Figure 1).

The paper's introduction describes earlier QoS frameworks in which
applications specify IPC targets and a resource manager "dynamically
partitions shared resources in order to meet each application's QoS
target" — and shows in Figure 1 why that is insufficient: nothing
checks whether the demanded capacity exists, and nothing refuses jobs
when it does not.

This module implements that manager faithfully, so the failure can be
reproduced and contrasted with the paper's framework:

- Each job brings an IPC target plus its (run-time-profiled)
  miss-ratio curve and CPI model — the "elaborate performance model"
  the paper says IPC targets force the system to maintain.
- :meth:`rebalance` greedily hands out cache ways, one at a time, to
  the job farthest from its target (the greedy search of the prior
  work the paper cites).
- :meth:`feasibility` reports which targets the best allocation still
  misses — the information an admission controller would have needed
  *before* accepting the jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cpu.cpi import CpiModel
from repro.util.validation import check_positive
from repro.workloads.profiler import MissRatioCurve


@dataclass(frozen=True)
class IpcManagedJob:
    """One job under IPC-target management."""

    job_id: int
    target_ipc: float
    curve: MissRatioCurve
    cpi_model: CpiModel

    def __post_init__(self) -> None:
        check_positive("target_ipc", self.target_ipc)

    def ipc_at(self, ways: int) -> float:
        """Predicted IPC at an allocation of ``ways``."""
        return self.cpi_model.ipc(self.curve.mpi(ways))


@dataclass(frozen=True)
class RebalanceResult:
    """Outcome of one greedy repartitioning pass."""

    allocation: Dict[int, int]  # job_id -> ways
    achieved_ipc: Dict[int, float]
    targets_met: Dict[int, bool]

    @property
    def all_met(self) -> bool:
        """True when every job's IPC target is satisfied."""
        return all(self.targets_met.values())

    @property
    def met_count(self) -> int:
        """How many jobs meet their targets."""
        return sum(self.targets_met.values())


class IpcTargetManager:
    """Greedy IPC-driven cache partitioner without admission control."""

    def __init__(self, total_ways: int, *, min_ways_per_job: int = 1) -> None:
        check_positive("total_ways", total_ways)
        check_positive("min_ways_per_job", min_ways_per_job)
        self.total_ways = total_ways
        self.min_ways_per_job = min_ways_per_job
        self._jobs: List[IpcManagedJob] = []

    def add_job(self, job: IpcManagedJob) -> None:
        """Accept a job unconditionally — the prior-work flaw.

        There is no admission test: the manager will try its best and
        simply fail to deliver when capacity is short.
        """
        if any(j.job_id == job.job_id for j in self._jobs):
            raise ValueError(f"job {job.job_id} already managed")
        if len(self._jobs) * self.min_ways_per_job >= self.total_ways:
            # Even giving everyone the minimum exhausts the cache; the
            # manager still accepts (it has no admission policy), the
            # newcomer just shares the floor.
            pass
        self._jobs.append(job)

    def remove_job(self, job_id: int) -> None:
        """A job departed."""
        before = len(self._jobs)
        self._jobs = [j for j in self._jobs if j.job_id != job_id]
        if len(self._jobs) == before:
            raise ValueError(f"job {job_id} is not managed")

    @property
    def jobs(self) -> Sequence[IpcManagedJob]:
        """Jobs currently managed."""
        return tuple(self._jobs)

    # -- the greedy search ------------------------------------------------------

    def rebalance(self) -> RebalanceResult:
        """Greedily allocate ways toward the IPC targets.

        Everyone starts at the floor; each remaining way goes to the
        job with the largest relative IPC *deficit* (targets first),
        then — once all reachable targets are met — to the job with the
        best marginal IPC gain.  This is the run-time profiling search
        the paper cites as evidence of IPC's non-convertibility: it
        costs a full sweep of every job's miss curve, and it still
        cannot promise anything.
        """
        if not self._jobs:
            return RebalanceResult({}, {}, {})
        allocation = {
            job.job_id: min(
                self.min_ways_per_job,
                self.total_ways // len(self._jobs) or 1,
            )
            for job in self._jobs
        }
        remaining = self.total_ways - sum(allocation.values())

        by_id = {job.job_id: job for job in self._jobs}
        for _ in range(max(0, remaining)):
            best_id: Optional[int] = None
            best_key = None
            for job in self._jobs:
                ways = allocation[job.job_id]
                if ways >= self.total_ways:
                    continue
                current = job.ipc_at(ways)
                deficit = max(0.0, job.target_ipc - current) / job.target_ipc
                gain = job.ipc_at(ways + 1) - current
                key = (deficit, gain)
                if best_key is None or key > best_key:
                    best_key = key
                    best_id = job.job_id
            if best_id is None or best_key == (0.0, 0.0):
                break
            allocation[best_id] += 1

        achieved = {
            job_id: by_id[job_id].ipc_at(ways)
            for job_id, ways in allocation.items()
        }
        met = {
            job_id: achieved[job_id] >= by_id[job_id].target_ipc - 1e-12
            for job_id in allocation
        }
        return RebalanceResult(allocation, achieved, met)

    # -- what admission control would have known ----------------------------------

    def feasibility(self) -> RebalanceResult:
        """The best the manager can ever do for the current job set.

        When :attr:`RebalanceResult.all_met` is False here, no dynamic
        repartitioning can save these jobs — the information the
        paper's admission controller uses to *reject* instead.
        """
        return self.rebalance()

    def max_satisfiable_instances(
        self, template: IpcManagedJob, *, limit: int = 16
    ) -> int:
        """How many copies of ``template`` can all meet their targets.

        The Figure 1 question asked properly: the answer for the
        paper's bzip2 setup is 2.
        """
        for count in range(1, limit + 1):
            manager = IpcTargetManager(
                self.total_ways, min_ways_per_job=self.min_ways_per_job
            )
            for index in range(count):
                manager.add_job(
                    IpcManagedJob(
                        job_id=index,
                        target_ipc=template.target_ipc,
                        curve=template.curve,
                        cpi_model=template.cpi_model,
                    )
                )
            if not manager.rebalance().all_met:
                return count - 1
        return limit
