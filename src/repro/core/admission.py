"""The Local Admission Controller (Section 5).

The LAC maintains a timeline of resource reservations (processor cores
and cache ways) and admits jobs First-Come-First-Served:

- A **Strict** job needs its resource vector reserved for its maximum
  wall-clock time ``tw``, in the earliest timeslot that completes
  before the job's deadline.
- An **Elastic(X)** job reserves for the stretched duration
  ``tw * (1 + X)`` (it may be slowed by up to X%).
- An **Opportunistic** job reserves nothing and is accepted whenever
  the node exists to run it eventually on spare resources.
- Under **automatic mode downgrade** a Strict job's timeslot is
  reserved *as late as possible* before the deadline (Section 3.4), and
  the job runs Opportunistically until the reserved slot begins.

Jobs are accepted only when a feasible reservation exists — the
admission control that, per the paper, cache partitioning alone cannot
substitute for.  Early completions release the remainder of their
reservation so later jobs can be admitted sooner (visible in the
Figure 7 traces).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.job import Job
from repro.core.modes import ModeKind
from repro.core.spec import ResourceVector
from repro.obs import get_observer
from repro.util.validation import check_non_negative


@dataclass
class Reservation:
    """A booked slice of the node's capacity."""

    reservation_id: int
    job_id: int
    start: float
    end: float  # math.inf for lifetime reservations
    resources: ResourceVector

    def overlaps(self, start: float, end: float) -> bool:
        """Half-open interval overlap test."""
        return self.start < end and start < self.end

    def active_at(self, time: float) -> bool:
        """True if the reservation covers ``time``."""
        return self.start <= time < self.end


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission test."""

    accepted: bool
    reason: str
    reservation: Optional[Reservation] = None

    @property
    def reserved_start(self) -> Optional[float]:
        """Start of the granted timeslot, if any."""
        return self.reservation.start if self.reservation else None


@dataclass
class LacStatistics:
    """Bookkeeping for the Section 7.5 LAC-overhead characterisation."""

    admission_tests: int = 0
    candidate_windows_evaluated: int = 0
    acceptances: int = 0
    rejections: int = 0


class LocalAdmissionController:
    """Per-CMP admission controller with a reservation timeline."""

    def __init__(self, capacity: ResourceVector) -> None:
        if capacity.is_zero():
            raise ValueError("the node must have some capacity")
        self.capacity = capacity
        self.stats = LacStatistics()
        self._reservations: List[Reservation] = []
        self._ids = itertools.count(1)

    # -- capacity queries -------------------------------------------------------

    def reservations(self) -> List[Reservation]:
        """Snapshot of current reservations (sorted by start)."""
        return sorted(self._reservations, key=lambda r: (r.start, r.end))

    def used_at(self, time: float) -> ResourceVector:
        """Resources reserved at instant ``time``."""
        check_non_negative("time", time)
        active = [r for r in self._reservations if r.active_at(time)]
        return ResourceVector(
            cores=sum(r.resources.cores for r in active),
            cache_ways=sum(r.resources.cache_ways for r in active),
            bandwidth_share=min(
                1.0, sum(r.resources.bandwidth_share for r in active)
            ),
        )

    def available_at(self, time: float) -> ResourceVector:
        """Unreserved resources at instant ``time``.

        RUM convertibility makes this the whole supply-side computation
        — a subtraction (Section 3.2).  Clamped at zero so that an
        externally-constructed (oversubscribed) timeline reads as
        "nothing available" instead of failing.
        """
        used = self.used_at(time)
        return ResourceVector(
            cores=max(0, self.capacity.cores - used.cores),
            cache_ways=max(0, self.capacity.cache_ways - used.cache_ways),
            bandwidth_share=max(
                0.0, self.capacity.bandwidth_share - used.bandwidth_share
            ),
        )

    def window_fits(
        self, start: float, end: float, request: ResourceVector
    ) -> bool:
        """Can ``request`` be added throughout ``[start, end)``?

        Checked at every breakpoint (window start plus each reservation
        start inside the window), since usage is piecewise constant.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        self.stats.candidate_windows_evaluated += 1
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("lac.candidate_windows").inc()
        breakpoints = [start] + [
            r.start
            for r in self._reservations
            if start < r.start < end
        ]
        for point in breakpoints:
            if not request.fits_within(self.available_at(point)):
                return False
        return True

    # -- timeslot search ----------------------------------------------------------

    def earliest_fit(
        self,
        request: ResourceVector,
        duration: float,
        *,
        not_before: float,
        latest_end: float = math.inf,
    ) -> Optional[float]:
        """Earliest start ≥ ``not_before`` whose window fits before ``latest_end``.

        Candidate starts are ``not_before`` and the ends of existing
        reservations (usage only ever *decreases* at reservation ends,
        so any feasible start can be shifted left onto one of these).
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        candidates = sorted(
            {not_before}
            | {
                r.end
                for r in self._reservations
                if not_before < r.end < math.inf
            }
        )
        for start in candidates:
            if start + duration > latest_end:
                break
            if self.window_fits(start, start + duration, request):
                return start
        return None

    def latest_fit(
        self,
        request: ResourceVector,
        duration: float,
        *,
        not_before: float,
        latest_end: float,
    ) -> Optional[float]:
        """Latest feasible start — used to place AutoDown reservations.

        Section 3.4: an automatically-downgraded job's reserved timeslot
        should sit as far in the future as possible, maximising the
        chance the job finishes Opportunistically before the slot and
        the reservation can be reclaimed.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if latest_end == math.inf:
            raise ValueError("latest_fit needs a finite deadline")
        preferred = latest_end - duration
        if preferred < not_before:
            return None
        candidates = sorted(
            {preferred}
            | {
                r.end
                for r in self._reservations
                if not_before <= r.end <= preferred
            }
            | {not_before},
            reverse=True,
        )
        for start in candidates:
            if start < not_before:
                continue
            if self.window_fits(start, start + duration, request):
                return start
        return None

    # -- admission ------------------------------------------------------------------

    def admit(
        self, job: Job, *, now: float, auto_downgrade: bool = False
    ) -> AdmissionDecision:
        """FCFS admission test for ``job`` at time ``now``.

        With ``auto_downgrade`` a Strict job with slack gets its
        reservation placed as late as possible and is expected to run
        Opportunistically until then (the caller flips the job's mode).
        """
        self.stats.admission_tests += 1
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("lac.admit_calls").inc()
        mode = job.target.mode

        if mode.kind is ModeKind.OPPORTUNISTIC:
            # No reservation; spare resources are found at dispatch time.
            self.stats.acceptances += 1
            return AdmissionDecision(True, "opportunistic: no reservation needed")

        if not job.target.resources.fits_within(self.capacity):
            self.stats.rejections += 1
            return AdmissionDecision(
                False,
                f"request {job.target.resources} exceeds node capacity "
                f"{self.capacity}",
            )

        if job.target.timeslot is None:
            # Lifetime reservation: must fit from now on, forever.
            start = self._lifetime_fit(job.target.resources, now)
            if start is None:
                self.stats.rejections += 1
                return AdmissionDecision(
                    False, "no lifetime capacity available"
                )
            reservation = self._reserve(
                job.job_id, start, math.inf, job.target.resources
            )
            self.stats.acceptances += 1
            return AdmissionDecision(True, "lifetime reservation", reservation)

        duration = mode.reservation_duration(job.target.timeslot.max_wall_clock)
        deadline = job.target.timeslot.deadline
        latest_end = deadline if deadline is not None else math.inf

        if auto_downgrade and mode.kind is ModeKind.STRICT and deadline is not None:
            start = self.latest_fit(
                job.target.resources,
                duration,
                not_before=now,
                latest_end=latest_end,
            )
        else:
            start = self.earliest_fit(
                job.target.resources,
                duration,
                not_before=now,
                latest_end=latest_end,
            )
        if start is None:
            self.stats.rejections += 1
            return AdmissionDecision(
                False,
                f"no timeslot of length {duration:.3g} fits before "
                f"deadline {latest_end:.6g}",
            )
        reservation = self._reserve(
            job.job_id, start, start + duration, job.target.resources
        )
        self.stats.acceptances += 1
        return AdmissionDecision(True, "timeslot reserved", reservation)

    def reserve_window(
        self,
        job_id: int,
        resources: ResourceVector,
        duration: float,
        *,
        not_before: float,
        latest_end: float = math.inf,
    ) -> Optional[Reservation]:
        """Re-admission test for an already-accepted, displaced job.

        The fault-recovery path (:mod:`repro.faults`): a job whose core
        failed lost its reservation and must book a fresh timeslot for
        its *remaining* work.  This runs the same earliest-fit search as
        :meth:`admit` but takes the resource vector and duration
        directly — the job object's original timeslot describes the full
        job, not the remainder.  Returns the booked reservation, or
        ``None`` when no window fits before ``latest_end`` (the caller
        then retries with backoff or downgrades the job's mode).
        """
        self.stats.admission_tests += 1
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("lac.reserve_window_calls").inc()
        if not resources.fits_within(self.capacity):
            self.stats.rejections += 1
            return None
        start = self.earliest_fit(
            resources, duration, not_before=not_before, latest_end=latest_end
        )
        if start is None:
            self.stats.rejections += 1
            return None
        self.stats.acceptances += 1
        return self._reserve(job_id, start, start + duration, resources)

    def _lifetime_fit(
        self, request: ResourceVector, now: float
    ) -> Optional[float]:
        """Earliest start from which ``request`` fits forever."""
        candidates = sorted(
            {now}
            | {r.end for r in self._reservations if now < r.end < math.inf}
        )
        for start in candidates:
            horizon = max(
                [start + 1.0]
                + [r.end for r in self._reservations if r.end < math.inf]
                + [
                    r.start + 1.0
                    for r in self._reservations
                    if r.end == math.inf
                ]
            )
            if self.window_fits(start, horizon + 1.0, request):
                return start
        return None

    def _reserve(
        self, job_id: int, start: float, end: float, resources: ResourceVector
    ) -> Reservation:
        reservation = Reservation(
            reservation_id=next(self._ids),
            job_id=job_id,
            start=start,
            end=end,
            resources=resources,
        )
        self._reservations.append(reservation)
        return reservation

    # -- reclamation --------------------------------------------------------------

    def release(self, reservation: Reservation, *, at_time: float) -> None:
        """Reclaim a reservation from ``at_time`` onward.

        Early completion (or an AutoDown job finishing before its
        reserved slot begins) frees the remainder for later admissions —
        the effect that lets the eighth and tenth jobs start earlier in
        Figure 7(b).
        """
        if reservation not in self._reservations:
            raise ValueError(
                f"reservation {reservation.reservation_id} is not active"
            )
        if at_time <= reservation.start:
            self._reservations.remove(reservation)
        else:
            reservation.end = min(reservation.end, at_time)

    def cancel(self, reservation: Reservation) -> None:
        """Drop a reservation entirely (job rejected downstream)."""
        self.release(reservation, at_time=0.0)

    def prune(self, *, before: float) -> int:
        """Forget reservations that ended at or before ``before``.

        Batch experiments never need this — a run books tens of
        reservations and exits.  A long-running admission *service*
        does: the timeline otherwise accumulates every reservation
        ever granted, and both :meth:`earliest_fit` (candidate starts)
        and :meth:`window_fits` (breakpoints) scan it linearly, so
        admission latency would grow without bound.  Pruning strictly-
        past reservations cannot change any admission decision at
        ``now >= before``: a reservation with ``end <= before`` can
        neither overlap a future window nor contribute a candidate
        start at or after ``before``.  Returns how many were dropped.
        """
        check_non_negative("before", before)
        kept = [r for r in self._reservations if r.end > before]
        dropped = len(self._reservations) - len(kept)
        self._reservations = kept
        return dropped
