"""Resource stealing (Section 4).

An Elastic(X) job tolerates up to an X% slowdown.  Because the CPI
decomposition is additive with non-negative components (Section 4.2), a
≤ X% increase in L2 *misses* guarantees a < X% increase in CPI — so the
controller uses the measurable miss count as a conservative proxy.

The algorithm (Section 4.3), evaluated once per repartitioning interval
(2 M instructions of the Elastic job in the machine model):

1. Steal one way from the Elastic job's partition and hand it to an
   Opportunistic beneficiary.
2. Duplicate (shadow) tags keep counting the misses the job *would*
   have had at its full allocation; cumulative counts are never reset.
3. If the main tags' cumulative misses reach or exceed the shadow's by
   X%, stealing is **cancelled** and every stolen way returns at once.
4. Otherwise, next interval, steal another way — down to a floor.

Stealing also holds off while the memory bus is saturated (footnote 2):
past saturation extra misses inflate everyone's miss penalty, breaking
the constant-``tm`` assumption behind the miss-rate criterion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Protocol

from repro.util.validation import check_fraction, check_positive


class MissFeedback(Protocol):
    """Source of the cumulative miss-increase measurement.

    Satisfied by :class:`repro.cache.shadow.ShadowTagArray` (real
    duplicate tags at the cache level) and by the system simulator's
    curve-based predictor.
    """

    def miss_increase_fraction(self) -> float:
        """Cumulative main-vs-shadow miss increase since the job started."""
        ...


class StealingState(enum.Enum):
    """Controller lifecycle."""

    ACTIVE = "active"
    CANCELLED = "cancelled"


class StealingAction(enum.Enum):
    """What the controller decided this interval."""

    STEAL_ONE = "steal_one"
    HOLD = "hold"
    CANCEL = "cancel"


@dataclass(frozen=True)
class StealingDecision:
    """One interval's decision, with the resulting allocation."""

    action: StealingAction
    elastic_ways: int
    stolen_ways: int
    miss_increase: float
    reason: str


class ResourceStealingController:
    """Per-Elastic(X)-job stealing state machine."""

    def __init__(
        self,
        *,
        slack: float,
        baseline_ways: int,
        min_ways: int = 1,
        interval_instructions: int = 2_000_000,
        resume_after_cancel: bool = True,
        resume_hysteresis: float = 0.9,
    ) -> None:
        check_fraction("slack", slack)
        if slack == 0:
            raise ValueError("stealing requires a positive Elastic slack")
        check_positive("baseline_ways", baseline_ways)
        check_positive("min_ways", min_ways)
        check_positive("interval_instructions", interval_instructions)
        check_fraction("resume_hysteresis", resume_hysteresis)
        if min_ways > baseline_ways:
            raise ValueError(
                f"min_ways ({min_ways}) exceeds baseline_ways "
                f"({baseline_ways})"
            )
        self.slack = slack
        self.baseline_ways = baseline_ways
        self.min_ways = min_ways
        self.interval_instructions = interval_instructions
        # After a cancel, the cumulative miss increase decays as the job
        # keeps accruing baseline misses at its full allocation; once it
        # falls back below ``resume_hysteresis * slack`` the controller
        # re-arms, so the long-run increase hugs the slack budget — the
        # behaviour Figure 8(a) exhibits.  Disable for the strictly
        # one-shot reading of Section 4.3 (ablation bench).
        self.resume_after_cancel = resume_after_cancel
        self.resume_hysteresis = resume_hysteresis
        self.state = StealingState.ACTIVE
        self._current_ways = baseline_ways
        self.intervals_run = 0
        self.cancellations = 0
        self.ecc_cancellations = 0

    # -- inspection -------------------------------------------------------------

    @property
    def current_ways(self) -> int:
        """The Elastic job's present allocation."""
        return self._current_ways

    @property
    def stolen_ways(self) -> int:
        """Ways currently reallocated to Opportunistic jobs."""
        return self.baseline_ways - self._current_ways

    @property
    def can_steal_more(self) -> bool:
        """Whether another way can be taken without hitting the floor."""
        return (
            self.state is StealingState.ACTIVE
            and self._current_ways > self.min_ways
        )

    # -- the per-interval step ------------------------------------------------------

    def on_interval(
        self,
        feedback: MissFeedback,
        *,
        bus_saturated: bool = False,
    ) -> StealingDecision:
        """Run one repartitioning interval of the algorithm.

        The caller applies the decision to the partitioned cache (move a
        way to an Opportunistic core, or return all stolen ways).
        """
        self.intervals_run += 1
        increase = feedback.miss_increase_fraction()

        if self.state is StealingState.CANCELLED:
            if (
                self.resume_after_cancel
                and increase < self.slack * self.resume_hysteresis
            ):
                self.state = StealingState.ACTIVE
            else:
                return self._decision(
                    StealingAction.HOLD, increase, "stealing is cancelled"
                )

        if increase >= self.slack and self.stolen_ways > 0:
            # The job has potentially been slowed by more than X%:
            # return everything at once (Section 4.3).
            self._current_ways = self.baseline_ways
            self.state = StealingState.CANCELLED
            self.cancellations += 1
            return self._decision(
                StealingAction.CANCEL,
                increase,
                f"miss increase {increase:.2%} reached slack "
                f"{self.slack:.0%}; all stolen ways returned",
            )

        if bus_saturated:
            return self._decision(
                StealingAction.HOLD,
                increase,
                "memory bus saturated; stealing paused (footnote 2)",
            )

        if not self.can_steal_more:
            return self._decision(
                StealingAction.HOLD,
                increase,
                f"at the {self.min_ways}-way floor",
            )

        self._current_ways -= 1
        return self._decision(
            StealingAction.STEAL_ONE,
            increase,
            f"stole one way ({self._current_ways} remain)",
        )

    def on_ecc_error(self) -> StealingDecision:
        """React to an ECC upset in the duplicate tag array.

        With the shadow corrupted there is no trustworthy bound on how
        much the Elastic job has already been slowed, so the only safe
        move is the cancel path of Section 4.3: return every stolen way
        immediately.  The caller applies the returned allocation exactly
        as for a slack-triggered cancel.  If ``resume_after_cancel`` is
        set, the controller re-arms once the (reset) shadow rebuilds a
        trustworthy low-increase observation.
        """
        self.ecc_cancellations += 1
        returned = self.stolen_ways
        self._current_ways = self.baseline_ways
        if self.state is not StealingState.CANCELLED:
            self.state = StealingState.CANCELLED
            self.cancellations += 1
        return self._decision(
            StealingAction.CANCEL,
            0.0,
            f"ECC error in duplicate tags; {returned} stolen way(s) "
            "conservatively returned",
        )

    def _decision(
        self, action: StealingAction, increase: float, reason: str
    ) -> StealingDecision:
        return StealingDecision(
            action=action,
            elastic_ways=self._current_ways,
            stolen_ways=self.stolen_ways,
            miss_increase=increase,
            reason=reason,
        )

    def reset(self, *, baseline_ways: Optional[int] = None) -> None:
        """Re-arm the controller for a new Elastic job."""
        if baseline_ways is not None:
            check_positive("baseline_ways", baseline_ways)
            if self.min_ways > baseline_ways:
                raise ValueError(
                    f"min_ways ({self.min_ways}) exceeds baseline_ways "
                    f"({baseline_ways})"
                )
            self.baseline_ways = baseline_ways
        self._current_ways = self.baseline_ways
        self.state = StealingState.ACTIVE
        self.intervals_run = 0
