"""QoS execution modes and mode downgrade (Sections 3.3–3.4).

Three execution modes specify how strictly a job's QoS target must be
honoured:

- **Strict** — requested resources and timeslot are reserved exactly.
- **Elastic(X)** — deadline is rigid but throughput may degrade by up
  to X% relative to Strict; the system may steal excess resources, and
  in exchange the job's reservation is stretched to ``tw * (1 + X)``.
- **Opportunistic** — no reservation at all; runs on whatever resources
  are idle.

Two modes are *interchangeable* for a job when both still guarantee
completion by the job's deadline.  A Strict job arriving at ``ta`` with
deadline ``td`` and maximum wall-clock time ``tw`` has slack
``(td - ta) - tw``; it can be manually downgraded to
``Elastic(((td - ta) - tw) / tw)``, or automatically downgraded to run
Opportunistically until ``td - tw``, at which point it must switch back
to Strict (with its timeslot still reserved) to make the deadline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.cache.partitioned import PartitionClass
from repro.obs import get_observer
from repro.util.validation import check_non_negative, check_positive


class ModeKind(enum.Enum):
    """The three execution-mode families."""

    STRICT = "strict"
    ELASTIC = "elastic"
    OPPORTUNISTIC = "opportunistic"


@dataclass(frozen=True)
class ExecutionMode:
    """An execution mode, carrying the Elastic slack when applicable.

    ``slack`` is the Elastic X as a fraction (Elastic(5%) has
    ``slack == 0.05``); it is zero for Strict and meaningless (kept
    zero) for Opportunistic.
    """

    kind: ModeKind
    slack: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("slack", self.slack)
        if self.kind is not ModeKind.ELASTIC and self.slack != 0.0:
            raise ValueError(
                f"slack is only meaningful for Elastic modes, got "
                f"{self.kind.value} with slack {self.slack}"
            )
        if self.kind is ModeKind.ELASTIC and self.slack <= 0.0:
            raise ValueError("Elastic mode requires a positive slack")

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def strict() -> "ExecutionMode":
        """The Strict mode."""
        return ExecutionMode(ModeKind.STRICT)

    @staticmethod
    def elastic(slack: float) -> "ExecutionMode":
        """Elastic(X) with ``slack`` = X as a fraction (0.05 for 5%)."""
        check_positive("slack", slack)
        return ExecutionMode(ModeKind.ELASTIC, slack)

    @staticmethod
    def opportunistic() -> "ExecutionMode":
        """The Opportunistic mode."""
        return ExecutionMode(ModeKind.OPPORTUNISTIC)

    # -- properties -----------------------------------------------------------

    @property
    def reserves_resources(self) -> bool:
        """Strict and Elastic jobs reserve resources; Opportunistic don't."""
        return self.kind is not ModeKind.OPPORTUNISTIC

    @property
    def allows_stealing(self) -> bool:
        """Only Elastic jobs donate capacity to resource stealing."""
        return self.kind is ModeKind.ELASTIC

    @property
    def partition_class(self) -> PartitionClass:
        """Victim-selection priority class in the partitioned cache."""
        if self.kind is ModeKind.OPPORTUNISTIC:
            return PartitionClass.BEST_EFFORT
        return PartitionClass.RESERVED

    @property
    def throughput_floor(self) -> float:
        """Guaranteed fraction of the job's Strict throughput.

        The QoS contract each mode makes about the job's CPI target:
        Strict promises full throughput (floor 1.0), Elastic(X) may run
        up to X% slower (floor ``1 / (1 + X)`` — the reservation
        stretch of Section 3.4 read as a rate), and Opportunistic
        promises nothing (floor 0.0).  Walking the downgrade ladder
        must never *raise* this floor — a downgrade that demanded more
        throughput than the mode it replaced would be an upgrade in
        disguise — which :mod:`repro.verify.laws` checks as a
        metamorphic law.
        """
        if self.kind is ModeKind.STRICT:
            return 1.0
        if self.kind is ModeKind.ELASTIC:
            return 1.0 / (1.0 + self.slack)
        return 0.0

    @property
    def guarantee_rank(self) -> int:
        """Position on the guarantee ladder (0 = Strict, 2 = Opportunistic).

        Strictly increases along any legal downgrade path; used by the
        verification laws to assert the ladder is monotone.
        """
        if self.kind is ModeKind.STRICT:
            return 0
        if self.kind is ModeKind.ELASTIC:
            return 1
        return 2

    def reservation_duration(self, max_wall_clock: float) -> float:
        """How long the requested resources must be reserved.

        Elastic(X) jobs may be slowed by up to X%, so their reservation
        stretches to ``tw * (1 + X)`` (Section 3.4).  Opportunistic jobs
        reserve nothing, expressed as a zero-length reservation.
        """
        check_positive("max_wall_clock", max_wall_clock)
        if self.kind is ModeKind.STRICT:
            return max_wall_clock
        if self.kind is ModeKind.ELASTIC:
            return max_wall_clock * (1.0 + self.slack)
        return 0.0

    def describe(self) -> str:
        """Human-readable name, e.g. ``Elastic(5%)``."""
        if self.kind is ModeKind.ELASTIC:
            return f"Elastic({self.slack:.0%})"
        return self.kind.value.capitalize()


# -----------------------------------------------------------------------------
# Mode downgrade (Section 3.3, "automatic mode downgrade" paragraph)
# -----------------------------------------------------------------------------


def time_slack(arrival: float, deadline: float, max_wall_clock: float) -> float:
    """The job's scheduling slack ``(td - ta) - tw``.

    Negative slack means even an immediately-started Strict run cannot
    make the deadline.
    """
    check_positive("max_wall_clock", max_wall_clock)
    return (deadline - arrival) - max_wall_clock


def max_elastic_slack(
    arrival: float, deadline: float, max_wall_clock: float
) -> float:
    """Largest Elastic X interchangeable with Strict for this job.

    ``((td - ta) - tw) / tw``: stretching the run by this factor still
    completes exactly at the deadline.  Returns 0.0 when there is no
    slack (the job must stay Strict).
    """
    slack = time_slack(arrival, deadline, max_wall_clock)
    return max(0.0, slack / max_wall_clock)


def downgrade_to_elastic(
    arrival: float, deadline: float, max_wall_clock: float
) -> Optional[ExecutionMode]:
    """Interchangeable Elastic mode for a Strict job, or ``None``.

    ``None`` when the job has no time slack at all — Elastic(0) is just
    Strict.
    """
    slack = max_elastic_slack(arrival, deadline, max_wall_clock)
    obs = get_observer()
    if obs.enabled:
        obs.metrics.counter(
            "modes.downgrade_to_elastic",
            feasible=slack > 0.0,
        ).inc()
    if slack <= 0.0:
        return None
    return ExecutionMode.elastic(slack)


def opportunistic_window(
    arrival: float, deadline: float, max_wall_clock: float
) -> Optional[float]:
    """Latest time an auto-downgraded job may run Opportunistically.

    A Strict job can be automatically downgraded to Opportunistic until
    ``td - tw``; at that instant it must switch back to Strict (in its
    reserved timeslot) to guarantee the deadline.  Returns ``None`` when
    there is no slack, i.e. the job must start Strict immediately.
    """
    slack = time_slack(arrival, deadline, max_wall_clock)
    obs = get_observer()
    if obs.enabled:
        obs.metrics.counter(
            "modes.opportunistic_window",
            feasible=slack > 0.0,
        ).inc()
    if slack <= 0.0:
        return None
    return deadline - max_wall_clock


def is_interchangeable(
    old: ExecutionMode,
    new: ExecutionMode,
    *,
    arrival: float,
    deadline: float,
    max_wall_clock: float,
) -> bool:
    """Whether downgrading ``old`` to ``new`` still guarantees the deadline.

    Definition from Section 3.3: interchangeable modes guarantee
    completion by the same deadline (throughput variation is assumed
    tolerable).  Upgrades (e.g. Opportunistic to Strict) are always
    deadline-safe and therefore interchangeable in this sense.
    """
    slack = time_slack(arrival, deadline, max_wall_clock)
    if slack < 0.0:
        # The deadline is already unreachable; no mode guarantees it.
        return False
    if new.kind is ModeKind.STRICT:
        return True
    if new.kind is ModeKind.ELASTIC:
        # Stretching by X must still fit before the deadline:
        # tw * (1 + X) <= td - ta, checked in slack space (X against
        # ((td - ta) - tw) / tw) rather than by re-multiplying the
        # duration — the multiplied form can round up past the deadline
        # for the boundary mode downgrade_to_elastic itself constructs,
        # misclassifying the paper's own maximal downgrade.
        return new.slack <= max_elastic_slack(arrival, deadline, max_wall_clock)
    # Opportunistic is deadline-safe only under automatic downgrade,
    # i.e. when a Strict reservation remains at td - tw to fall back to.
    # That requires positive slack (otherwise the fallback must start now).
    return slack > 0.0
