"""QoS target specification (Section 3.2).

The paper's first finding: to *fully* provide QoS a target must be
**convertible** — expressible in units of computation capacity that the
CMP can compare against its available capacity.  Resource Usage Metrics
(RUM: cores, cache ways, bandwidth) are convertible by construction;
Resource Performance Metrics (RPM: miss rates) and Overall Performance
Metrics (OPM: IPC) are not — the CMP cannot trivially tell how many
resources a given IPC needs, and some values are outright unsatisfiable.

This module provides the RUM-based :class:`QoSTarget` used by the
admission controller, plus :class:`IpcTarget` and :class:`MissRateTarget`
which deliberately expose the *difficulty* of conversion: resolving them
requires a profiled miss-ratio curve and a CPI model (an "elaborate
performance model", as the paper puts it) and can fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.modes import ExecutionMode
from repro.cpu.cpi import CpiModel
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)
from repro.workloads.profiler import MissRatioCurve


@dataclass(frozen=True)
class ResourceVector:
    """A RUM capacity vector: cores, shared-cache ways, and bandwidth.

    The paper focuses QoS specification on cores and cache ways
    (Section 3.2) and names the off-chip bandwidth rate as the next
    resource a complete target would include.  ``bandwidth_share`` is
    that extension: a fraction of the memory bus, reservable through
    the same supply/demand arithmetic and enforceable by the
    fair-queuing bus in :mod:`repro.mem.fair_queue`.  It defaults to
    zero so the paper's two-resource experiments are unchanged.
    """

    cores: int = 0
    cache_ways: int = 0
    bandwidth_share: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("cores", self.cores)
        check_non_negative("cache_ways", self.cache_ways)
        check_fraction("bandwidth_share", self.bandwidth_share)

    def fits_within(self, available: "ResourceVector") -> bool:
        """Convertibility in action: a trivial demand-vs-supply compare."""
        return (
            self.cores <= available.cores
            and self.cache_ways <= available.cache_ways
            and self.bandwidth_share <= available.bandwidth_share + 1e-12
        )

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cores + other.cores,
            self.cache_ways + other.cache_ways,
            min(1.0, self.bandwidth_share + other.bandwidth_share),
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        cores = self.cores - other.cores
        ways = self.cache_ways - other.cache_ways
        bandwidth = self.bandwidth_share - other.bandwidth_share
        if cores < 0 or ways < 0 or bandwidth < -1e-12:
            raise ValueError(
                f"subtraction would go negative: {self} - {other}"
            )
        return ResourceVector(cores, ways, max(0.0, bandwidth))

    def is_zero(self) -> bool:
        """True when the vector requests nothing."""
        return (
            self.cores == 0
            and self.cache_ways == 0
            and self.bandwidth_share == 0.0
        )

    def __str__(self) -> str:
        text = f"{self.cores} core(s) + {self.cache_ways} way(s)"
        if self.bandwidth_share > 0:
            text += f" + {self.bandwidth_share:.0%} bus"
        return text


@dataclass(frozen=True)
class TimeslotRequest:
    """Optional timeslot resource: max wall-clock time and a deadline.

    ``max_wall_clock`` bounds how long the job runs *given all its
    requested resources* (a batch-system concept, not a WCET — the job
    may be terminated past it).  ``deadline`` is the latest acceptable
    completion time, absolute.  Long-running jobs may omit the deadline,
    in which case resources are held for the job's whole lifetime.
    """

    max_wall_clock: float
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive("max_wall_clock", self.max_wall_clock)
        if self.deadline is not None:
            check_non_negative("deadline", self.deadline)

    def slack_at(self, arrival: float) -> Optional[float]:
        """Scheduling slack ``(td - ta) - tw``; ``None`` without a deadline."""
        if self.deadline is None:
            return None
        return (self.deadline - arrival) - self.max_wall_clock


@dataclass(frozen=True)
class QoSTarget:
    """A complete, convertible QoS target: RUM vector + timeslot + mode."""

    resources: ResourceVector
    timeslot: Optional[TimeslotRequest] = None
    mode: ExecutionMode = ExecutionMode.strict()

    def __post_init__(self) -> None:
        if self.resources.is_zero():
            raise ValueError("a QoS target must request some resources")

    @property
    def is_convertible(self) -> bool:
        """RUM targets are convertible by definition (Definition 1)."""
        return True

    def reservation_duration(self) -> Optional[float]:
        """Length of the reservation this target needs, mode-adjusted.

        ``None`` for targets without a timeslot (lifetime reservation);
        0.0 for Opportunistic jobs (no reservation).
        """
        if self.timeslot is None:
            return None
        return self.mode.reservation_duration(self.timeslot.max_wall_clock)

    def with_mode(self, mode: ExecutionMode) -> "QoSTarget":
        """A copy of this target under a different execution mode."""
        return QoSTarget(self.resources, self.timeslot, mode)


#: Preset RUM targets (Section 3.2 suggests small/medium/large presets,
#: mirroring batch-job systems).  Presets simplify user choice but
#: exacerbate overspecification — the fragmentation the paper's
#: execution modes then recover.
PRESET_TARGETS: Dict[str, ResourceVector] = {
    "small": ResourceVector(cores=1, cache_ways=3),
    "medium": ResourceVector(cores=1, cache_ways=7),
    "large": ResourceVector(cores=2, cache_ways=12),
}


# -----------------------------------------------------------------------------
# Non-convertible targets (kept to reproduce the paper's argument)
# -----------------------------------------------------------------------------


class TargetResolutionError(Exception):
    """A performance-metric target could not be converted into resources."""


@dataclass(frozen=True)
class IpcTarget:
    """An OPM target: "give me at least this IPC".

    Not convertible without an elaborate per-job performance model.  The
    :meth:`resolve` method *is* that elaborate model — it needs the
    job's profiled miss-ratio curve plus its CPI decomposition, and can
    still fail when the target exceeds what any allocation achieves
    (an ill-defined target, Section 3.2).
    """

    min_ipc: float

    def __post_init__(self) -> None:
        check_positive("min_ipc", self.min_ipc)

    @property
    def is_convertible(self) -> bool:
        """OPM targets are not convertible (the paper's argument)."""
        return False

    def resolve(
        self, curve: MissRatioCurve, cpi_model: CpiModel, *, max_ways: int = 16
    ) -> ResourceVector:
        """Greedy search for the smallest allocation meeting the IPC.

        Mirrors the run-time profiling search the paper cites as
        evidence of IPC's unsuitability.  Raises
        :class:`TargetResolutionError` when unsatisfiable.
        """
        for ways in range(1, max_ways + 1):
            if cpi_model.ipc(curve.mpi(ways)) >= self.min_ipc:
                return ResourceVector(cores=1, cache_ways=ways)
        best = cpi_model.ipc(curve.mpi(max_ways))
        raise TargetResolutionError(
            f"IPC target {self.min_ipc} unreachable: even {max_ways} ways "
            f"achieve only {best:.3f}"
        )


@dataclass(frozen=True)
class MissRateTarget:
    """An RPM target: "keep my L2 miss rate at or below this".

    Also non-convertible, and possibly ill-defined: a compulsory-miss-
    dominated job cannot reach a low miss rate with *any* allocation.
    """

    max_miss_rate: float

    def __post_init__(self) -> None:
        check_fraction("max_miss_rate", self.max_miss_rate)

    @property
    def is_convertible(self) -> bool:
        """RPM targets are not convertible (the paper's argument)."""
        return False

    def resolve(
        self, curve: MissRatioCurve, *, max_ways: int = 16
    ) -> ResourceVector:
        """Smallest allocation meeting the miss rate, if one exists."""
        ways = curve.min_ways_for_miss_rate(self.max_miss_rate)
        if ways is None or ways > max_ways:
            floor = curve.miss_rate(max_ways)
            raise TargetResolutionError(
                f"miss-rate target {self.max_miss_rate:.2%} unreachable: "
                f"the curve bottoms out at {floor:.2%}"
            )
        return ResourceVector(cores=1, cache_ways=max(1, ways))
