"""Evaluation configurations (Table 2 of the paper).

Five configurations drive the evaluation:

==================== =========================================================
All-Strict            100% Strict jobs (the QoS baseline).
Hybrid-1              70% Strict + 30% Opportunistic.
Hybrid-2              40% Strict + 30% Elastic(5%) + 30% Opportunistic.
All-Strict+AutoDown   100% Strict; jobs with moderate or relaxed deadlines
                      are automatically downgraded (run Opportunistically
                      until their late-placed reserved timeslot).
EqualPart             No admission control, default Linux-like scheduling,
                      L2 equally partitioned among cores (mimics Virtual
                      Private Caches without admission control).
==================== =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.modes import ExecutionMode, ModeKind
from repro.util.validation import check_fraction


@dataclass(frozen=True)
class ModeMixConfig:
    """One Table 2 configuration."""

    name: str
    strict_fraction: float
    elastic_fraction: float = 0.0
    opportunistic_fraction: float = 0.0
    elastic_slack: float = 0.05
    auto_downgrade: bool = False
    equal_partition: bool = False

    def __post_init__(self) -> None:
        check_fraction("strict_fraction", self.strict_fraction)
        check_fraction("elastic_fraction", self.elastic_fraction)
        check_fraction("opportunistic_fraction", self.opportunistic_fraction)
        total = (
            self.strict_fraction
            + self.elastic_fraction
            + self.opportunistic_fraction
        )
        if not self.equal_partition and abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"mode fractions must sum to 1, got {total} in {self.name}"
            )
        if self.elastic_fraction > 0:
            check_fraction("elastic_slack", self.elastic_slack)

    @property
    def uses_admission_control(self) -> bool:
        """EqualPart is the only configuration without a LAC."""
        return not self.equal_partition

    def mode_sequence(self, count: int) -> List[ExecutionMode]:
        """Deterministically assign modes to ``count`` jobs by fraction.

        Greedy largest-deficit assignment: at each position the mode
        furthest behind its target share is chosen.  This interleaves
        modes (S O S S O …) rather than batching them, matching the
        paper's mixed arrival streams, and is exactly reproducible.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        fractions = {
            ModeKind.STRICT: self.strict_fraction,
            ModeKind.ELASTIC: self.elastic_fraction,
            ModeKind.OPPORTUNISTIC: self.opportunistic_fraction,
        }
        # EqualPart runs everything unreserved; model jobs as Strict
        # requests that simply bypass admission.
        if self.equal_partition:
            return [ExecutionMode.strict() for _ in range(count)]
        assigned = {kind: 0 for kind in fractions}
        sequence: List[ExecutionMode] = []
        for position in range(1, count + 1):
            deficits = {
                kind: fraction * position - assigned[kind]
                for kind, fraction in fractions.items()
                if fraction > 0
            }
            kind = max(
                sorted(deficits, key=lambda k: k.value),
                key=lambda k: deficits[k],
            )
            assigned[kind] += 1
            if kind is ModeKind.ELASTIC:
                sequence.append(ExecutionMode.elastic(self.elastic_slack))
            elif kind is ModeKind.STRICT:
                sequence.append(ExecutionMode.strict())
            else:
                sequence.append(ExecutionMode.opportunistic())
        return sequence


ALL_STRICT = ModeMixConfig(name="All-Strict", strict_fraction=1.0)

HYBRID_1 = ModeMixConfig(
    name="Hybrid-1",
    strict_fraction=0.7,
    opportunistic_fraction=0.3,
)

HYBRID_2 = ModeMixConfig(
    name="Hybrid-2",
    strict_fraction=0.4,
    elastic_fraction=0.3,
    opportunistic_fraction=0.3,
    elastic_slack=0.05,
)

ALL_STRICT_AUTODOWN = ModeMixConfig(
    name="All-Strict+AutoDown",
    strict_fraction=1.0,
    auto_downgrade=True,
)

EQUAL_PART = ModeMixConfig(
    name="EqualPart",
    strict_fraction=1.0,
    equal_partition=True,
)

CONFIGURATIONS: Dict[str, ModeMixConfig] = {
    config.name: config
    for config in (
        ALL_STRICT,
        HYBRID_1,
        HYBRID_2,
        ALL_STRICT_AUTODOWN,
        EQUAL_PART,
    )
}
