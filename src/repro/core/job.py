"""Jobs: the unit of admission and QoS accounting (Section 3.1).

A *job* is an aperiodic computation with its own QoS target — here, one
instance of a single-threaded benchmark, as in the paper.  The class
tracks the full lifecycle the evaluation needs: submission, the
admission decision, mode changes (manual or automatic downgrade and the
switch-back to Strict), execution progress in instructions, and the
completion/deadline bookkeeping behind Figures 5–7.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.modes import ExecutionMode
from repro.core.spec import QoSTarget
from repro.util.validation import check_non_negative, check_positive


class JobState(enum.Enum):
    """Lifecycle states of a job."""

    SUBMITTED = "submitted"
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    RUNNING = "running"
    COMPLETED = "completed"
    TERMINATED = "terminated"


@dataclass
class Job:
    """One admitted-or-rejected unit of computation."""

    job_id: int
    benchmark: str
    target: QoSTarget
    arrival_time: float
    instructions: int

    state: JobState = JobState.SUBMITTED
    current_mode: ExecutionMode = field(init=False)
    mode_history: List[Tuple[float, ExecutionMode]] = field(default_factory=list)
    auto_downgraded: bool = False
    switch_back_time: Optional[float] = None

    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    terminated_time: Optional[float] = None
    executed_instructions: int = 0
    assigned_core: Optional[int] = None

    def __post_init__(self) -> None:
        check_non_negative("arrival_time", self.arrival_time)
        check_positive("instructions", self.instructions)
        self.current_mode = self.target.mode
        self.mode_history.append((self.arrival_time, self.target.mode))

    # -- convenient accessors ---------------------------------------------------

    @property
    def requested_mode(self) -> ExecutionMode:
        """The mode the user originally asked for."""
        return self.target.mode

    @property
    def deadline(self) -> Optional[float]:
        """Absolute deadline, if the target includes one."""
        if self.target.timeslot is None:
            return None
        return self.target.timeslot.deadline

    @property
    def max_wall_clock(self) -> Optional[float]:
        """The target's maximum wall-clock time ``tw``."""
        if self.target.timeslot is None:
            return None
        return self.target.timeslot.max_wall_clock

    @property
    def remaining_instructions(self) -> int:
        """Instructions left to retire."""
        return max(0, self.instructions - self.executed_instructions)

    @property
    def is_finished(self) -> bool:
        """True once all instructions have retired."""
        return self.executed_instructions >= self.instructions

    @property
    def wall_clock_time(self) -> Optional[float]:
        """Start-to-completion duration; ``None`` while unfinished."""
        if self.start_time is None or self.completion_time is None:
            return None
        return self.completion_time - self.start_time

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the job completed by its deadline.

        ``False`` for terminated jobs (Section 3.2: a job may be
        terminated when it overruns its maximum wall-clock time — it
        then never completes).  ``None`` while unfinished or when the
        job has no deadline (jobs without deadlines trivially cannot
        miss one and are excluded from hit-rate statistics, as in the
        paper).
        """
        if self.deadline is None:
            return None
        if self.state is JobState.TERMINATED:
            return False
        if self.completion_time is None:
            return None
        return self.completion_time <= self.deadline

    # -- lifecycle transitions -----------------------------------------------------

    def change_mode(self, at_time: float, mode: ExecutionMode) -> None:
        """Record a mode change (downgrade or switch-back)."""
        if mode == self.current_mode:
            return
        self.current_mode = mode
        self.mode_history.append((at_time, mode))

    def mark_accepted(self) -> None:
        """Admission succeeded."""
        self._require_state(JobState.SUBMITTED)
        self.state = JobState.ACCEPTED

    def mark_rejected(self) -> None:
        """Admission failed; the job never runs."""
        self._require_state(JobState.SUBMITTED)
        self.state = JobState.REJECTED

    def mark_started(self, at_time: float, core_id: int) -> None:
        """The job begins executing on ``core_id``."""
        self._require_state(JobState.ACCEPTED)
        self.state = JobState.RUNNING
        self.start_time = at_time
        self.assigned_core = core_id

    def advance(self, instructions: int) -> None:
        """Retire ``instructions`` more instructions."""
        check_non_negative("instructions", instructions)
        self.executed_instructions += instructions

    def mark_completed(self, at_time: float) -> None:
        """All instructions retired."""
        self._require_state(JobState.RUNNING)
        self.state = JobState.COMPLETED
        self.completion_time = at_time
        self.assigned_core = None

    def mark_terminated(self, at_time: float) -> None:
        """Killed for overrunning its maximum wall-clock time (§3.2).

        The batch-system contract the paper borrows: users expect a job
        may be terminated past its declared ``tw``.  Terminated jobs
        never complete and count as deadline misses.
        """
        self._require_state(JobState.RUNNING)
        self.state = JobState.TERMINATED
        self.terminated_time = at_time
        self.assigned_core = None

    def _require_state(self, expected: JobState) -> None:
        if self.state is not expected:
            raise ValueError(
                f"job {self.job_id}: expected state {expected.value}, "
                f"found {self.state.value}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, bench={self.benchmark}, "
            f"mode={self.current_mode.describe()}, state={self.state.value})"
        )
