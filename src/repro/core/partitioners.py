"""Related-work cache partitioning policies (Section 2).

The paper positions its framework against partitioners that optimise a
*global* objective rather than guaranteeing anything to individual
jobs:

- **Miss-minimising** (Suh et al. / Qureshi's utility-based flavour):
  allocate ways greedily by marginal miss reduction, minimising the
  total miss count.  Greedy is optimal when the miss-ratio curves are
  convex, which the profiled curves nearly are.
- **Fairness-oriented** (Kim et al.): equalise per-job slowdown
  relative to running alone, by repeatedly feeding the currently
  most-slowed job.
- **Equal split**: the EqualPart/VPC static baseline.

All three are *resource managers without guarantees*: the comparison
test shows each can leave a job below a QoS target that the paper's
admission-controlled framework would have either guaranteed or
honestly rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.cpu.cpi import CpiModel
from repro.util.validation import check_positive
from repro.workloads.profiler import MissRatioCurve


@dataclass(frozen=True)
class PartitionedJob:
    """One job competing for the shared cache."""

    job_id: int
    curve: MissRatioCurve
    cpi_model: CpiModel
    # Weight for the miss-minimising objective (e.g. accesses/second).
    weight: float = 1.0

    def __post_init__(self) -> None:
        check_positive("weight", self.weight)

    def misses(self, ways: int) -> float:
        """Weighted misses per instruction at ``ways``."""
        return self.weight * self.curve.mpi(ways)

    def slowdown(self, ways: int, *, alone_ways: int) -> float:
        """CPI at ``ways`` relative to running alone with the cache."""
        alone = self.cpi_model.cpi(self.curve.mpi(alone_ways))
        return self.cpi_model.cpi(self.curve.mpi(ways)) / alone


def equal_partition(
    jobs: Mapping[int, PartitionedJob], total_ways: int
) -> Dict[int, int]:
    """The EqualPart split: floor(total/n), remainder to low ids."""
    check_positive("total_ways", total_ways)
    if not jobs:
        return {}
    share, remainder = divmod(total_ways, len(jobs))
    allocation = {}
    for index, job_id in enumerate(sorted(jobs)):
        allocation[job_id] = share + (1 if index < remainder else 0)
    return allocation


def min_miss_partition(
    jobs: Mapping[int, PartitionedJob],
    total_ways: int,
    *,
    min_ways: int = 1,
) -> Dict[int, int]:
    """Greedy marginal-utility allocation minimising total misses.

    Every job starts at ``min_ways``; each remaining way goes to the
    job whose miss count drops most from one more way (Suh/Qureshi).
    Greedy is optimal for convex curves; for the mildly non-convex
    profiled curves it is the standard approximation those papers use.
    """
    check_positive("total_ways", total_ways)
    check_positive("min_ways", min_ways)
    if not jobs:
        return {}
    if len(jobs) * min_ways > total_ways:
        raise ValueError(
            f"{len(jobs)} jobs need at least {len(jobs) * min_ways} ways; "
            f"only {total_ways} available"
        )
    allocation = {job_id: min_ways for job_id in jobs}
    for _ in range(total_ways - min_ways * len(jobs)):
        best_id: Optional[int] = None
        best_gain = -1.0
        for job_id in sorted(jobs):
            job = jobs[job_id]
            ways = allocation[job_id]
            gain = job.misses(ways) - job.misses(ways + 1)
            if gain > best_gain:
                best_gain = gain
                best_id = job_id
        allocation[best_id] += 1  # type: ignore[index]
    return allocation


def fair_slowdown_partition(
    jobs: Mapping[int, PartitionedJob],
    total_ways: int,
    *,
    min_ways: int = 1,
    alone_ways: Optional[int] = None,
) -> Dict[int, int]:
    """Kim-style fairness: repeatedly feed the most-slowed job.

    Equalises slowdown relative to running alone with ``alone_ways``
    (defaults to the whole cache).
    """
    check_positive("total_ways", total_ways)
    if not jobs:
        return {}
    if len(jobs) * min_ways > total_ways:
        raise ValueError(
            f"{len(jobs)} jobs need at least {len(jobs) * min_ways} ways; "
            f"only {total_ways} available"
        )
    reference = alone_ways if alone_ways is not None else total_ways
    allocation = {job_id: min_ways for job_id in jobs}
    for _ in range(total_ways - min_ways * len(jobs)):
        worst_id = max(
            sorted(jobs),
            key=lambda job_id: jobs[job_id].slowdown(
                allocation[job_id], alone_ways=reference
            ),
        )
        allocation[worst_id] += 1
    return allocation


@dataclass(frozen=True)
class PartitionOutcome:
    """Evaluation of one policy's allocation."""

    allocation: Dict[int, int]
    total_misses: float
    worst_slowdown: float
    slowdown_spread: float
    ipc: Dict[int, float]


def evaluate_partition(
    jobs: Mapping[int, PartitionedJob],
    allocation: Mapping[int, int],
    *,
    alone_ways: Optional[int] = None,
) -> PartitionOutcome:
    """Score an allocation on the objectives the Section 2 papers use."""
    if set(jobs) != set(allocation):
        raise ValueError("allocation must cover exactly the given jobs")
    reference = (
        alone_ways if alone_ways is not None else sum(allocation.values())
    )
    slowdowns = {
        job_id: jobs[job_id].slowdown(
            allocation[job_id], alone_ways=reference
        )
        for job_id in jobs
    }
    return PartitionOutcome(
        allocation=dict(allocation),
        total_misses=sum(
            jobs[job_id].misses(allocation[job_id]) for job_id in jobs
        ),
        worst_slowdown=max(slowdowns.values()),
        slowdown_spread=max(slowdowns.values()) - min(slowdowns.values()),
        ipc={
            job_id: jobs[job_id].cpi_model.ipc(
                jobs[job_id].curve.mpi(allocation[job_id])
            )
            for job_id in jobs
        },
    )
