"""Evaluation metrics (Section 7).

- **Deadline hit rate** (Figures 5a, 9a): fraction of jobs meeting their
  deadlines.  For QoS configurations the paper computes it over Strict
  and Elastic jobs only (Opportunistic jobs made no deadline promise).
- **Job throughput** (Figures 5b, 9b): wall-clock time to complete the
  first ten accepted jobs, reported normalised to All-Strict.
- **Wall-clock summaries** (Figure 6): average plus min/max "candles"
  per requested mode.
- **LAC occupancy** (Section 7.5): admission-control overhead as a
  fraction of workload wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.admission import LacStatistics
from repro.core.job import Job, JobState
from repro.core.modes import ModeKind
from repro.util.stats import RunningStats
from repro.util.validation import check_positive


@dataclass(frozen=True)
class DeadlineReport:
    """Deadline outcomes over a set of jobs."""

    considered: int
    met: int

    @property
    def hit_rate(self) -> float:
        """Fraction of considered jobs meeting their deadline (1.0 if none)."""
        return self.met / self.considered if self.considered else 1.0

    @staticmethod
    def from_jobs(
        jobs: Iterable[Job],
        *,
        reserved_modes_only: bool = True,
    ) -> "DeadlineReport":
        """Build the report from completed jobs.

        ``reserved_modes_only`` restricts to jobs whose *requested* mode
        was Strict or Elastic (the paper's convention for QoS
        configurations); set it False for EqualPart, where every job's
        deadline counts.
        """
        considered = 0
        met = 0
        for job in jobs:
            if job.deadline is None:
                continue
            if (
                reserved_modes_only
                and job.requested_mode.kind is ModeKind.OPPORTUNISTIC
            ):
                continue
            if job.state is JobState.REJECTED:
                continue
            considered += 1
            outcome = job.met_deadline
            if outcome is None:
                # Unfinished by the end of the measurement window: the
                # deadline was effectively missed.
                continue
            if outcome:
                met += 1
        return DeadlineReport(considered=considered, met=met)


@dataclass(frozen=True)
class ThroughputReport:
    """Makespan of the first N accepted jobs (Section 6's metric)."""

    jobs_measured: int
    makespan: float

    @property
    def jobs_per_time(self) -> float:
        """Raw throughput (jobs per unit time)."""
        return self.jobs_measured / self.makespan if self.makespan else 0.0

    def normalised_to(self, baseline: "ThroughputReport") -> float:
        """Throughput relative to a baseline (>1 means faster).

        Defined as ``baseline.makespan / self.makespan``: completing the
        same ten jobs in less wall-clock time is proportionally higher
        throughput, which is how Figures 5(b) and 9(b) normalise.
        """
        if self.makespan == 0:
            raise ValueError("cannot normalise a zero makespan")
        return baseline.makespan / self.makespan

    @staticmethod
    def from_jobs(jobs: Sequence[Job], *, first_n: int = 10) -> "ThroughputReport":
        """Makespan of the first ``first_n`` *accepted* jobs.

        Jobs must be in acceptance order.  Terminated jobs never
        complete and are skipped (they consumed their reserved slot but
        produce no finished work).  Raises if fewer than ``first_n``
        accepted jobs completed — the experiment harness is expected to
        run until they have.
        """
        check_positive("first_n", first_n)
        accepted = [
            job
            for job in jobs
            if job.state not in (JobState.REJECTED, JobState.TERMINATED)
        ]
        measured = accepted[:first_n]
        if len(measured) < first_n:
            raise ValueError(
                f"only {len(measured)} accepted jobs, need {first_n}"
            )
        completions = []
        for job in measured:
            if job.completion_time is None:
                raise ValueError(
                    f"job {job.job_id} has not completed; run the "
                    "simulation to completion first"
                )
            completions.append(job.completion_time)
        return ThroughputReport(
            jobs_measured=first_n, makespan=max(completions)
        )


@dataclass
class WallClockSummary:
    """Per-mode wall-clock statistics (the Figure 6 candles)."""

    per_mode: Dict[str, RunningStats] = field(default_factory=dict)

    def add_job(self, job: Job) -> None:
        """Fold one completed job's wall-clock time in, keyed by mode.

        Jobs are keyed by their *requested* mode plus an ``+AutoDown``
        tag when they were automatically downgraded, matching how
        Figure 6 separates the bars.
        """
        wall_clock = job.wall_clock_time
        if wall_clock is None:
            return
        key = job.requested_mode.describe()
        if job.auto_downgraded:
            key += "+AutoDown"
        self.per_mode.setdefault(key, RunningStats()).add(wall_clock)

    @staticmethod
    def from_jobs(jobs: Iterable[Job]) -> "WallClockSummary":
        """Summarise every completed job."""
        summary = WallClockSummary()
        for job in jobs:
            summary.add_job(job)
        return summary

    def modes(self) -> List[str]:
        """Mode keys present, sorted for stable reporting."""
        return sorted(self.per_mode)

    def stats_for(self, mode_key: str) -> RunningStats:
        """Statistics for one mode key."""
        try:
            return self.per_mode[mode_key]
        except KeyError:
            raise ValueError(
                f"no jobs recorded for mode {mode_key!r}; have "
                f"{self.modes()}"
            ) from None


@dataclass(frozen=True)
class DowngradeRecord:
    """One rung-by-rung mode downgrade taken during fault recovery.

    Modes are recorded as their ``describe()`` strings so the record
    stays a plain serialisable value; ``to_mode`` is ``"best-effort"``
    when the job fell off the bottom of the ladder and surrendered its
    guarantee entirely.
    """

    time: float
    job_id: int
    from_mode: str
    to_mode: str
    reason: str


@dataclass(frozen=True)
class ResilienceReport:
    """What the fault-injection layer did to one simulation.

    Produced by the system simulator whenever a
    :class:`~repro.faults.model.FaultConfig` was supplied (even an
    all-zero one, so tests can assert the zero-fault case is truly
    empty).  Fault kinds are keyed by their string values to keep this
    module free of a dependency on :mod:`repro.faults`.
    """

    faults_injected: int
    fault_counts: Dict[str, int]
    downgrades: Tuple[DowngradeRecord, ...]
    displacements: int
    readmissions: int
    readmission_attempts: int
    deferred_dispatches: int
    best_effort_jobs: int
    ecc_cancellations: int
    invariant_checks: int

    @property
    def downgrade_count(self) -> int:
        """Total downgrade rungs taken across all jobs."""
        return len(self.downgrades)

    def downgrades_for(self, job_id: int) -> Tuple[DowngradeRecord, ...]:
        """The downgrade sequence one job walked, in time order."""
        return tuple(
            record for record in self.downgrades if record.job_id == job_id
        )


@dataclass
class LacOccupancyTracker:
    """Estimate the LAC's overhead (Section 7.5).

    The paper implements the LAC as a user-level program and observes
    its occupancy below 1% of workload wall-clock time.  We charge a
    fixed cost per admission test plus a smaller cost per candidate
    window evaluated, then divide by the workload's total cycles.
    """

    cycles_per_admission_test: float = 5_000.0
    cycles_per_window_check: float = 500.0

    def occupancy_fraction(
        self,
        lac_stats: LacStatistics,
        *,
        workload_cycles: float,
    ) -> float:
        """LAC busy-fraction of the workload's wall-clock cycles."""
        check_positive("workload_cycles", workload_cycles)
        busy = (
            lac_stats.admission_tests * self.cycles_per_admission_test
            + lac_stats.candidate_windows_evaluated
            * self.cycles_per_window_check
        )
        return busy / workload_cycles

    def scaled_occupancy(
        self,
        lac_stats: LacStatistics,
        *,
        workload_cycles: float,
        job_multiplier: float = 1.0,
        core_multiplier: float = 1.0,
    ) -> float:
        """Occupancy under scaled job-arrival rate and core count.

        Section 7.5 notes the overhead grows proportionally with
        submitted jobs and cores while remaining low; this extrapolates
        that claim for the characterisation bench.
        """
        check_positive("job_multiplier", job_multiplier)
        check_positive("core_multiplier", core_multiplier)
        base = self.occupancy_fraction(
            lac_stats, workload_cycles=workload_cycles
        )
        return base * job_multiplier * core_multiplier
