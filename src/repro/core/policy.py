"""Closed-loop adaptive QoS policy engine.

The paper fixes target allocations offline and evaluates three static
execution modes.  This module closes the loop: a :class:`Policy` observes a
:class:`SensorSnapshot` of the running system each decision epoch and emits
absolute-target actions (:class:`SetWays`, :class:`SetBusGrant`,
:class:`SetShare`) that the simulator applies through the partition manager
and fair-queue actuators.

Design invariants the conformance laws pin down (``repro verify laws
--policy all``):

* **Capacity conservation** — at every epoch boundary the reserved ways plus
  spare ways equal the machine's L2 ways, and spare never goes negative.
* **Actuation idempotence** — actions carry absolute targets, so re-applying
  an already-applied action is a no-op (``apply_action`` returns ``False``).
* **Throughput floor** — running a policy never loses deadlines or
  meaningfully inflates makespan versus the policy-free run.

Adaptive policies read the snapshot as the single source of truth for
current allocations (never their own memory of past actions), which is what
makes the idempotence law hold by construction: a policy that wants the
state the snapshot already shows emits nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.resilience import RetryPolicy

__all__ = [
    "JobSensor",
    "SensorSnapshot",
    "PolicyAction",
    "SetWays",
    "SetBusGrant",
    "SetShare",
    "ActuatorState",
    "apply_action",
    "PartitionActuator",
    "FairQueueActuator",
    "Policy",
    "StaticModePolicy",
    "GrowShrinkWaysPolicy",
    "BandwidthStealPolicy",
    "ADAPTIVE_POLICIES",
    "STATIC_POLICIES",
    "make_policy",
    "policy_names",
    "disabled_variant",
]


# ---------------------------------------------------------------------------
# Sensors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobSensor:
    """Per-job reading taken at a decision epoch.

    ``rates_by_ways[w]`` is the model-predicted execution rate (instructions
    per second) the job would sustain with ``w`` L2 ways at full CPU share
    and an uncontended bus.  It is only populated for reserved jobs that a
    policy may resize; index 0 is always 0.0.
    """

    job_id: int
    mode: str
    reserved: bool
    elastic: bool
    ways: int
    requested_ways: int
    progress: float
    instructions: int
    rate: float
    deadline: Optional[float]
    reservation_end: Optional[float]
    projected_finish: float
    miss_increase_fraction: float
    rates_by_ways: Tuple[float, ...] = ()

    def limit(self) -> float:
        """Earliest hard completion bound (deadline or reservation end)."""

        bounds = [b for b in (self.deadline, self.reservation_end) if b is not None]
        return min(bounds) if bounds else math.inf

    def slack_fraction(self, now: float) -> float:
        """Fraction of the remaining horizon left after the projected finish.

        Positive means headroom, negative means a projected violation, and
        ``inf`` means the job has no hard bound at all.
        """

        limit = self.limit()
        if not math.isfinite(limit):
            return math.inf
        horizon = limit - now
        if horizon <= 0.0:
            return 0.0 if self.projected_finish <= limit else -math.inf
        return (limit - self.projected_finish) / horizon

    def finish_at(self, now: float, ways: int) -> float:
        """Model-predicted finish time if the job ran with ``ways`` ways."""

        if ways < 0 or ways >= len(self.rates_by_ways):
            return math.inf
        rate = self.rates_by_ways[ways]
        remaining = self.instructions - self.progress
        if remaining <= 0.0:
            return now
        if rate <= 0.0:
            return math.inf
        return now + remaining / rate


@dataclass(frozen=True)
class SensorSnapshot:
    """System-wide reading taken at a decision epoch."""

    now: float
    epoch_index: int
    l2_ways: int
    reserved_ways: int
    spare_ways: int
    bus_utilisation: float
    bus_saturated: bool
    bus_granted: bool
    jobs: Tuple[JobSensor, ...] = ()

    def job(self, job_id: int) -> Optional[JobSensor]:
        for sensor in self.jobs:
            if sensor.job_id == job_id:
                return sensor
        return None


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SetWays:
    """Set a reserved job's L2 allocation to an absolute way count."""

    job_id: int
    ways: int

    kind = "set_ways"

    def describe(self) -> Dict[str, object]:
        return {"action": self.kind, "job_id": self.job_id, "ways": self.ways}


@dataclass(frozen=True)
class SetBusGrant:
    """Grant (or revoke) full bus share to opportunistic traffic."""

    granted: bool

    kind = "set_bus_grant"

    def describe(self) -> Dict[str, object]:
        return {"action": self.kind, "granted": self.granted}


@dataclass(frozen=True)
class SetShare:
    """Set a core's fair-queue bandwidth share to an absolute fraction."""

    core_id: int
    share: float

    kind = "set_share"

    def describe(self) -> Dict[str, object]:
        return {"action": self.kind, "core_id": self.core_id, "share": self.share}


PolicyAction = object  # union of SetWays | SetBusGrant | SetShare


# ---------------------------------------------------------------------------
# Actuation harness
# ---------------------------------------------------------------------------


@dataclass
class ActuatorState:
    """Mutable shadow of the actuatable system state.

    The simulator rebuilds one of these from live state each epoch and runs
    every proposed action through :func:`apply_action`; only actions that
    report a change are committed.  The conformance suite drives the same
    harness directly, so the idempotence law exercises exactly the code the
    simulator uses.
    """

    total_ways: int
    ways: Dict[int, int] = field(default_factory=dict)
    caps: Dict[int, int] = field(default_factory=dict)
    locked: frozenset = frozenset()
    bus_granted: bool = False
    shares: Dict[int, float] = field(default_factory=dict)

    def reserved_total(self) -> int:
        return sum(self.ways.values())

    def spare(self) -> int:
        return self.total_ways - self.reserved_total()


def apply_action(state: ActuatorState, action: PolicyAction) -> bool:
    """Apply ``action`` to ``state``; return True iff anything changed.

    Invalid or unsafe actions (unknown job, oversubscription, cap overflow)
    are rejected by returning ``False`` without mutating the state, so the
    caller can treat the return value as "effective".
    """

    if isinstance(action, SetWays):
        current = state.ways.get(action.job_id)
        if current is None or action.job_id in state.locked:
            return False
        if action.ways < 1 or action.ways == current:
            return False
        cap = state.caps.get(action.job_id)
        if cap is not None and action.ways > cap:
            return False
        if action.ways - current > state.spare():
            return False
        state.ways[action.job_id] = action.ways
        return True
    if isinstance(action, SetBusGrant):
        if action.granted == state.bus_granted:
            return False
        state.bus_granted = action.granted
        return True
    if isinstance(action, SetShare):
        if action.share <= 0.0:
            return False
        current = state.shares.get(action.core_id)
        if current is not None and math.isclose(
            current, action.share, rel_tol=0.0, abs_tol=1e-12
        ):
            return False
        others = sum(s for c, s in state.shares.items() if c != action.core_id)
        if others + action.share > 1.0 + 1e-9:
            return False
        state.shares[action.core_id] = action.share
        return True
    return False


class PartitionActuator:
    """Apply :class:`SetWays` decisions to a :class:`PartitionManager`.

    Reassignment keeps the partition class and is a checked no-op when the
    target equals the current reservation, mirroring ``apply_action``.
    """

    def __init__(self, manager) -> None:
        self.manager = manager

    def set_ways(self, core_id: int, ways: int) -> bool:
        if self.manager.reserved_allocation(core_id) == ways:
            return False
        self.manager.assign(core_id, ways, self.manager.class_of(core_id))
        return True


class FairQueueActuator:
    """Apply :class:`SetShare` decisions to a :class:`FairQueueBus`."""

    def __init__(self, bus) -> None:
        self.bus = bus

    def set_share(self, core_id: int, share: float) -> bool:
        return self.bus.set_share(core_id, share)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


class Policy:
    """Strategy interface: observe a snapshot, emit absolute-target actions.

    ``adaptive`` gates epoch scheduling in the simulator — non-adaptive
    (static) policies never observe anything, so a run under a static
    wrapper is byte-identical to a run with no policy at all.
    """

    name: str = "policy"
    adaptive: bool = False

    def reset(self) -> None:
        """Clear internal state before a run (policies may be reused)."""

    def decide(self, snapshot: SensorSnapshot) -> Tuple[PolicyAction, ...]:
        return ()


class StaticModePolicy(Policy):
    """Degenerate policy wrapping one of the paper's static execution modes.

    The static modes (Strict / Elastic / Opportunistic) are enforced by the
    admission and partitioning machinery itself; the wrapper exists so every
    mode runs through the one policy interface and the conformance laws.
    """

    adaptive = False

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self.name = mode

    def decide(self, snapshot: SensorSnapshot) -> Tuple[PolicyAction, ...]:
        return ()


class GrowShrinkWaysPolicy(Policy):
    """Grow a tenant's L2 ways on projected SLO violation, shrink on
    sustained headroom.

    Targets reserved strict jobs only (elastic jobs are owned by their
    stealing controller).  A shrink is emitted only after ``patience``
    consecutive epochs of slack above ``dead_band`` *and* only if the
    model-predicted finish at the smaller allocation still leaves
    ``shrink_margin`` slack before ``min(deadline, reservation end)``.  A
    grow restores ways toward the admission-requested allocation and burns
    the restored level as a floor for that job, so a job can never oscillate:
    per job, ways moves monotonically downward between grows and each grow
    permanently raises the floor.

    ``dead_band=inf`` disables shrinking entirely; since jobs start at their
    requested ways and grows only restore toward requested, the disabled
    policy provably emits no actions and is byte-identical to the wrapped
    static mode (the ``policy`` differential pair checks this).
    """

    adaptive = True

    def __init__(
        self,
        *,
        dead_band: float = 0.25,
        patience: int = 2,
        shrink_margin: float = 0.10,
        min_ways: int = 1,
        step: int = 1,
        name: str = "grow-shrink",
    ) -> None:
        self.dead_band = dead_band
        self.patience = patience
        self.shrink_margin = shrink_margin
        self.min_ways = min_ways
        self.step = step
        self.name = name
        self._streak: Dict[int, int] = {}
        self._floor: Dict[int, int] = {}

    def reset(self) -> None:
        self._streak.clear()
        self._floor.clear()

    def decide(self, snapshot: SensorSnapshot) -> Tuple[PolicyAction, ...]:
        actions: List[PolicyAction] = []
        spare = snapshot.spare_ways
        for job in snapshot.jobs:
            if not job.reserved or job.elastic or job.mode != "strict":
                continue
            limit = job.limit()
            if not math.isfinite(limit):
                continue
            slack = job.slack_fraction(snapshot.now)
            floor = max(self.min_ways, self._floor.get(job.job_id, self.min_ways))
            if slack < 0.0 and job.ways < job.requested_ways:
                grow = min(self.step, job.requested_ways - job.ways, spare)
                if grow > 0:
                    target = job.ways + grow
                    actions.append(SetWays(job.job_id, target))
                    spare -= grow
                    self._floor[job.job_id] = max(
                        self._floor.get(job.job_id, self.min_ways), target
                    )
                self._streak[job.job_id] = 0
                continue
            if not math.isfinite(self.dead_band):
                self._streak[job.job_id] = 0
                continue
            candidate = job.ways - self.step
            if candidate < floor:
                self._streak[job.job_id] = 0
                continue
            horizon = limit - snapshot.now
            safe = False
            if slack > self.dead_band and horizon > 0.0:
                candidate_finish = job.finish_at(snapshot.now, candidate)
                candidate_slack = (limit - candidate_finish) / horizon
                safe = candidate_slack >= self.shrink_margin
            if safe:
                streak = self._streak.get(job.job_id, 0) + 1
                if streak >= self.patience:
                    actions.append(SetWays(job.job_id, candidate))
                    spare += self.step
                    streak = 0
                self._streak[job.job_id] = streak
            else:
                self._streak[job.job_id] = 0
        return tuple(actions)


class BandwidthStealPolicy(Policy):
    """Steal idle bus share for opportunistic traffic, with exponential
    backoff on recovery.

    When the measured bus utilisation sits below ``low_watermark`` the
    policy grants opportunistic traffic full bus share (the fair-queue
    penalty multiplier is forced to 1.0).  When utilisation climbs past
    ``release_threshold`` — the reserved tenants want their bandwidth back —
    the grant is released and the policy backs off exponentially (reusing
    :class:`repro.faults.resilience.RetryPolicy`) before trying to steal
    again.  ``stable_epochs`` of uninterrupted grant reset the backoff.

    The policy trusts ``snapshot.bus_granted`` as the source of truth for
    the current grant, so re-deciding on an already-actuated state emits
    nothing (idempotence law).  ``low_watermark < 0`` disables stealing.
    """

    adaptive = True

    def __init__(
        self,
        *,
        low_watermark: float = 0.5,
        release_threshold: float = 0.85,
        stable_epochs: int = 8,
        retry: Optional[RetryPolicy] = None,
        name: str = "bandwidth-steal",
    ) -> None:
        self.low_watermark = low_watermark
        self.release_threshold = release_threshold
        self.stable_epochs = stable_epochs
        self.retry = retry if retry is not None else RetryPolicy()
        self.name = name
        self._attempt = 0
        self._hold_until = 0.0
        self._stable = 0

    def reset(self) -> None:
        self._attempt = 0
        self._hold_until = 0.0
        self._stable = 0

    def decide(self, snapshot: SensorSnapshot) -> Tuple[PolicyAction, ...]:
        if snapshot.bus_granted:
            self._stable += 1
            if self._stable >= self.stable_epochs:
                self._attempt = 0
            if (
                snapshot.bus_utilisation >= self.release_threshold
                or snapshot.bus_saturated
            ):
                self._stable = 0
                attempt = min(self._attempt, self.retry.max_retries)
                self._hold_until = snapshot.now + self.retry.delay(attempt)
                self._attempt = min(self._attempt + 1, self.retry.max_retries)
                return (SetBusGrant(False),)
            return ()
        self._stable = 0
        if (
            snapshot.bus_utilisation < self.low_watermark
            and not snapshot.bus_saturated
            and snapshot.now >= self._hold_until
        ):
            return (SetBusGrant(True),)
        return ()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


STATIC_POLICIES: Tuple[str, ...] = ("strict", "elastic", "opportunistic")
ADAPTIVE_POLICIES: Tuple[str, ...] = ("grow-shrink", "bandwidth-steal")

_REGISTRY: Dict[str, Callable[[], Policy]] = {
    "strict": lambda: StaticModePolicy("strict"),
    "elastic": lambda: StaticModePolicy("elastic"),
    "opportunistic": lambda: StaticModePolicy("opportunistic"),
    "grow-shrink": lambda: GrowShrinkWaysPolicy(),
    "grow-shrink-off": lambda: GrowShrinkWaysPolicy(
        dead_band=math.inf, name="grow-shrink-off"
    ),
    "bandwidth-steal": lambda: BandwidthStealPolicy(),
    "bandwidth-steal-off": lambda: BandwidthStealPolicy(
        low_watermark=-1.0, name="bandwidth-steal-off"
    ),
}


def policy_names() -> Tuple[str, ...]:
    """All registered policy names, in registry order."""

    return tuple(_REGISTRY)


def disabled_variant(name: str) -> str:
    """Name of the adaptation-disabled variant of an adaptive policy."""

    if name not in ADAPTIVE_POLICIES:
        raise ValueError(f"no disabled variant for policy {name!r}")
    return f"{name}-off"


def make_policy(name: str) -> Policy:
    """Build a fresh policy instance from its registry name."""

    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown policy {name!r} (known: {known})") from None
    return factory()
