"""Per-node cache partition ledger.

Tracks which core owns how many L2 ways on one CMP node, keeps the
reserved/best-effort split consistent, redistributes *spare* (unreserved
plus stolen) ways among Opportunistic jobs, and can push the resulting
targets into a real :class:`~repro.cache.partitioned.WayPartitionedCache`.

Both consumers share it:

- the system simulator, which only needs the allocation numbers to look
  up miss rates on each job's curve, and
- cache-level integration tests/benches, which sync the ledger into an
  actual partitioned cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.partitioned import PartitionClass, WayPartitionedCache
from repro.util.validation import check_non_negative, check_positive


@dataclass
class _CoreAllocation:
    reserved_ways: int = 0  # the job's own (possibly stealing-reduced) share
    bonus_ways: int = 0  # spare ways granted on top (best-effort only)
    partition_class: PartitionClass = PartitionClass.UNASSIGNED

    @property
    def total_ways(self) -> int:
        return self.reserved_ways + self.bonus_ways


class PartitionManager:
    """Way-allocation ledger for one CMP node."""

    def __init__(self, total_ways: int, num_cores: int) -> None:
        check_positive("total_ways", total_ways)
        check_positive("num_cores", num_cores)
        self.total_ways = total_ways
        self.num_cores = num_cores
        self._cores: List[_CoreAllocation] = [
            _CoreAllocation() for _ in range(num_cores)
        ]

    # -- assignment ----------------------------------------------------------

    def assign(
        self, core_id: int, ways: int, partition_class: PartitionClass
    ) -> None:
        """Give ``core_id`` a reserved allocation of ``ways``."""
        self._check_core(core_id)
        check_non_negative("ways", ways)
        state = self._cores[core_id]
        old = state.reserved_ways
        state.reserved_ways = ways
        state.partition_class = partition_class
        if self.reserved_total() > self.total_ways:
            state.reserved_ways = old
            raise ValueError(
                f"assigning {ways} ways to core {core_id} would exceed the "
                f"{self.total_ways}-way cache"
            )
        self._trim_bonuses()

    def release(self, core_id: int) -> None:
        """Job departed: zero the core's allocation."""
        self._check_core(core_id)
        self._cores[core_id] = _CoreAllocation()

    def transfer(self, from_core: int, to_core: int, ways: int = 1) -> None:
        """Move reserved ways (resource stealing: Elastic → Opportunistic).

        The donor's *reserved* share shrinks; the recipient gains
        ``bonus`` ways, so cancelling the steal is the reverse move.
        """
        self._check_core(from_core)
        self._check_core(to_core)
        check_positive("ways", ways)
        donor = self._cores[from_core]
        if donor.reserved_ways < ways:
            raise ValueError(
                f"core {from_core} has only {donor.reserved_ways} reserved "
                f"ways; cannot donate {ways}"
            )
        donor.reserved_ways -= ways
        self._cores[to_core].bonus_ways += ways

    def restore(self, to_core: int, from_core: int, ways: int) -> None:
        """Return previously stolen ways to their owner (steal cancelled)."""
        self._check_core(from_core)
        self._check_core(to_core)
        check_positive("ways", ways)
        holder = self._cores[from_core]
        if holder.bonus_ways < ways:
            raise ValueError(
                f"core {from_core} holds only {holder.bonus_ways} bonus "
                f"ways; cannot return {ways}"
            )
        holder.bonus_ways -= ways
        self._cores[to_core].reserved_ways += ways

    # -- spare-way distribution -------------------------------------------------

    def reserved_total(self) -> int:
        """Total reserved (non-bonus) ways."""
        return sum(state.reserved_ways for state in self._cores)

    def spare_ways(self) -> int:
        """Ways neither reserved nor granted as bonus."""
        granted = sum(state.total_ways for state in self._cores)
        return self.total_ways - granted

    def redistribute_spare(self) -> Dict[int, int]:
        """Grant all spare ways evenly to best-effort cores.

        Opportunistic jobs utilise unallocated capacity (Section 7.1's
        Hybrid-1 discussion).  Returns the per-core *bonus* allocation
        after redistribution.  Earlier cores receive the remainder ways
        — deterministic, and immaterial to the aggregate results.
        """
        best_effort = [
            core_id
            for core_id, state in enumerate(self._cores)
            if state.partition_class is PartitionClass.BEST_EFFORT
        ]
        for core_id in best_effort:
            self._cores[core_id].bonus_ways = 0
        spare = self.total_ways - sum(
            state.total_ways for state in self._cores
        )
        if best_effort and spare > 0:
            share, remainder = divmod(spare, len(best_effort))
            for index, core_id in enumerate(best_effort):
                self._cores[core_id].bonus_ways += share + (
                    1 if index < remainder else 0
                )
        return {
            core_id: self._cores[core_id].bonus_ways
            for core_id in best_effort
        }

    def _trim_bonuses(self) -> None:
        """Shrink bonus grants when reserved demand grows."""
        while (
            self.total_ways
            < sum(state.total_ways for state in self._cores)
        ):
            donor = max(
                range(self.num_cores),
                key=lambda core_id: self._cores[core_id].bonus_ways,
            )
            if self._cores[donor].bonus_ways == 0:
                raise AssertionError(
                    "over-committed with no bonus ways to trim"
                )
            self._cores[donor].bonus_ways -= 1

    # -- queries --------------------------------------------------------------------

    def allocation(self, core_id: int) -> int:
        """Total ways (reserved + bonus) currently held by ``core_id``."""
        self._check_core(core_id)
        return self._cores[core_id].total_ways

    def reserved_allocation(self, core_id: int) -> int:
        """Reserved ways only."""
        self._check_core(core_id)
        return self._cores[core_id].reserved_ways

    def class_of(self, core_id: int) -> PartitionClass:
        """Partition class of ``core_id``."""
        self._check_core(core_id)
        return self._cores[core_id].partition_class

    def find_idle_core(self) -> Optional[int]:
        """Lowest-numbered unassigned core, or ``None``."""
        for core_id, state in enumerate(self._cores):
            if state.partition_class is PartitionClass.UNASSIGNED:
                return core_id
        return None

    def apply_to_cache(self, cache: WayPartitionedCache) -> None:
        """Push current targets and classes into a real partitioned cache."""
        if cache.num_cores != self.num_cores:
            raise ValueError(
                f"cache has {cache.num_cores} cores, ledger has "
                f"{self.num_cores}"
            )
        if cache.geometry.associativity != self.total_ways:
            raise ValueError(
                f"cache has {cache.geometry.associativity} ways, ledger "
                f"has {self.total_ways}"
            )
        for core_id, state in enumerate(self._cores):
            cache.set_target(core_id, 0)
        for core_id, state in enumerate(self._cores):
            cache.set_target(core_id, state.total_ways)
            cache.set_class(core_id, state.partition_class)

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise ValueError(
                f"core_id {core_id} out of range [0, {self.num_cores})"
            )
