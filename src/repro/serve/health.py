"""Health gates for the admission server: queue, in-flight, loop lag.

The server refuses work *before* it hurts, based on three signals it
can read cheaply on every request:

- **queue depth** — admit requests waiting for the decision worker;
- **in-flight count** — admitted jobs currently holding capacity;
- **event-loop lag** — how late the asyncio loop runs a timer that
  asked to fire at a known instant.  Lag is the one signal that sees
  *every* source of overload (CPU-bound decision storms, pathological
  request bodies, a noisy neighbour in the same process), which is why
  a pure queue/inflight gate is not enough.

Classification is hysteretic: OVERLOADED trips at 100% of a threshold,
but the state only returns to HEALTHY once every signal has fallen
below the recover fraction — so a server hovering at the edge does not
flap between shedding and admitting on every request.
"""

from __future__ import annotations

import asyncio
import enum
import time
from dataclasses import dataclass
from typing import Optional

from repro.util.validation import check_positive


class HealthState(enum.Enum):
    """Hysteretic health classification, healthiest first."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    OVERLOADED = "overloaded"


@dataclass(frozen=True)
class HealthThresholds:
    """Trip points for the three signals, plus hysteresis fractions."""

    max_queue_depth: int = 64
    max_inflight: int = 256
    max_loop_lag: float = 0.25  # seconds
    degraded_fraction: float = 0.75
    recover_fraction: float = 0.5

    def __post_init__(self) -> None:
        check_positive("max_queue_depth", self.max_queue_depth)
        check_positive("max_inflight", self.max_inflight)
        check_positive("max_loop_lag", self.max_loop_lag)
        if not 0.0 < self.recover_fraction <= self.degraded_fraction <= 1.0:
            raise ValueError(
                "need 0 < recover_fraction <= degraded_fraction <= 1, got "
                f"{self.recover_fraction} / {self.degraded_fraction}"
            )


@dataclass(frozen=True)
class HealthSnapshot:
    """One classified reading of the three signals."""

    state: HealthState
    queue_depth: int
    inflight: int
    loop_lag: float
    pressure: float  # max signal/threshold ratio, 1.0 == at the limit

    def to_dict(self) -> dict:
        return {
            "state": self.state.value,
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "loop_lag": round(self.loop_lag, 6),
            "pressure": round(self.pressure, 4),
        }


class HealthMonitor:
    """Classifies signal readings with hysteresis (see module docstring)."""

    def __init__(
        self, thresholds: Optional[HealthThresholds] = None
    ) -> None:
        self.thresholds = thresholds or HealthThresholds()
        self._state = HealthState.HEALTHY
        self.last: Optional[HealthSnapshot] = None

    @property
    def state(self) -> HealthState:
        return self._state

    def classify(
        self, *, queue_depth: int, inflight: int, loop_lag: float
    ) -> HealthSnapshot:
        """Fold a reading into the hysteretic state; returns the snapshot."""
        t = self.thresholds
        pressure = max(
            queue_depth / t.max_queue_depth,
            inflight / t.max_inflight,
            loop_lag / t.max_loop_lag,
        )
        if pressure >= 1.0:
            self._state = HealthState.OVERLOADED
        elif pressure >= t.degraded_fraction:
            # Entering or staying in the warning band.
            if self._state is not HealthState.OVERLOADED:
                self._state = HealthState.DEGRADED
        elif pressure < t.recover_fraction:
            self._state = HealthState.HEALTHY
        else:
            # Between recover and degraded: hold the previous state,
            # except OVERLOADED relaxes to DEGRADED (the 100% condition
            # itself has cleared).
            if self._state is HealthState.OVERLOADED:
                self._state = HealthState.DEGRADED
        snapshot = HealthSnapshot(
            state=self._state,
            queue_depth=queue_depth,
            inflight=inflight,
            loop_lag=loop_lag,
            pressure=pressure,
        )
        self.last = snapshot
        return snapshot


class LoopLagProbe:
    """Measures asyncio event-loop scheduling lag as an EWMA.

    A background task sleeps ``interval`` seconds in a loop and
    compares when it actually woke to when it asked to; the overshoot
    *is* the scheduling lag every other coroutine on this loop
    experiences.  An exponentially-weighted average (``alpha``) smooths
    single-tick noise while still reacting within a few ticks.
    """

    def __init__(
        self, *, interval: float = 0.05, alpha: float = 0.3
    ) -> None:
        check_positive("interval", interval)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.interval = interval
        self.alpha = alpha
        self._lag = 0.0
        self._task: Optional[asyncio.Task] = None

    @property
    def lag(self) -> float:
        """Current EWMA of loop scheduling lag, seconds."""
        return self._lag

    def observe(self, lag_sample: float) -> None:
        """Fold one lag sample in (exposed for tests)."""
        self._lag += self.alpha * (max(0.0, lag_sample) - self._lag)

    async def _run(self) -> None:
        while True:
            before = time.monotonic()
            await asyncio.sleep(self.interval)
            self.observe(time.monotonic() - before - self.interval)

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
