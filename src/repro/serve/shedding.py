"""Load shedding policy: retry hints and a mode-ladder circuit breaker.

Two robustness pieces sit between the health monitor and the admission
controller:

- :class:`RetryAdvisor` — computes the ``retry_after`` hint attached to
  every retryable reject/shed.  It reuses the exponential-backoff
  machinery graceful degradation already trusts
  (:class:`repro.faults.resilience.RetryPolicy`) and adds deterministic
  seeded jitter so a synchronized burst of rejected clients does not
  come back as a synchronized burst of retries (the thundering herd).

- :class:`CircuitBreaker` — degrades the *service* down the same
  Strict → Elastic → Opportunistic ladder the paper applies to jobs
  (Sections 3.3–3.4, reused via :mod:`repro.faults.resilience`).  Under
  sustained overload the breaker lowers the strongest mode it will
  grant: first Strict requests are downgraded to Elastic, then every
  reserving request runs Opportunistically, and at the ladder's bottom
  (``BEST_EFFORT``, the open state) new work is shed outright.
  Sustained health steps it back up one rung at a time — re-admission
  on recovery, never a cliff edge in either direction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.modes import ExecutionMode, ModeKind
from repro.faults.resilience import (
    LADDER,
    DegradationStage,
    RetryPolicy,
)
from repro.obs import get_observer
from repro.serve.health import HealthState
from repro.util.rng import DeterministicRng
from repro.util.validation import check_positive


class RetryAdvisor:
    """Backoff-with-jitter hints keyed by client (tenant).

    Each consecutive failure for a key walks one step up the
    exponential schedule ``policy.delay(attempt)``; a success resets
    the key.  Jitter multiplies the delay by ``1 + U[0, jitter)`` drawn
    from a seeded stream, so hints are reproducible for a given server
    seed yet decorrelated across requests.  The key table is bounded —
    under millions of distinct tenants it evicts wholesale rather than
    growing without limit (the hint is advisory; forgetting a tenant's
    streak costs one optimistic retry, not correctness).
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        *,
        seed: int = 0,
        jitter: float = 0.5,
        max_attempt: int = 8,
        max_keys: int = 4096,
    ) -> None:
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        check_positive("max_keys", max_keys)
        self.policy = policy or RetryPolicy(
            max_retries=max_attempt, backoff_base=0.05, backoff_factor=2.0
        )
        self.jitter = jitter
        self.max_attempt = max_attempt
        self.max_keys = max_keys
        self._rng = DeterministicRng(seed, "retry-jitter")
        self._attempts: Dict[str, int] = {}

    def advise(self, key: str) -> float:
        """Record a failure for ``key``; return the retry-after hint."""
        if len(self._attempts) >= self.max_keys and key not in self._attempts:
            self._attempts.clear()
        attempt = min(self._attempts.get(key, 0), self.max_attempt)
        self._attempts[key] = attempt + 1
        delay = self.policy.delay(attempt)
        return delay * (1.0 + self._rng.uniform(0.0, self.jitter))

    def reset(self, key: str) -> None:
        """Record a success for ``key`` (clears its backoff streak)."""
        self._attempts.pop(key, None)


class CircuitBreaker:
    """Hysteretic service-level degradation down the mode ladder.

    Fed one :class:`HealthState` observation per housekeeping tick.
    ``trip_after`` consecutive OVERLOADED ticks step the ceiling one
    rung down; ``recover_after`` consecutive HEALTHY ticks step it one
    rung up; DEGRADED ticks reset both streaks (hold position).  The
    current rung is a :class:`DegradationStage`:

    ========================  ==========================================
    stage (ceiling)           effect on new requests
    ========================  ==========================================
    STRICT                    none — every mode granted as asked
    ELASTIC                   Strict requests downgraded to Elastic
    OPPORTUNISTIC             all reserving requests run Opportunistic
    BEST_EFFORT (open)        new work is shed outright
    ========================  ==========================================
    """

    def __init__(
        self,
        *,
        trip_after: int = 5,
        recover_after: int = 20,
        elastic_slack: float = 0.5,
    ) -> None:
        check_positive("trip_after", trip_after)
        check_positive("recover_after", recover_after)
        check_positive("elastic_slack", elastic_slack)
        self.trip_after = trip_after
        self.recover_after = recover_after
        self.elastic_slack = elastic_slack
        self._rung = 0  # index into LADDER; 0 == STRICT == fully closed
        self._overload_streak = 0
        self._healthy_streak = 0
        self.transitions = 0

    # -- state ------------------------------------------------------------

    @property
    def ceiling(self) -> DegradationStage:
        """The strongest guarantee currently granted."""
        return LADDER[self._rung]

    @property
    def is_open(self) -> bool:
        """Open == shedding all new work (ladder bottom)."""
        return self.ceiling is DegradationStage.BEST_EFFORT

    @property
    def rung(self) -> int:
        """The ladder index (0 == STRICT/closed … 3 == open)."""
        return self._rung

    # -- observation feed -------------------------------------------------

    def record(self, state: HealthState) -> bool:
        """Fold one health observation in; True if the rung changed."""
        if state is HealthState.OVERLOADED:
            self._overload_streak += 1
            self._healthy_streak = 0
            if (
                self._overload_streak >= self.trip_after
                and self._rung < len(LADDER) - 1
            ):
                self._step(+1)
                return True
        elif state is HealthState.HEALTHY:
            self._healthy_streak += 1
            self._overload_streak = 0
            if self._healthy_streak >= self.recover_after and self._rung > 0:
                self._step(-1)
                return True
        else:  # DEGRADED: hold position, restart both streaks
            self._overload_streak = 0
            self._healthy_streak = 0
        return False

    def _step(self, direction: int) -> None:
        self._rung += direction
        self._overload_streak = 0
        self._healthy_streak = 0
        self.transitions += 1
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter(
                "serve.breaker.transitions",
                direction="down" if direction > 0 else "up",
            ).inc()
            obs.metrics.gauge("serve.breaker.rung").set(self._rung)

    # -- request clamping -------------------------------------------------

    def clamp(
        self, mode: ExecutionMode
    ) -> Optional[Tuple[ExecutionMode, bool]]:
        """Apply the ceiling to a requested mode.

        Returns ``(granted_mode, downgraded)`` or ``None`` when the
        breaker is open and the request must be shed.  Modes at or
        below the ceiling pass through untouched — the breaker only
        ever weakens guarantees, mirroring the downgrade-floor law of
        :mod:`repro.core.modes`.
        """
        ceiling = self.ceiling
        if ceiling is DegradationStage.BEST_EFFORT:
            return None
        if ceiling is DegradationStage.STRICT:
            return mode, False
        if ceiling is DegradationStage.ELASTIC:
            if mode.kind is ModeKind.STRICT:
                return ExecutionMode.elastic(self.elastic_slack), True
            return mode, False
        # OPPORTUNISTIC ceiling: every reserving mode loses its
        # reservation but still runs.
        if mode.kind is not ModeKind.OPPORTUNISTIC:
            return ExecutionMode.opportunistic(), True
        return mode, False

    def to_dict(self) -> dict:
        return {
            "ceiling": self.ceiling.value,
            "open": self.is_open,
            "rung": self._rung,
            "overload_streak": self._overload_streak,
            "healthy_streak": self._healthy_streak,
            "transitions": self.transitions,
        }
