"""A deterministic bursty multi-tenant load generator for the server.

Two halves, split so each is independently testable:

- :func:`build_schedule` — **pure and seeded**.  Produces the exact
  same list of :class:`ScheduledRequest` for a given
  :class:`LoadConfig`, with

  * Zipf-distributed tenant popularity (a few tenants dominate, a long
    tail trickles — the classic multi-tenant shape),
  * heavy-tailed job sizes (bounded Pareto wall clocks, so most jobs
    are small but the occasional elephant shows up),
  * bursty arrivals: an on/off process where "on" phases pack
    exponential inter-arrivals at ``burst_factor`` times the mean rate
    and "off" phases go quiet — mean rate is preserved, variance is
    not, which is precisely what stresses an admission queue.

- :class:`LoadGenerator` — the asyncio HTTP client that replays a
  schedule against a live server over keep-alive connections, tallies
  every response by outcome, and cross-checks its client-side ledger
  against the server's ``/stats`` accounting (the conservation law must
  hold from both sides of the wire).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.protocol import Decision, render_mode
from repro.core.modes import ExecutionMode
from repro.util.rng import DeterministicRng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class LoadConfig:
    """Everything that shapes a generated schedule (all seeded)."""

    seed: int = 0
    requests: int = 500
    tenants: int = 8
    zipf_alpha: float = 1.1
    mean_rate: float = 100.0  # offered requests/second overall
    burst_factor: float = 4.0  # on-phase rate multiplier (1 = smooth)
    burst_on_fraction: float = 0.25  # fraction of time spent "on"
    pareto_shape: float = 1.5  # heavy-tail exponent for wall clocks
    min_wall_clock: float = 0.05
    max_wall_clock: float = 5.0
    strict_fraction: float = 0.4
    elastic_fraction: float = 0.3  # remainder is opportunistic
    elastic_slack: float = 0.5
    deadline_stretch: float = 3.0  # deadline_in = stretch * wall clock
    cores_max: int = 2
    cache_ways_max: int = 4
    timeout: float = 5.0  # per-request decision deadline

    def __post_init__(self) -> None:
        check_positive("requests", self.requests)
        check_positive("tenants", self.tenants)
        check_positive("mean_rate", self.mean_rate)
        if self.burst_factor < 1.0:
            raise ValueError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if not 0.0 < self.burst_on_fraction <= 1.0:
            raise ValueError(
                "burst_on_fraction must be in (0, 1], got "
                f"{self.burst_on_fraction}"
            )
        if not 0.0 < self.min_wall_clock <= self.max_wall_clock:
            raise ValueError("need 0 < min_wall_clock <= max_wall_clock")
        if self.strict_fraction + self.elastic_fraction > 1.0:
            raise ValueError("mode fractions must sum to <= 1")
        if self.deadline_stretch < 1.0:
            raise ValueError(
                f"deadline_stretch must be >= 1, got {self.deadline_stretch}"
            )


@dataclass(frozen=True)
class ScheduledRequest:
    """One request the generator will offer: when, who, and what."""

    at: float  # seconds from load start
    tenant: str
    payload: Dict  # the JSON body for POST /v1/admit

    def key(self) -> Tuple[float, str]:
        return (self.at, self.tenant)


def build_schedule(config: LoadConfig) -> List[ScheduledRequest]:
    """Generate the full request schedule, deterministically.

    Same config (same seed) → byte-identical schedule, which is what
    lets the CI smoke test assert exact conservation counts.
    """
    root = DeterministicRng(config.seed, "loadgen")
    arrivals_rng = root.stream("arrivals")
    tenant_rng = root.stream("tenants")
    size_rng = root.stream("sizes")
    mode_rng = root.stream("modes")
    shape_rng = root.stream("shapes")

    # Bursty arrivals: during an "on" window inter-arrivals are
    # exponential at burst_factor * mean_rate; "off" windows insert a
    # silent gap sized so the long-run mean rate stays mean_rate.
    on_rate = config.mean_rate * config.burst_factor
    # Average on-window holds this many requests before an off-gap.
    burst_len_mean = max(
        1.0, config.burst_on_fraction * config.requests / 10.0
    )
    off_gap_mean = 0.0
    if config.burst_factor > 1.0:
        # Time saved per request by bursting, paid back as off-gaps.
        off_gap_mean = burst_len_mean * (
            1.0 / config.mean_rate - 1.0 / on_rate
        )

    schedule: List[ScheduledRequest] = []
    clock = 0.0
    until_break = max(1, round(arrivals_rng.exponential(burst_len_mean)))
    for _ in range(config.requests):
        clock += arrivals_rng.exponential(1.0 / on_rate)
        until_break -= 1
        if until_break <= 0 and off_gap_mean > 0.0:
            clock += arrivals_rng.exponential(off_gap_mean)
            until_break = max(
                1, round(arrivals_rng.exponential(burst_len_mean))
            )

        tenant_index = tenant_rng.zipf_index(
            config.tenants, config.zipf_alpha
        )
        tenant = f"tenant-{tenant_index:02d}"

        # Bounded Pareto via inverse transform on the truncated CDF.
        u = size_rng.uniform(0.0, 1.0)
        low, high, a = (
            config.min_wall_clock, config.max_wall_clock,
            config.pareto_shape,
        )
        ratio = (low / high) ** a
        wall = low / ((1.0 - u * (1.0 - ratio)) ** (1.0 / a))
        wall = min(max(wall, low), high)

        pick = mode_rng.uniform(0.0, 1.0)
        if pick < config.strict_fraction:
            mode = ExecutionMode.strict()
        elif pick < config.strict_fraction + config.elastic_fraction:
            mode = ExecutionMode.elastic(config.elastic_slack)
        else:
            mode = ExecutionMode.opportunistic()

        payload = {
            "tenant": tenant,
            "mode": render_mode(mode),
            "cores": shape_rng.randint(1, config.cores_max),
            "cache_ways": shape_rng.randint(0, config.cache_ways_max),
            "max_wall_clock": round(wall, 6),
            "deadline_in": round(wall * config.deadline_stretch, 6),
            "timeout": config.timeout,
        }
        schedule.append(
            ScheduledRequest(at=clock, tenant=tenant, payload=payload)
        )
    return schedule


@dataclass
class LoadReport:
    """Client-side ledger of one load run, plus the server's view."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    transport_errors: int = 0
    by_outcome: Dict[str, int] = field(default_factory=dict)
    latencies: List[float] = field(default_factory=list)
    server_stats: Optional[Dict] = None

    def record(self, decision: Decision) -> None:
        self.offered += 1
        bucket = decision.outcome.category.value
        if bucket == "admitted":
            self.admitted += 1
        elif bucket == "rejected":
            self.rejected += 1
        else:
            self.shed += 1
        key = decision.outcome.wire
        self.by_outcome[key] = self.by_outcome.get(key, 0) + 1
        if decision.decision_latency is not None:
            self.latencies.append(decision.decision_latency)

    @property
    def conserves(self) -> bool:
        """Client-side half of the conservation law."""
        return (
            self.admitted + self.rejected + self.shed + self.transport_errors
            == self.offered
        )

    def percentile_latency(self, q: float) -> Optional[float]:
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        index = min(
            len(ordered) - 1, max(0, round(q * (len(ordered) - 1)))
        )
        return ordered[index]

    def to_dict(self) -> Dict:
        p99 = self.percentile_latency(0.99)
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "transport_errors": self.transport_errors,
            "conserves": self.conserves,
            "by_outcome": dict(sorted(self.by_outcome.items())),
            "p50_decision_latency": self.percentile_latency(0.5),
            "p99_decision_latency": p99,
            "server": self.server_stats,
        }


class LoadGenerator:
    """Replays a schedule against a live server and tallies outcomes."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connections: int = 8,
        time_scale: float = 1.0,
    ) -> None:
        check_positive("connections", connections)
        check_positive("time_scale", time_scale)
        self.host = host
        self.port = port
        self.connections = connections
        self.time_scale = time_scale

    async def run(self, schedule: List[ScheduledRequest]) -> LoadReport:
        """Offer every scheduled request; never raises on server answers."""
        report = LoadReport()
        queue: "asyncio.Queue[Optional[ScheduledRequest]]" = asyncio.Queue()
        loop = asyncio.get_running_loop()
        start = loop.time()

        async def feeder() -> None:
            for item in schedule:
                delay = start + item.at * self.time_scale - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                queue.put_nowait(item)
            for _ in range(self.connections):
                queue.put_nowait(None)

        async def worker() -> None:
            reader = writer = None
            try:
                while True:
                    item = await queue.get()
                    if item is None:
                        break
                    if writer is None:
                        try:
                            reader, writer = await asyncio.open_connection(
                                self.host, self.port
                            )
                        except OSError:
                            report.offered += 1
                            report.transport_errors += 1
                            continue
                    try:
                        status, payload = await _post_json(
                            reader, writer, "/v1/admit", item.payload
                        )
                        report.record(Decision.from_dict(payload))
                    except (OSError, asyncio.IncompleteReadError, ValueError):
                        report.offered += 1
                        report.transport_errors += 1
                        # Connection is suspect: drop it, reconnect lazily.
                        writer.close()
                        reader = writer = None
            finally:
                if writer is not None:
                    writer.close()

        await asyncio.gather(
            feeder(), *(worker() for _ in range(self.connections))
        )
        report.server_stats = await self.fetch_stats()
        return report

    async def fetch_stats(self) -> Optional[Dict]:
        try:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError:
            return None
        try:
            _status, payload = await _get_json(reader, writer, "/stats")
            return payload
        except (OSError, asyncio.IncompleteReadError, ValueError):
            return None
        finally:
            writer.close()


# -- a minimal keep-alive HTTP/1.1 client ------------------------------------


async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    payload = json.loads(body.decode("utf-8")) if body else {}
    return status, payload


async def _post_json(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    path: str,
    payload: Dict,
) -> Tuple[int, Dict]:
    body = json.dumps(payload).encode("utf-8")
    writer.write(
        (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: loadgen\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        + body
    )
    await writer.drain()
    return await _read_response(reader)


async def _get_json(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    path: str,
) -> Tuple[int, Dict]:
    writer.write(
        (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: loadgen\r\nConnection: keep-alive\r\n\r\n"
        ).encode("latin-1")
    )
    await writer.drain()
    return await _read_response(reader)
