"""``repro.serve`` — QoS admission control as an overload-safe service.

The paper's per-node admission test (Section 5) wrapped in a
long-running asyncio server with the robustness features a service
needs that a library call does not: health-gated admission, bounded
queues with typed load shedding, per-request decision deadlines,
retry-with-backoff hints, a circuit breaker that degrades down the
Strict → Elastic → Opportunistic mode ladder under sustained overload,
and a graceful drain on SIGTERM.  The conservation law —
``admitted + rejected + shed == offered`` — holds at every instant,
including mid-drain.

See DESIGN.md §12 for the architecture walk-through.
"""

from repro.serve.controller import (
    ActiveJob,
    ServeAccounting,
    ServeController,
)
from repro.serve.health import (
    HealthMonitor,
    HealthSnapshot,
    HealthState,
    HealthThresholds,
    LoopLagProbe,
)
from repro.serve.loadgen import (
    LoadConfig,
    LoadGenerator,
    LoadReport,
    ScheduledRequest,
    build_schedule,
)
from repro.serve.protocol import (
    AdmitRequest,
    Category,
    Decision,
    DecisionOutcome,
    ProtocolError,
    parse_mode,
    render_mode,
)
from repro.serve.server import QosServer, ServerConfig, serve_main
from repro.serve.shedding import CircuitBreaker, RetryAdvisor

__all__ = [
    "ActiveJob",
    "AdmitRequest",
    "Category",
    "CircuitBreaker",
    "Decision",
    "DecisionOutcome",
    "HealthMonitor",
    "HealthSnapshot",
    "HealthState",
    "HealthThresholds",
    "LoadConfig",
    "LoadGenerator",
    "LoadReport",
    "LoopLagProbe",
    "ProtocolError",
    "QosServer",
    "RetryAdvisor",
    "ScheduledRequest",
    "ServeAccounting",
    "ServeController",
    "ServerConfig",
    "serve_main",
    "build_schedule",
    "parse_mode",
    "render_mode",
]
