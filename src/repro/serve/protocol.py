"""Wire protocol for the admission/allocation service (JSON over HTTP).

One request kind does the work: an **admit request** asks the node for
a QoS allocation (the paper's Section 5 admission test, as a service
call), and the server answers with a typed :class:`Decision`.  Every
possible fate of a request is an explicit :class:`DecisionOutcome` in
one of three categories:

- ``admitted`` — a reservation (or Opportunistic acceptance) exists;
  the response carries the granted mode and timeslot.
- ``rejected`` — the admission test itself said no (infeasible or no
  capacity before the deadline).  Deterministic: retrying immediately
  cannot help unless load drains, so a backoff hint rides along.
- ``shed`` — the *server* refused to even run the test (queue full,
  overload, breaker open, past the request's own deadline, draining).
  Load shedding is an availability mechanism, not an admission verdict,
  which is why it is never conflated with ``rejected``.

The accounting law the whole service is tested against:
``admitted + rejected + shed == offered`` — every offered request gets
exactly one outcome, even under overload and during drain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.modes import ExecutionMode, ModeKind
from repro.core.spec import ResourceVector


class ProtocolError(ValueError):
    """A malformed or invalid request body (HTTP 400)."""


class Category(enum.Enum):
    """The three accounting buckets every decision falls into."""

    ADMITTED = "admitted"
    REJECTED = "rejected"
    SHED = "shed"


class DecisionOutcome(enum.Enum):
    """Typed outcome of one admit request (value, category, retryable)."""

    ADMIT = ("admit", Category.ADMITTED, False)
    ADMIT_DOWNGRADED = ("admit-downgraded", Category.ADMITTED, False)
    REJECT_CAPACITY = ("reject-capacity", Category.REJECTED, True)
    REJECT_INFEASIBLE = ("reject-infeasible", Category.REJECTED, False)
    REJECT_INVALID = ("reject-invalid", Category.REJECTED, False)
    SHED_QUEUE_FULL = ("shed-queue-full", Category.SHED, True)
    SHED_OVERLOAD = ("shed-overload", Category.SHED, True)
    SHED_BREAKER = ("shed-breaker", Category.SHED, True)
    SHED_DEADLINE = ("shed-deadline", Category.SHED, True)
    SHED_DRAINING = ("shed-draining", Category.SHED, False)

    def __init__(
        self, wire: str, category: Category, retryable: bool
    ) -> None:
        self.wire = wire
        self.category = category
        self.retryable = retryable

    @property
    def http_status(self) -> int:
        """Conventional status: 200 admit, 409 reject, 429/503 shed."""
        if self.category is Category.ADMITTED:
            return 200
        if self is DecisionOutcome.REJECT_INVALID:
            return 400
        if self.category is Category.REJECTED:
            return 409
        if self is DecisionOutcome.SHED_DRAINING:
            return 503
        return 429

    @staticmethod
    def from_wire(wire: str) -> "DecisionOutcome":
        for outcome in DecisionOutcome:
            if outcome.wire == wire:
                return outcome
        raise ProtocolError(f"unknown outcome {wire!r}")


# -- execution modes on the wire ---------------------------------------------


def render_mode(mode: ExecutionMode) -> str:
    """``strict`` / ``elastic:0.25`` / ``opportunistic``."""
    if mode.kind is ModeKind.ELASTIC:
        return f"elastic:{mode.slack:.6g}"
    return mode.kind.value


def parse_mode(text: str) -> ExecutionMode:
    """Inverse of :func:`render_mode`; raises :class:`ProtocolError`."""
    name, _, slack_text = text.partition(":")
    try:
        if name == "strict":
            return ExecutionMode.strict()
        if name == "opportunistic":
            return ExecutionMode.opportunistic()
        if name == "elastic":
            if not slack_text:
                raise ProtocolError(
                    "elastic mode needs a slack, e.g. 'elastic:0.25'"
                )
            return ExecutionMode.elastic(float(slack_text))
    except ProtocolError:
        raise
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad mode {text!r}: {error}") from None
    raise ProtocolError(f"unknown mode {text!r}")


# -- requests ----------------------------------------------------------------


def _require_number(
    payload: Dict, key: str, *, default=None, minimum=None
) -> Optional[float]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{key} must be a number, got {value!r}")
    if value != value or value in (float("inf"), float("-inf")):
        raise ProtocolError(f"{key} must be finite, got {value!r}")
    if minimum is not None and value < minimum:
        raise ProtocolError(f"{key} must be >= {minimum}, got {value}")
    return float(value)


@dataclass(frozen=True)
class AdmitRequest:
    """One job asking for admission with a convertible RUM target."""

    tenant: str
    mode: ExecutionMode
    cores: int = 1
    cache_ways: int = 0
    bandwidth_share: float = 0.0
    max_wall_clock: float = 1.0
    deadline_in: Optional[float] = None  # relative to arrival, seconds
    allow_downgrade: bool = True
    timeout: Optional[float] = None  # decision deadline, seconds
    job: str = ""  # optional human label

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ProtocolError("tenant must be non-empty")
        if self.max_wall_clock <= 0.0:
            raise ProtocolError(
                f"max_wall_clock must be positive, got {self.max_wall_clock}"
            )
        if self.cores == 0 and self.cache_ways == 0 and (
            self.bandwidth_share == 0.0
        ):
            raise ProtocolError("a request must ask for some resources")
        if self.deadline_in is not None and (
            self.deadline_in < self.max_wall_clock
        ):
            raise ProtocolError(
                f"deadline_in {self.deadline_in} is before the job's own "
                f"max_wall_clock {self.max_wall_clock} — unsatisfiable"
            )

    @property
    def resources(self) -> ResourceVector:
        return ResourceVector(
            cores=self.cores,
            cache_ways=self.cache_ways,
            bandwidth_share=self.bandwidth_share,
        )

    @staticmethod
    def from_dict(payload: object) -> "AdmitRequest":
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        tenant = payload.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError("tenant must be a non-empty string")
        mode_text = payload.get("mode", "strict")
        if not isinstance(mode_text, str):
            raise ProtocolError(f"mode must be a string, got {mode_text!r}")
        cores = _require_number(payload, "cores", default=1, minimum=0)
        ways = _require_number(payload, "cache_ways", default=0, minimum=0)
        if cores != int(cores) or ways != int(ways):
            raise ProtocolError("cores and cache_ways must be integers")
        allow_downgrade = payload.get("allow_downgrade", True)
        if not isinstance(allow_downgrade, bool):
            raise ProtocolError("allow_downgrade must be a boolean")
        job = payload.get("job", "")
        if not isinstance(job, str):
            raise ProtocolError("job must be a string")
        try:
            return AdmitRequest(
                tenant=tenant,
                mode=parse_mode(mode_text),
                cores=int(cores),
                cache_ways=int(ways),
                bandwidth_share=_require_number(
                    payload, "bandwidth_share", default=0.0, minimum=0.0
                ),
                max_wall_clock=_require_number(
                    payload, "max_wall_clock", default=1.0
                ),
                deadline_in=_require_number(
                    payload, "deadline_in", minimum=0.0
                ),
                allow_downgrade=allow_downgrade,
                timeout=_require_number(payload, "timeout", minimum=0.0),
                job=job,
            )
        except ProtocolError:
            raise
        except ValueError as error:
            # Validation raised by ResourceVector / ExecutionMode /
            # TimeslotRequest constructors downstream.
            raise ProtocolError(str(error)) from None

    def to_dict(self) -> Dict:
        payload: Dict = {
            "tenant": self.tenant,
            "mode": render_mode(self.mode),
            "cores": self.cores,
            "cache_ways": self.cache_ways,
            "bandwidth_share": self.bandwidth_share,
            "max_wall_clock": self.max_wall_clock,
            "allow_downgrade": self.allow_downgrade,
        }
        if self.deadline_in is not None:
            payload["deadline_in"] = self.deadline_in
        if self.timeout is not None:
            payload["timeout"] = self.timeout
        if self.job:
            payload["job"] = self.job
        return payload


# -- decisions ---------------------------------------------------------------


@dataclass(frozen=True)
class Decision:
    """The server's answer to one admit request."""

    outcome: DecisionOutcome
    reason: str
    job_id: Optional[int] = None
    granted_mode: Optional[ExecutionMode] = None
    reserved_start: Optional[float] = None
    reserved_end: Optional[float] = None
    retry_after: Optional[float] = None
    decision_latency: Optional[float] = None  # seconds, queue + test
    extra: Dict = field(default_factory=dict)

    @property
    def admitted(self) -> bool:
        return self.outcome.category is Category.ADMITTED

    @property
    def category(self) -> Category:
        return self.outcome.category

    def to_dict(self) -> Dict:
        payload: Dict = {
            "outcome": self.outcome.wire,
            "category": self.outcome.category.value,
            "reason": self.reason,
        }
        if self.job_id is not None:
            payload["job_id"] = self.job_id
        if self.granted_mode is not None:
            payload["granted_mode"] = render_mode(self.granted_mode)
        if self.reserved_start is not None:
            payload["reserved_start"] = self.reserved_start
        if self.reserved_end is not None:
            payload["reserved_end"] = self.reserved_end
        if self.retry_after is not None:
            payload["retry_after"] = self.retry_after
        if self.decision_latency is not None:
            payload["decision_latency"] = self.decision_latency
        payload.update(self.extra)
        return payload

    @staticmethod
    def from_dict(payload: object) -> "Decision":
        if not isinstance(payload, dict):
            raise ProtocolError("decision body must be a JSON object")
        try:
            outcome = DecisionOutcome.from_wire(payload["outcome"])
        except KeyError:
            raise ProtocolError("decision is missing 'outcome'") from None
        granted = payload.get("granted_mode")
        return Decision(
            outcome=outcome,
            reason=str(payload.get("reason", "")),
            job_id=payload.get("job_id"),
            granted_mode=parse_mode(granted) if granted else None,
            reserved_start=payload.get("reserved_start"),
            reserved_end=payload.get("reserved_end"),
            retry_after=payload.get("retry_after"),
            decision_latency=payload.get("decision_latency"),
        )
