"""The service-side admission pipeline around the LAC.

:class:`ServeController` is the single place every offered request is
turned into exactly one typed :class:`~repro.serve.protocol.Decision`,
which makes the service's conservation law —
``admitted + rejected + shed == offered`` — checkable by construction:
both the decision path (:meth:`decide`) and the shed path
(:meth:`shed`) funnel through one accounting object.

The decision path composes, in order:

1. **breaker clamp** — the circuit breaker's current mode ceiling is
   applied (or, open breaker, the request is shed);
2. **LAC admission test** — the paper's Section 5 earliest-fit search
   over the reservation timeline, against wall-clock time;
3. **downgrade ladder** — a rejected request that allows downgrade
   walks Strict → Elastic(X) → Opportunistic one rung at a time
   (reusing :mod:`repro.faults.resilience`), re-probing the LAC per
   rung, exactly like the fault-recovery path does for displaced jobs;
4. **retry hints** — failures pick up an exponential-backoff-with-
   jitter ``retry_after`` from the :class:`RetryAdvisor`.

Admitted jobs are tracked until released (client call) or expired
(reservation end / wall-clock budget), bounding in-flight state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.admission import LocalAdmissionController, Reservation
from repro.core.job import Job
from repro.core.modes import (
    ExecutionMode,
    ModeKind,
    max_elastic_slack,
)
from repro.core.spec import QoSTarget, ResourceVector, TimeslotRequest
from repro.obs import get_observer
from repro.serve.protocol import (
    AdmitRequest,
    Category,
    Decision,
    DecisionOutcome,
)
from repro.serve.shedding import CircuitBreaker, RetryAdvisor


@dataclass
class ServeAccounting:
    """Request conservation ledger: every offer gets one outcome."""

    offered: int = 0
    admitted: int = 0
    downgraded: int = 0  # subset of admitted
    rejected: int = 0
    shed: int = 0
    released: int = 0
    expired: int = 0
    unhandled_errors: int = 0
    by_outcome: Dict[str, int] = field(default_factory=dict)

    def record(self, decision: Decision) -> None:
        self.offered += 1
        category = decision.outcome.category
        if category is Category.ADMITTED:
            self.admitted += 1
            if decision.outcome is DecisionOutcome.ADMIT_DOWNGRADED:
                self.downgraded += 1
        elif category is Category.REJECTED:
            self.rejected += 1
        else:
            self.shed += 1
        key = decision.outcome.wire
        self.by_outcome[key] = self.by_outcome.get(key, 0) + 1

    @property
    def conserves(self) -> bool:
        """The law the smoke test asserts under 2x overload."""
        return self.admitted + self.rejected + self.shed == self.offered

    def to_dict(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "downgraded": self.downgraded,
            "rejected": self.rejected,
            "shed": self.shed,
            "released": self.released,
            "expired": self.expired,
            "unhandled_errors": self.unhandled_errors,
            "conserves": self.conserves,
            "by_outcome": dict(sorted(self.by_outcome.items())),
        }


@dataclass
class ActiveJob:
    """An admitted job still holding capacity."""

    job_id: int
    tenant: str
    mode: ExecutionMode
    reservation: Optional[Reservation]
    expires_at: float


class ServeController:
    """Turns admit requests into decisions; owns all accounting."""

    def __init__(
        self,
        capacity: ResourceVector,
        *,
        breaker: Optional[CircuitBreaker] = None,
        advisor: Optional[RetryAdvisor] = None,
        default_elastic_slack: float = 0.5,
    ) -> None:
        self.lac = LocalAdmissionController(capacity)
        self.breaker = breaker or CircuitBreaker()
        self.advisor = advisor or RetryAdvisor()
        self.default_elastic_slack = default_elastic_slack
        self.accounting = ServeAccounting()
        self.active: Dict[int, ActiveJob] = {}
        self._ids = itertools.count(1)

    # -- capacity ---------------------------------------------------------

    @property
    def capacity(self) -> ResourceVector:
        return self.lac.capacity

    @property
    def inflight(self) -> int:
        return len(self.active)

    # -- the decision path ------------------------------------------------

    def decide(self, request: AdmitRequest, *, now: float) -> Decision:
        """Run the full admission pipeline for one request."""
        decision = self._decide(request, now)
        self.accounting.record(decision)
        self._observe(decision, now, tenant=request.tenant)
        return decision

    def shed(
        self, outcome: DecisionOutcome, reason: str, *, now: float,
        tenant: str = "", retryable_hint: bool = True,
    ) -> Decision:
        """Account a server-side shed (queue full, deadline, drain…)."""
        if outcome.category is not Category.SHED:
            raise ValueError(f"{outcome} is not a shed outcome")
        retry_after = None
        if outcome.retryable and retryable_hint:
            retry_after = self.advisor.advise(tenant or "*")
        decision = Decision(
            outcome=outcome, reason=reason, retry_after=retry_after
        )
        self.accounting.record(decision)
        self._observe(decision, now, tenant=tenant)
        return decision

    def _decide(self, request: AdmitRequest, now: float) -> Decision:
        clamped = self.breaker.clamp(request.mode)
        if clamped is None:
            return Decision(
                outcome=DecisionOutcome.SHED_BREAKER,
                reason=(
                    "circuit breaker open: sustained overload, node is "
                    "shedding all new work"
                ),
                retry_after=self.advisor.advise(request.tenant),
            )
        mode, breaker_downgraded = clamped
        if breaker_downgraded and not request.allow_downgrade:
            # The client insists on its mode; under a lowered ceiling
            # that is a shed (server-side refusal), not a rejection.
            return Decision(
                outcome=DecisionOutcome.SHED_BREAKER,
                reason=(
                    f"breaker ceiling is {self.breaker.ceiling.value}; "
                    f"request pins {request.mode.kind.value} and forbids "
                    "downgrade"
                ),
                retry_after=self.advisor.advise(request.tenant),
            )

        if not request.resources.fits_within(self.capacity):
            return Decision(
                outcome=DecisionOutcome.REJECT_INFEASIBLE,
                reason=(
                    f"request {request.resources} exceeds node capacity "
                    f"{self.capacity} — no amount of waiting helps"
                ),
            )

        tried = []
        while True:
            job, decision = self._probe(request, mode, now)
            if decision.accepted:
                downgraded = breaker_downgraded or bool(tried)
                return self._admit(
                    request, job, decision, mode, now,
                    downgraded=downgraded,
                )
            tried.append(mode)
            next_mode = (
                self._next_rung(request, mode, now)
                if request.allow_downgrade
                else None
            )
            if next_mode is None:
                return Decision(
                    outcome=DecisionOutcome.REJECT_CAPACITY,
                    reason=decision.reason,
                    retry_after=self.advisor.advise(request.tenant),
                    extra={
                        "modes_tried": [
                            m.describe() for m in tried
                        ]
                    },
                )
            mode = next_mode

    def _probe(self, request: AdmitRequest, mode: ExecutionMode, now: float):
        """One LAC admission test under ``mode``."""
        timeslot = TimeslotRequest(
            max_wall_clock=request.max_wall_clock,
            deadline=(
                now + request.deadline_in
                if request.deadline_in is not None
                else None
            ),
        )
        job = Job(
            job_id=next(self._ids),
            benchmark=request.job or request.tenant,
            target=QoSTarget(request.resources, timeslot, mode),
            arrival_time=now,
            instructions=1,
        )
        return job, self.lac.admit(job, now=now)

    def _next_rung(
        self, request: AdmitRequest, mode: ExecutionMode, now: float
    ) -> Optional[ExecutionMode]:
        """The next mode down the ladder that can still help.

        Strict drops to the *largest interchangeable* Elastic(X) when
        the job has deadline slack (the stretched reservation may fit
        where the tight one did not), else straight to Opportunistic.
        Elastic drops to Opportunistic.  Opportunistic has nowhere to
        go — but an Opportunistic probe never fails admission anyway.
        """
        if mode.kind is ModeKind.STRICT:
            if request.deadline_in is not None:
                slack = max_elastic_slack(
                    now, now + request.deadline_in, request.max_wall_clock
                )
                if slack > 0.0:
                    return ExecutionMode.elastic(slack)
            return ExecutionMode.opportunistic()
        if mode.kind is ModeKind.ELASTIC:
            return ExecutionMode.opportunistic()
        return None

    def _admit(
        self,
        request: AdmitRequest,
        job: Job,
        lac_decision,
        mode: ExecutionMode,
        now: float,
        *,
        downgraded: bool,
    ) -> Decision:
        reservation = lac_decision.reservation
        if reservation is not None:
            expires_at = reservation.end
        else:
            # Opportunistic: no reservation; hold in-flight state for
            # the job's own wall-clock budget at most.
            expires_at = now + request.max_wall_clock
        self.active[job.job_id] = ActiveJob(
            job_id=job.job_id,
            tenant=request.tenant,
            mode=mode,
            reservation=reservation,
            expires_at=expires_at,
        )
        self.advisor.reset(request.tenant)
        outcome = (
            DecisionOutcome.ADMIT_DOWNGRADED
            if downgraded
            else DecisionOutcome.ADMIT
        )
        reason = lac_decision.reason
        if downgraded and request.mode != mode:
            reason = (
                f"{request.mode.describe()} infeasible; granted "
                f"{mode.describe()} — {lac_decision.reason}"
            )
        return Decision(
            outcome=outcome,
            reason=reason,
            job_id=job.job_id,
            granted_mode=mode,
            reserved_start=(
                reservation.start if reservation is not None else None
            ),
            reserved_end=(
                reservation.end
                if reservation is not None and reservation.end != float("inf")
                else None
            ),
        )

    # -- lifecycle --------------------------------------------------------

    def release(self, job_id: int, *, now: float) -> bool:
        """Client-driven early completion; frees remaining reservation."""
        active = self.active.pop(job_id, None)
        if active is None:
            return False
        if active.reservation is not None:
            try:
                self.lac.release(active.reservation, at_time=now)
            except ValueError:
                pass  # already expired off the timeline
        self.accounting.released += 1
        obs = get_observer()
        if obs.enabled:
            obs.metrics.counter("serve.released").inc()
        return True

    def expire(self, *, now: float) -> int:
        """Drop in-flight records whose hold has lapsed; returns count.

        Reservations end on their own on the LAC timeline; this only
        bounds the *in-flight table* (and with it the health gate's
        inflight signal) so abandoned jobs cannot pin the server into
        permanent overload.
        """
        lapsed = [
            job_id
            for job_id, active in self.active.items()
            if active.expires_at <= now
        ]
        for job_id in lapsed:
            del self.active[job_id]
        # Keep the reservation timeline bounded too: a long-running
        # service would otherwise scan every reservation it ever booked
        # on each admission test.
        self.lac.prune(before=now)
        if lapsed:
            self.accounting.expired += len(lapsed)
            obs = get_observer()
            if obs.enabled:
                obs.metrics.counter("serve.expired").inc(len(lapsed))
        return len(lapsed)

    # -- telemetry --------------------------------------------------------

    def _observe(
        self, decision: Decision, now: float, *, tenant: str = ""
    ) -> None:
        obs = get_observer()
        if not obs.enabled:
            return
        obs.metrics.counter("serve.offered").inc()
        obs.metrics.counter(
            "serve.decisions", outcome=decision.outcome.wire
        ).inc()
        # Per-tenant SLO view for the dashboard: every outcome weaker
        # than a clean admit (downgrade, reject, shed) counts as a
        # violation of what the tenant asked for.
        label = tenant or "-"
        obs.metrics.counter("serve.tenant.offered", tenant=label).inc()
        if decision.outcome is not DecisionOutcome.ADMIT:
            obs.metrics.counter(
                "serve.tenant.violations", tenant=label
            ).inc()
        obs.metrics.gauge("serve.inflight").set(len(self.active))
        obs.events.emit(
            "serve.decision",
            now,
            outcome=decision.outcome.wire,
            category=decision.outcome.category.value,
            job_id=decision.job_id,
        )

    def stats_dict(self, *, now: float) -> dict:
        return {
            "accounting": self.accounting.to_dict(),
            "breaker": self.breaker.to_dict(),
            "inflight": self.inflight,
            "capacity": {
                "cores": self.capacity.cores,
                "cache_ways": self.capacity.cache_ways,
                "bandwidth_share": self.capacity.bandwidth_share,
            },
            "lac": {
                "admission_tests": self.lac.stats.admission_tests,
                "acceptances": self.lac.stats.acceptances,
                "rejections": self.lac.stats.rejections,
                "reservations": len(self.lac.reservations()),
            },
            "now": round(now, 6),
        }
