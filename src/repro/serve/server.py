"""The asyncio admission/allocation server (``repro serve``).

A deliberately dependency-free HTTP/1.1 + JSON server on asyncio
streams, built so that *no request path is unbounded*:

- admit requests pass the health gates (drain flag, bounded queue,
  overload classification) **before** queueing — the bounded queue is
  the backpressure mechanism, and a full queue is a typed shed, not a
  hang;
- a single decision worker consumes the queue FCFS (matching the
  paper's admission discipline) and enforces each request's own
  decision deadline: a request that waited past its timeout is shed,
  never silently served late;
- every handler runs under a catch-all that converts surprises into a
  500 response plus an ``unhandled_errors`` count — the smoke test
  asserts that count is zero under 2x overload;
- SIGTERM starts a graceful drain: stop accepting, let queued work
  finish within the grace budget, shed the rest (accounted), flush the
  observability artefacts, exit 0.

Endpoints::

    POST /v1/admit     admission test     -> Decision JSON
    POST /v1/release   early completion   -> {"released": bool}
    GET  /healthz      health gate state  (503 when overloaded)
    GET  /stats        accounting + breaker + health + uptime
    GET  /metrics      Prometheus text exposition of live metrics
    POST /v1/drain     begin graceful drain (also SIGTERM)
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import signal
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache.backend import default_backend
from repro.core.policy import SensorSnapshot, SetBusGrant, make_policy
from repro.core.spec import ResourceVector
from repro.obs import (
    FlightRecorder,
    HistoryRing,
    MetricsSampler,
    Observer,
    get_observer,
)
from repro.serve.controller import ServeController
from repro.serve.health import (
    HealthMonitor,
    HealthState,
    HealthThresholds,
    LoopLagProbe,
)
from repro.serve.protocol import (
    AdmitRequest,
    Decision,
    DecisionOutcome,
    ProtocolError,
)
from repro.serve.shedding import CircuitBreaker, RetryAdvisor

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 256 * 1024


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8181
    cores: int = 4
    cache_ways: int = 16
    bandwidth_share: float = 1.0
    queue_limit: int = 64
    max_inflight: int = 256
    max_loop_lag: float = 0.25
    default_timeout: float = 2.0  # decision deadline when unspecified
    drain_grace: float = 5.0
    housekeeping_interval: float = 0.05
    breaker_trip_after: int = 5
    breaker_recover_after: int = 20
    elastic_slack: float = 0.5
    seed: int = 0
    metrics_out: Optional[str] = None
    events_out: Optional[str] = None
    # Time-series telemetry (PR 9): the history ring always serves
    # ``GET /metrics/history``; samples are only *taken* when a live
    # observer is installed (zero-cost-when-disabled).
    history_capacity: int = 512
    sample_every: int = 4  # housekeeping ticks per history sample
    history_out: Optional[str] = None
    flight_out: Optional[str] = None
    flight_window: float = 30.0
    # Advisory closed-loop policy (repro.core.policy registry name):
    # it observes health pressure each housekeeping tick and its
    # decisions surface in /stats and the event stream.  The server's
    # admission math is untouched — actuation here is observational.
    policy: Optional[str] = None

    def capacity(self) -> ResourceVector:
        return ResourceVector(
            cores=self.cores,
            cache_ways=self.cache_ways,
            bandwidth_share=self.bandwidth_share,
        )

    def thresholds(self) -> HealthThresholds:
        return HealthThresholds(
            max_queue_depth=self.queue_limit,
            max_inflight=self.max_inflight,
            max_loop_lag=self.max_loop_lag,
        )


@dataclass
class _PendingAdmit:
    """One queued admit request awaiting the decision worker."""

    request: AdmitRequest
    future: "asyncio.Future[Decision]"
    enqueued_at: float
    deadline: float  # absolute, server clock


# -- tiny HTTP layer ---------------------------------------------------------


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def _read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; ``None`` on clean EOF (client closed)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise _HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request head too large") from None
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length)
    return method.upper(), path, headers, body


def _render_response(
    status: int,
    payload: object,
    *,
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# -- the server --------------------------------------------------------------


class QosServer:
    """The long-running admission/allocation service."""

    def __init__(
        self, config: Optional[ServerConfig] = None
    ) -> None:
        self.config = config or ServerConfig()
        seed = self.config.seed
        self.controller = ServeController(
            self.config.capacity(),
            breaker=CircuitBreaker(
                trip_after=self.config.breaker_trip_after,
                recover_after=self.config.breaker_recover_after,
                elastic_slack=self.config.elastic_slack,
            ),
            advisor=RetryAdvisor(seed=seed),
            default_elastic_slack=self.config.elastic_slack,
        )
        self.health = HealthMonitor(self.config.thresholds())
        self.lag_probe = LoopLagProbe()
        self.queue: "asyncio.Queue[_PendingAdmit]" = asyncio.Queue(
            maxsize=self.config.queue_limit
        )
        self.draining = False
        self.stopped = asyncio.Event()
        self._started = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List["asyncio.Task"] = []
        # Time-series telemetry: the objects are cheap to hold, but no
        # sample is ever taken unless the observer is enabled.
        self.history = HistoryRing(self.config.history_capacity)
        self.sampler = MetricsSampler(self.history)
        self.flight = FlightRecorder(window=self.config.flight_window)
        self._ticks = 0
        self._last_rung = 0
        self._fingerprint: Optional[str] = None
        self.policy = (
            make_policy(self.config.policy)
            if self.config.policy is not None
            else None
        )
        if self.policy is not None:
            self.policy.reset()
        self._policy_granted = False
        self._policy_decisions = 0
        self._policy_epochs = 0

    # -- clock ------------------------------------------------------------

    def now(self) -> float:
        """Seconds since server start (the LAC's timeline origin)."""
        return time.monotonic() - self._started

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.lag_probe.start()
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._decision_worker()),
            loop.create_task(self._housekeeping()),
        ]

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`drain` completes (signal or endpoint)."""
        await self.stopped.wait()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.drain()),
                )
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish or shed, flush.

        Idempotent — a second SIGTERM while draining is a no-op rather
        than an abort.
        """
        if self.draining:
            return
        self.draining = True
        now = self.now()
        obs = get_observer()
        if obs.enabled:
            obs.events.emit("serve.drain.begin", now)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let queued decisions finish within the grace budget...
        grace_deadline = time.monotonic() + self.config.drain_grace
        while not self.queue.empty() and time.monotonic() < grace_deadline:
            await asyncio.sleep(0.01)
        # ...then shed whatever is left, with accounting.
        while not self.queue.empty():
            pending = self.queue.get_nowait()
            self._resolve(
                pending,
                self.controller.shed(
                    DecisionOutcome.SHED_DRAINING,
                    "server draining: queued request not decided within "
                    "the grace budget",
                    now=self.now(),
                    tenant=pending.request.tenant,
                ),
            )
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        await self.lag_probe.stop()
        if obs.enabled:
            obs.events.emit(
                "serve.drain.end",
                self.now(),
                offered=self.controller.accounting.offered,
                conserves=self.controller.accounting.conserves,
            )
            # Final forced sample: the history stream's last record
            # carries the same counter totals /stats reports, so the
            # conservation check holds against the file too.
            self._take_sample(obs, self.now(), force=True)
            if self.config.flight_out:
                self.flight.dump(
                    self.config.flight_out,
                    t=max(0.0, self.now()),
                    reason="drain",
                )
            if self.config.history_out:
                self.history.write_jsonl(self.config.history_out)
        self._flush_artifacts()
        self.stopped.set()

    def _flush_artifacts(self) -> None:
        """Write final metrics/events JSONL snapshots, if configured."""
        observer = get_observer()
        if not observer.enabled:
            return
        if self.config.metrics_out:
            observer.metrics.write_jsonl(self.config.metrics_out)
        if self.config.events_out:
            observer.events.write_jsonl(self.config.events_out)

    # -- background tasks -------------------------------------------------

    async def _decision_worker(self) -> None:
        """FCFS consumer of the admit queue; enforces decision deadlines."""
        while True:
            pending = await self.queue.get()
            now = self.now()
            try:
                if now > pending.deadline:
                    decision = self.controller.shed(
                        DecisionOutcome.SHED_DEADLINE,
                        f"queued {now - pending.enqueued_at:.3f}s, past the "
                        f"request's decision deadline",
                        now=now,
                        tenant=pending.request.tenant,
                    )
                else:
                    started = time.monotonic()
                    decision = self.controller.decide(
                        pending.request, now=now
                    )
                    latency = (
                        time.monotonic() - started
                        + (now - pending.enqueued_at)
                    )
                    decision = dataclasses.replace(
                        decision, decision_latency=latency
                    )
                    obs = get_observer()
                    if obs.enabled:
                        obs.metrics.summary(
                            "serve.decision_latency_seconds"
                        ).add(latency)
            except Exception as error:  # noqa: BLE001 - must not die
                self.controller.accounting.unhandled_errors += 1
                decision = Decision(
                    outcome=DecisionOutcome.REJECT_INVALID,
                    reason=f"internal error deciding request: {error!r}",
                )
                self.controller.accounting.record(decision)
            self._resolve(pending, decision)

    def _resolve(self, pending: _PendingAdmit, decision: Decision) -> None:
        if not pending.future.done():
            pending.future.set_result(decision)

    async def _housekeeping(self) -> None:
        """Periodic: expire holds, classify health, feed the breaker."""
        interval = self.config.housekeeping_interval
        while True:
            await asyncio.sleep(interval)
            now = self.now()
            self.controller.expire(now=now)
            snapshot = self.health.classify(
                queue_depth=self.queue.qsize(),
                inflight=self.controller.inflight,
                loop_lag=self.lag_probe.lag,
            )
            changed = self.controller.breaker.record(snapshot.state)
            obs = get_observer()
            if obs.enabled:
                obs.metrics.gauge("serve.health.pressure").set(
                    round(snapshot.pressure, 4)
                )
                obs.metrics.gauge("serve.queue_depth").set(
                    snapshot.queue_depth
                )
                if changed:
                    obs.events.emit(
                        "serve.breaker.transition",
                        now,
                        ceiling=self.controller.breaker.ceiling.value,
                        health=snapshot.state.value,
                    )
                self._ticks += 1
                if self._ticks % max(1, self.config.sample_every) == 0:
                    self._take_sample(obs, now)
                if changed:
                    self._on_breaker_change(obs, now)
            if self.policy is not None and self.policy.adaptive:
                self._policy_tick(obs, now, snapshot)

    def _policy_tick(self, obs, now: float, health) -> None:
        """One advisory policy epoch driven by server health.

        The bus-utilisation sensor is proxied by health pressure (both
        are "how contended is the shared resource" in [0, 1+]); there
        are no simulated jobs, so ways policies see an empty job list
        and emit nothing.
        """
        snapshot = SensorSnapshot(
            now=now,
            epoch_index=self._policy_epochs,
            l2_ways=self.config.cache_ways,
            reserved_ways=0,
            spare_ways=self.config.cache_ways,
            bus_utilisation=health.pressure,
            bus_saturated=health.state is HealthState.OVERLOADED,
            bus_granted=self._policy_granted,
        )
        self._policy_epochs += 1
        for action in self.policy.decide(snapshot):
            if not isinstance(action, SetBusGrant):
                continue
            if action.granted == self._policy_granted:
                continue
            self._policy_granted = action.granted
            self._policy_decisions += 1
            if obs.enabled:
                obs.metrics.gauge("serve.policy.granted").set(
                    1 if action.granted else 0
                )
                obs.events.emit(
                    "policy.decision",
                    now,
                    policy=self.policy.name,
                    **action.describe(),
                )

    # -- time-series telemetry --------------------------------------------

    def _take_sample(self, obs, now: float, *, force: bool = False) -> None:
        """One history point: scalar metrics + uptime, flight-fed.

        The accounting triple rides along as explicit ``serve.*``
        series — per-outcome counters alone would force every reader
        to re-derive the admitted/rejected/shed partition.

        ``force=True`` bypasses the ring's downsampling stride — the
        drain-time final sample uses it so the last history record's
        counter totals always equal the final ``/stats`` accounting.
        """
        accounting = self.controller.accounting
        point = self.sampler.sample(
            obs.metrics,
            max(0.0, now),
            extra={
                "serve.offered": accounting.offered,
                "serve.admitted": accounting.admitted,
                "serve.rejected": accounting.rejected,
                "serve.shed": accounting.shed,
                "serve.downgraded": accounting.downgraded,
            },
            force=force,
            uptime=round(now, 3),
        )
        self.flight.note_sample(point)
        self.flight.note_events(obs.events.records)

    def _on_breaker_change(self, obs, now: float) -> None:
        """Flight-dump on a trip (rung stepping down toward open)."""
        breaker = self.controller.breaker
        rung = breaker.rung
        tripped = rung > self._last_rung
        self._last_rung = rung
        if tripped and self.config.flight_out:
            self._take_sample(obs, now, force=True)
            self.flight.dump(
                self.config.flight_out,
                t=max(0.0, now),
                reason=f"breaker:{breaker.ceiling.value}",
            )

    def fingerprint(self) -> str:
        """Code fingerprint of the serve-relevant modules (memoised)."""
        if self._fingerprint is None:
            from repro.analysis.store import modules_fingerprint

            self._fingerprint = modules_fingerprint(
                (
                    "repro.core.admission",
                    "repro.core.modes",
                    "repro.serve.controller",
                    "repro.serve.health",
                    "repro.serve.protocol",
                    "repro.serve.shedding",
                )
            )
        return self._fingerprint

    # -- request handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await _read_http_request(reader)
                except _HttpError as error:
                    writer.write(
                        _render_response(
                            error.status,
                            {"error": error.message},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    response = await self._route(method, path, body)
                except _HttpError as error:
                    response = _render_response(
                        error.status, {"error": error.message},
                        keep_alive=keep_alive,
                    )
                except Exception as error:  # noqa: BLE001 - 500, keep serving
                    self.controller.accounting.unhandled_errors += 1
                    obs = get_observer()
                    if obs.enabled:
                        obs.metrics.counter("serve.http_500").inc()
                    print(
                        f"serve: unhandled error on {method} {path}: "
                        f"{error!r}",
                        file=sys.stderr,
                    )
                    response = _render_response(
                        500,
                        {"error": f"internal error: {error!r}"},
                        keep_alive=keep_alive,
                    )
                writer.write(response)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, method: str, path: str, body: bytes) -> bytes:
        if path == "/v1/admit" and method == "POST":
            return await self._handle_admit(body)
        if path == "/v1/release" and method == "POST":
            return self._handle_release(body)
        if path == "/healthz" and method == "GET":
            return self._handle_healthz()
        if path == "/stats" and method == "GET":
            return self._handle_stats()
        if path == "/metrics" and method == "GET":
            return self._handle_metrics()
        if path == "/metrics/history" and method == "GET":
            return self._handle_history()
        if path == "/v1/drain" and method == "POST":
            asyncio.ensure_future(self.drain())
            return _render_response(200, {"draining": True})
        if path in (
            "/v1/admit", "/v1/release", "/v1/drain",
            "/healthz", "/stats", "/metrics", "/metrics/history",
        ):
            raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"no route for {path}")

    def _decision_response(self, decision: Decision) -> bytes:
        extra = {}
        if decision.retry_after is not None:
            extra["Retry-After"] = f"{decision.retry_after:.3f}"
        return _render_response(
            decision.outcome.http_status,
            decision.to_dict(),
            extra_headers=extra,
        )

    async def _handle_admit(self, body: bytes) -> bytes:
        now = self.now()
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            request = AdmitRequest.from_dict(payload)
        except (ProtocolError, ValueError, UnicodeDecodeError) as error:
            # Even malformed requests are *offered* load: account them
            # so conservation holds from the client's perspective too.
            decision = Decision(
                outcome=DecisionOutcome.REJECT_INVALID,
                reason=str(error),
            )
            self.controller.accounting.record(decision)
            return self._decision_response(decision)

        # Gate 1: draining — no new work, typed shed.
        if self.draining:
            return self._decision_response(
                self.controller.shed(
                    DecisionOutcome.SHED_DRAINING,
                    "server is draining",
                    now=now,
                    tenant=request.tenant,
                )
            )
        # Gate 2: hard overload — shed before spending queue space.
        if self.health.state is HealthState.OVERLOADED:
            return self._decision_response(
                self.controller.shed(
                    DecisionOutcome.SHED_OVERLOAD,
                    f"health gate: {self.health.last.to_dict()}"
                    if self.health.last
                    else "health gate: overloaded",
                    now=now,
                    tenant=request.tenant,
                )
            )
        # Gate 3: bounded queue — backpressure as a typed shed.
        timeout = (
            request.timeout
            if request.timeout is not None
            else self.config.default_timeout
        )
        pending = _PendingAdmit(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=now,
            deadline=now + timeout,
        )
        try:
            self.queue.put_nowait(pending)
        except asyncio.QueueFull:
            return self._decision_response(
                self.controller.shed(
                    DecisionOutcome.SHED_QUEUE_FULL,
                    f"admission queue at limit "
                    f"({self.config.queue_limit})",
                    now=now,
                    tenant=request.tenant,
                )
            )
        # The worker resolves within the request's deadline by
        # construction; the extra slack covers a busy loop, and the
        # final timeout is a belt-and-braces shed so no client ever
        # hangs on us.
        try:
            decision = await asyncio.wait_for(
                pending.future, timeout=timeout + self.config.drain_grace
            )
        except asyncio.TimeoutError:
            decision = self.controller.shed(
                DecisionOutcome.SHED_DEADLINE,
                "decision worker did not answer within the hard cap",
                now=self.now(),
                tenant=request.tenant,
            )
            pending.future.cancel()
        return self._decision_response(decision)

    def _handle_release(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            if not isinstance(payload, dict):
                raise ProtocolError("release body must be a JSON object")
            job_id = payload.get("job_id")
            if not isinstance(job_id, int):
                raise ProtocolError("job_id must be an integer")
        except (ProtocolError, ValueError, UnicodeDecodeError) as error:
            raise _HttpError(400, str(error)) from None
        released = self.controller.release(job_id, now=self.now())
        return _render_response(
            200, {"released": released, "job_id": job_id}
        )

    def _handle_healthz(self) -> bytes:
        snapshot = self.health.last
        state = self.health.state
        status = 503 if state is HealthState.OVERLOADED else 200
        if self.draining:
            status = 503
        return _render_response(
            status,
            {
                "state": state.value,
                "draining": self.draining,
                "snapshot": snapshot.to_dict() if snapshot else None,
            },
        )

    def _handle_stats(self) -> bytes:
        now = self.now()
        payload = self.controller.stats_dict(now=now)
        payload["uptime"] = round(now, 3)
        payload["draining"] = self.draining
        payload["queue_depth"] = self.queue.qsize()
        payload["health"] = (
            self.health.last.to_dict()
            if self.health.last
            else {"state": self.health.state.value}
        )
        payload["cache_backend"] = default_backend()
        payload["fingerprint"] = self.fingerprint()
        if self.policy is not None:
            payload["policy"] = {
                "name": self.policy.name,
                "granted": self._policy_granted,
                "decisions": self._policy_decisions,
            }
        return _render_response(200, payload)

    def _handle_history(self) -> bytes:
        return _render_response(200, self.history.to_payload())

    def _handle_metrics(self) -> bytes:
        from repro.obs.export import prometheus_text

        observer = get_observer()
        text = prometheus_text(observer.metrics.snapshot())
        body = text.encode("utf-8")
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        )
        return head.encode("latin-1") + body


async def serve_main(config: ServerConfig) -> int:
    """Run a server until drained; returns the process exit code.

    Installs a live observer for the whole server lifetime (the
    ``/metrics`` endpoint and the drain-time artefact flush need one),
    prints the bound address, and wires SIGTERM/SIGINT to the graceful
    drain.
    """
    from repro.obs import reset_observer, set_observer

    observer = Observer()
    set_observer(observer)
    server = QosServer(config)
    try:
        await server.start()
        server.install_signal_handlers()
        print(
            f"serving on http://{config.host}:{server.port} "
            f"(capacity {server.controller.capacity})",
            flush=True,
        )
        await server.serve_until_stopped()
        accounting = server.controller.accounting
        print(
            f"drained: offered={accounting.offered} "
            f"admitted={accounting.admitted} "
            f"rejected={accounting.rejected} shed={accounting.shed} "
            f"errors={accounting.unhandled_errors} "
            f"conserves={accounting.conserves}",
            flush=True,
        )
        return 0 if accounting.unhandled_errors == 0 else 1
    finally:
        reset_observer()
