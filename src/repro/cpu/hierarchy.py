"""Per-core memory hierarchy: private L1s over a shared partitioned L2.

Models the machine of Section 6: each core has private L1 I/D caches;
all cores share one way-partitioned L2; L2 misses go to DRAM.  The
hierarchy returns, for every access, which level served it and the
latency in cycles, so a trace-driven core can accumulate exact cycle
counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cache.backend import (
    AnyCache,
    AnyPartitionedCache,
    record_lookup_span,
)
from repro.cache.shadow import ShadowTagArray
from repro.mem.dram import DramModel
from repro.obs import get_observer
from repro.obs.trace import derive_trace_id
from repro.util.validation import check_non_negative


class ServiceLevel(enum.Enum):
    """Which level of the hierarchy satisfied an access."""

    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one hierarchy access."""

    level: ServiceLevel
    latency_cycles: float
    l2_hit: Optional[bool] = None  # None when the access never reached L2


@dataclass(frozen=True)
class BatchOutcome:
    """Aggregate result of one :meth:`MemoryHierarchy.access_block` call."""

    accesses: int
    l1_hits: int
    l2_hits: int
    l2_misses: int
    latency_cycles: float


class MemoryHierarchy:
    """L1 (private, per core) → shared L2 → DRAM access path.

    Shadow tag arrays can be attached per core; they observe that core's
    L2 access stream (Section 4.3) without affecting timing.
    """

    def __init__(
        self,
        l1_caches: Dict[int, AnyCache],
        l2_cache: AnyPartitionedCache,
        dram: DramModel,
        *,
        l1_latency: float = 2.0,
        l2_latency: float = 10.0,
    ) -> None:
        check_non_negative("l1_latency", l1_latency)
        check_non_negative("l2_latency", l2_latency)
        self.l1_caches = l1_caches
        self.l2_cache = l2_cache
        self.dram = dram
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self._shadows: Dict[int, ShadowTagArray] = {}
        # Per-hierarchy request counter: together with the core id it
        # names each traced request, so trace ids are deterministic in
        # the access stream and never depend on host randomness.
        self._trace_sequence = 0

    def attach_shadow(self, core_id: int, shadow: ShadowTagArray) -> None:
        """Attach a duplicate tag array observing ``core_id``'s L2 stream."""
        if core_id not in self.l1_caches:
            raise ValueError(f"core {core_id} has no L1 cache in this hierarchy")
        self._shadows[core_id] = shadow

    def detach_shadow(self, core_id: int) -> Optional[ShadowTagArray]:
        """Detach and return ``core_id``'s shadow, if any."""
        return self._shadows.pop(core_id, None)

    def shadow_of(self, core_id: int) -> Optional[ShadowTagArray]:
        """The shadow currently observing ``core_id``, if any."""
        return self._shadows.get(core_id)

    def access(
        self, core_id: int, address: int, *, is_write: bool = False
    ) -> AccessOutcome:
        """Run one access through L1 → L2 → DRAM and return the outcome.

        Write-backs of dirty victims are modelled as bandwidth events in
        the DRAM model but (as in most trace-driven simulators) do not
        add to the critical-path latency of the triggering access.
        """
        try:
            l1 = self.l1_caches[core_id]
        except KeyError:
            raise ValueError(
                f"core {core_id} has no L1 cache in this hierarchy"
            ) from None

        l1_result = l1.access(address, is_write=is_write, core_id=core_id)
        if l1_result.hit:
            return AccessOutcome(ServiceLevel.L1, self.l1_latency)

        l2_result = self.l2_cache.access(core_id, address, is_write=is_write)
        shadow = self._shadows.get(core_id)
        if shadow is not None:
            shadow.observe(address, l2_result.hit)
        if l2_result.writeback:
            self.dram.record_writeback()

        if l2_result.hit:
            return AccessOutcome(
                ServiceLevel.L2,
                self.l1_latency + self.l2_latency,
                l2_hit=True,
            )

        dram_latency = self.dram.access(address)
        return AccessOutcome(
            ServiceLevel.MEMORY,
            self.l1_latency + self.l2_latency + dram_latency,
            l2_hit=False,
        )

    def access_traced(
        self,
        core_id: int,
        address: int,
        *,
        is_write: bool = False,
        now: float = 0.0,
        trace=None,
        trace_id: Optional[str] = None,
        parent=None,
    ) -> AccessOutcome:
        """Run one access and record its latency decomposition as spans.

        State evolution is exactly :meth:`access` (which this calls);
        the spans are reconstructed from the outcome, so tracing can
        never fork the simulated trajectory.  The trace is a tree rooted
        at ``mem.request``: an ``l1.lookup`` child, then ``l2.lookup``
        and ``dram.access`` children as far as the access travelled,
        laid out back to back from ``now`` in cycles.

        ``trace`` defaults to the active observer's trace log (a no-op
        sink when observability is off); ``trace_id`` defaults to
        ``derive_trace_id("mem", core_id, <request sequence>)``.
        """
        if trace is None:
            trace = get_observer().trace
        outcome = self.access(core_id, address, is_write=is_write)
        if trace_id is None:
            trace_id = derive_trace_id("mem", core_id, self._trace_sequence)
            self._trace_sequence += 1
        root = trace.start_span(
            trace_id,
            "mem.request",
            now,
            parent=parent,
            core=core_id,
            level=outcome.level.value,
            write=is_write,
        )
        cursor = now
        record_lookup_span(
            trace,
            trace_id,
            level="l1",
            start=cursor,
            latency=self.l1_latency,
            hit=outcome.level is ServiceLevel.L1,
            parent=root,
        )
        cursor += self.l1_latency
        if outcome.level is not ServiceLevel.L1:
            record_lookup_span(
                trace,
                trace_id,
                level="l2",
                start=cursor,
                latency=self.l2_latency,
                hit=bool(outcome.l2_hit),
                parent=root,
            )
            cursor += self.l2_latency
            if outcome.level is ServiceLevel.MEMORY:
                trace.span(
                    trace_id,
                    "dram.access",
                    cursor,
                    now + outcome.latency_cycles,
                    parent=root,
                )
        trace.end_span(root, now + outcome.latency_cycles)
        return outcome

    def access_block(
        self,
        core_id: int,
        addresses: Sequence[int],
        is_writes: Sequence[bool],
    ) -> BatchOutcome:
        """Run a batch of accesses from one core; return the aggregate.

        State evolution (cache contents, DRAM counters, shadow
        observations) is identical to calling :meth:`access` per
        element; the batch only avoids building an
        :class:`AccessOutcome` per access and re-resolving the L1/L2
        objects inside the loop.  The default latencies are
        integer-valued, so summing them here is exact.
        """
        try:
            l1 = self.l1_caches[core_id]
        except KeyError:
            raise ValueError(
                f"core {core_id} has no L1 cache in this hierarchy"
            ) from None
        l1_access = l1.access
        l2_access = self.l2_cache.access
        dram = self.dram
        dram_access = dram.access
        shadow = self._shadows.get(core_id)
        l1_hits = l2_hits = l2_misses = 0
        dram_latency = 0.0
        for address, is_write in zip(addresses, is_writes):
            if l1_access(address, is_write=is_write, core_id=core_id).hit:
                l1_hits += 1
                continue
            l2_result = l2_access(core_id, address, is_write=is_write)
            if shadow is not None:
                shadow.observe(address, l2_result.hit)
            if l2_result.writeback:
                dram.record_writeback()
            if l2_result.hit:
                l2_hits += 1
            else:
                l2_misses += 1
                dram_latency += dram_access(address)
        accesses = l1_hits + l2_hits + l2_misses
        latency = (
            accesses * self.l1_latency
            + (l2_hits + l2_misses) * self.l2_latency
            + dram_latency
        )
        return BatchOutcome(
            accesses=accesses,
            l1_hits=l1_hits,
            l2_hits=l2_hits,
            l2_misses=l2_misses,
            latency_cycles=latency,
        )
