"""Processor-core models.

- :mod:`repro.cpu.cpi` — Luo's additive CPI decomposition used by the
  paper (Section 4.2) to argue that bounding the L2 miss-rate increase
  bounds the CPI increase.
- :mod:`repro.cpu.hierarchy` — the per-core L1 + shared L2 + DRAM access
  path with per-level latencies.
- :mod:`repro.cpu.core` — a trace-driven in-order core that executes
  synthetic memory-access traces against a hierarchy and accumulates
  cycles with the CPI decomposition.
"""

from repro.cpu.core import CoreResult, InOrderCore
from repro.cpu.cpi import CpiModel
from repro.cpu.hierarchy import AccessOutcome, MemoryHierarchy

__all__ = [
    "CpiModel",
    "MemoryHierarchy",
    "AccessOutcome",
    "InOrderCore",
    "CoreResult",
]
