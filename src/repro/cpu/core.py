"""Trace-driven in-order core.

Executes a stream of memory accesses (produced by the synthetic
workload generators) against a :class:`~repro.cpu.hierarchy.MemoryHierarchy`,
charging ``CPI_L1inf`` cycles of compute per instruction plus the
measured memory latency per access — the trace-level realisation of
Luo's CPI model.  Each core runs at the machine clock (2 GHz).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Optional

from repro.cpu.hierarchy import MemoryHierarchy, ServiceLevel
from repro.util.validation import check_non_negative, check_positive


class CoreFaultError(RuntimeError):
    """A trace was driven at a core that is currently failed."""


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference in a trace."""

    address: int
    is_write: bool = False


@dataclass
class CoreResult:
    """Cycle and event totals from executing a trace."""

    instructions: int = 0
    cycles: float = 0.0
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l2_misses: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0.0 before any cycle elapses)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        """Cycles per instruction (0.0 before any instruction retires)."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def l2_mpi(self) -> float:
        """L2 misses per instruction."""
        return self.l2_misses / self.instructions if self.instructions else 0.0

    @property
    def l2_miss_rate(self) -> float:
        """L2 misses over L2 accesses."""
        l2_accesses = self.l2_hits + self.l2_misses
        return self.l2_misses / l2_accesses if l2_accesses else 0.0


class InOrderCore:
    """In-order core executing one job's access trace.

    Parameters
    ----------
    core_id:
        Index of this core in the CMP (selects its private L1).
    hierarchy:
        The memory hierarchy shared with the other cores.
    cpi_l1_inf:
        Compute CPI assuming an infinite L1.
    instructions_per_access:
        How many instructions each trace access represents; the
        reciprocal of the trace's memory-reference density.
    """

    def __init__(
        self,
        core_id: int,
        hierarchy: MemoryHierarchy,
        *,
        cpi_l1_inf: float = 1.0,
        instructions_per_access: int = 4,
    ) -> None:
        check_positive("cpi_l1_inf", cpi_l1_inf)
        check_positive("instructions_per_access", instructions_per_access)
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.cpi_l1_inf = cpi_l1_inf
        self.instructions_per_access = instructions_per_access
        self.result = CoreResult()
        # Fault state: a failed core refuses work until repaired; an
        # injected stall burns cycles without retiring instructions.
        self.failed = False
        self.stall_cycles_injected = 0.0

    # -- fault injection --------------------------------------------------------

    def fail(self) -> None:
        """Take the core offline; :meth:`execute` raises until repaired."""
        self.failed = True

    def repair(self) -> None:
        """Bring a failed core back online."""
        self.failed = False

    def inject_stall(self, cycles: float) -> None:
        """Burn ``cycles`` on this core without retiring instructions.

        Models a transient stall (e.g. a machine-check recovery or
        thermal throttle): the wall clock advances, IPC drops, and the
        injected cycles are tracked separately so reports can attribute
        the slowdown to the fault rather than the workload.
        """
        check_non_negative("cycles", cycles)
        if self.failed:
            raise CoreFaultError(
                f"core {self.core_id} is failed; repair it before stalling"
            )
        self.result.cycles += cycles
        self.stall_cycles_injected += cycles

    def execute(
        self,
        trace: Iterable[MemoryAccess],
        *,
        max_accesses: Optional[int] = None,
    ) -> CoreResult:
        """Run ``trace`` (optionally truncated) and return cumulative totals.

        The method may be called repeatedly; results accumulate, which
        lets the simulator interleave execution quanta from different
        jobs on a timeshared core.

        Raises :class:`CoreFaultError` if the core is currently failed.
        """
        if self.failed:
            raise CoreFaultError(
                f"core {self.core_id} is failed and cannot execute"
            )
        for access in trace:
            if max_accesses is not None and max_accesses <= 0:
                break
            if max_accesses is not None:
                max_accesses -= 1
            self._execute_one(access)
        return self.result

    def execute_block(
        self,
        trace: Iterable[MemoryAccess],
        *,
        max_accesses: Optional[int] = None,
    ) -> CoreResult:
        """Batch variant of :meth:`execute` using the hierarchy's batch API.

        Consumes the same number of accesses from ``trace`` as
        :meth:`execute` would and accumulates identical totals, but
        drives the whole segment through
        :meth:`~repro.cpu.hierarchy.MemoryHierarchy.access_block` so the
        per-access Python overhead (outcome objects, method dispatch)
        is paid once per segment instead of once per access.
        """
        if self.failed:
            raise CoreFaultError(
                f"core {self.core_id} is failed and cannot execute"
            )
        if max_accesses is not None:
            batch = list(islice(trace, max_accesses))
        else:
            batch = list(trace)
        if not batch:
            return self.result
        addresses = [access.address for access in batch]
        is_writes = [access.is_write for access in batch]
        outcome = self.hierarchy.access_block(
            self.core_id, addresses, is_writes
        )
        result = self.result
        result.accesses += outcome.accesses
        result.instructions += (
            outcome.accesses * self.instructions_per_access
        )
        result.cycles += (
            outcome.accesses * self.instructions_per_access * self.cpi_l1_inf
            + outcome.latency_cycles
        )
        result.l1_hits += outcome.l1_hits
        result.l2_hits += outcome.l2_hits
        result.l2_misses += outcome.l2_misses
        return result

    def _execute_one(self, access: MemoryAccess) -> None:
        outcome = self.hierarchy.access(
            self.core_id, access.address, is_write=access.is_write
        )
        self.result.accesses += 1
        self.result.instructions += self.instructions_per_access
        self.result.cycles += (
            self.instructions_per_access * self.cpi_l1_inf
            + outcome.latency_cycles
        )
        if outcome.level is ServiceLevel.L1:
            self.result.l1_hits += 1
        elif outcome.level is ServiceLevel.L2:
            self.result.l2_hits += 1
        else:
            self.result.l2_misses += 1

    def reset(self) -> None:
        """Zero the accumulated result (new job on this core).

        Fault state is hardware, not job state: a failed core stays
        failed across job swaps until :meth:`repair` is called.
        """
        self.result = CoreResult()
        self.stall_cycles_injected = 0.0
