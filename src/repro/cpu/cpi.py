"""Luo's additive CPI model (Section 4.2 of the paper).

The paper expresses per-job cycles-per-instruction as

``CPI = CPI_L1inf + h2 * t2 + hm * tm``

where ``CPI_L1inf`` is the CPI with an infinite L1, ``h2``/``hm`` are L2
accesses/misses per instruction, and ``t2``/``tm`` the L2 access and
miss penalties.  Because all components are non-negative and ``hm * tm``
is only one of them, an X% increase in ``hm`` yields a *less than* X%
increase in CPI — the observation that justifies using the L2 miss rate
as the conservative resource-stealing criterion.

This module is used in two roles:

1. Inside the resource-stealing analysis (Figure 8a) to convert
   measured miss-rate increases into CPI increases.
2. As the timing model of the system simulator: a job's execution time
   under a given way allocation is ``instructions * CPI(hm(ways))``
   cycles, with ``hm(ways)`` read off the job's miss-ratio curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CpiModel:
    """Immutable CPI decomposition parameters for one job/benchmark.

    Parameters
    ----------
    cpi_l1_inf:
        Base CPI assuming an infinite L1 cache (compute component).
    l2_accesses_per_instruction:
        ``h2`` — L1 misses (= L2 accesses) per instruction.
    l2_access_penalty:
        ``t2`` — L2 hit latency in cycles (10 in the machine model).
    l2_miss_penalty:
        ``tm`` — additional cycles for an L2 miss (300 in the machine
        model, before bandwidth contention).
    """

    cpi_l1_inf: float
    l2_accesses_per_instruction: float
    l2_access_penalty: float
    l2_miss_penalty: float

    def __post_init__(self) -> None:
        check_positive("cpi_l1_inf", self.cpi_l1_inf)
        check_non_negative(
            "l2_accesses_per_instruction", self.l2_accesses_per_instruction
        )
        check_non_negative("l2_access_penalty", self.l2_access_penalty)
        check_non_negative("l2_miss_penalty", self.l2_miss_penalty)

    # -- forward model -------------------------------------------------------

    def cpi(
        self,
        misses_per_instruction: float,
        *,
        miss_penalty_multiplier: float = 1.0,
    ) -> float:
        """CPI at the given ``hm``.

        ``miss_penalty_multiplier`` scales ``tm`` for bandwidth
        contention (queueing delay on the memory bus).
        """
        check_non_negative("misses_per_instruction", misses_per_instruction)
        check_positive("miss_penalty_multiplier", miss_penalty_multiplier)
        if misses_per_instruction > self.l2_accesses_per_instruction + 1e-12:
            raise ValueError(
                f"misses_per_instruction ({misses_per_instruction}) cannot "
                f"exceed l2_accesses_per_instruction "
                f"({self.l2_accesses_per_instruction})"
            )
        return (
            self.cpi_l1_inf
            + self.l2_accesses_per_instruction * self.l2_access_penalty
            + misses_per_instruction
            * self.l2_miss_penalty
            * miss_penalty_multiplier
        )

    def ipc(self, misses_per_instruction: float, **kwargs: float) -> float:
        """Instructions per cycle at the given ``hm``."""
        return 1.0 / self.cpi(misses_per_instruction, **kwargs)

    def cycles(
        self, instructions: int, misses_per_instruction: float, **kwargs: float
    ) -> float:
        """Total cycles to execute ``instructions`` at the given ``hm``."""
        check_non_negative("instructions", instructions)
        return instructions * self.cpi(misses_per_instruction, **kwargs)

    # -- analysis helpers ------------------------------------------------------

    def cpi_increase_fraction(
        self, baseline_mpi: float, degraded_mpi: float
    ) -> float:
        """Fractional CPI increase when ``hm`` rises from baseline to degraded.

        The paper's key inequality: if ``degraded_mpi`` is (1 + X) times
        ``baseline_mpi``, the returned value is strictly less than X
        whenever the non-miss CPI components are positive.
        """
        base = self.cpi(baseline_mpi)
        return (self.cpi(degraded_mpi) - base) / base

    def miss_cpi_share(self, misses_per_instruction: float) -> float:
        """Fraction of CPI contributed by L2 misses at the given ``hm``.

        This equals the asymptotic ratio between CPI increase and
        miss-rate increase; Figure 8(a) of the paper observes it to be
        roughly one third to one half for bzip2.
        """
        total = self.cpi(misses_per_instruction)
        return misses_per_instruction * self.l2_miss_penalty / total

    def max_mpi_for_target_cpi(self, target_cpi: float) -> float:
        """Largest ``hm`` that still achieves ``target_cpi``.

        Inverse of :meth:`cpi`; raises if the target is unattainable
        even with a perfect L2 (illustrating the paper's point that OPM
        targets can be ill-defined).
        """
        check_positive("target_cpi", target_cpi)
        floor = self.cpi(0.0)
        if target_cpi < floor:
            raise ValueError(
                f"target CPI {target_cpi} is below the zero-miss floor "
                f"{floor:.4f}: no amount of cache can satisfy it"
            )
        if self.l2_miss_penalty == 0:
            return self.l2_accesses_per_instruction
        return min(
            (target_cpi - floor) / self.l2_miss_penalty,
            self.l2_accesses_per_instruction,
        )
