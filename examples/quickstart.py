"""Quickstart: specify a QoS target, admit jobs, and run a workload.

This walks the full pipeline of the framework from the paper:

1. Express QoS targets in Resource Usage Metrics (cores + cache ways) —
   the *convertible* specification of Section 3.2.
2. Submit jobs to the Local Admission Controller and watch it accept
   only what fits (Section 5).
3. Run a 10-job workload through the system simulator under the
   All-Strict configuration and report the paper's metrics.

Run with:  python examples/quickstart.py
"""

from repro import (
    ALL_STRICT,
    ExecutionMode,
    Job,
    LocalAdmissionController,
    QoSTarget,
    ResourceVector,
    TimeslotRequest,
    run_configuration,
    single_benchmark_workload,
)

# ---------------------------------------------------------------------------
# 1. A convertible QoS target: 1 core + 7 of the 16 L2 ways (896 KB),
#    for at most 0.3 s, finishing within 0.45 s.
# ---------------------------------------------------------------------------

target = QoSTarget(
    resources=ResourceVector(cores=1, cache_ways=7),
    timeslot=TimeslotRequest(max_wall_clock=0.3, deadline=0.45),
    mode=ExecutionMode.strict(),
)
print(f"QoS target: {target.resources}, convertible={target.is_convertible}")

# ---------------------------------------------------------------------------
# 2. Admission control: the supply/demand comparison is a subtraction.
# ---------------------------------------------------------------------------

lac = LocalAdmissionController(ResourceVector(cores=4, cache_ways=16))
print(f"\nNode capacity: {lac.capacity}")

for job_id in range(1, 4):
    job = Job(
        job_id=job_id,
        benchmark="bzip2",
        target=target,
        arrival_time=0.0,
        instructions=200_000_000,
    )
    decision = lac.admit(job, now=0.0)
    verdict = "ACCEPTED" if decision.accepted else "REJECTED"
    print(f"job {job_id}: {verdict} — {decision.reason}")
# Two 7-way jobs fit in the 16-way L2; the third does not (before its
# deadline), exactly the paper's All-Strict dynamic.

# ---------------------------------------------------------------------------
# 3. A full workload under the All-Strict configuration.
#    (Profiles the benchmark's miss-ratio curve on first use: ~5 s.)
# ---------------------------------------------------------------------------

print("\nRunning ten bzip2 jobs under All-Strict (profiling on first run)…")
workload = single_benchmark_workload("bzip2", ALL_STRICT)
result = run_configuration(workload)

print(f"accepted jobs: {len(result.jobs)}")
print(f"deadline hit rate: {result.deadline_report.hit_rate:.0%}")
print(f"makespan: {result.makespan_cycles / 1e6:.0f} Mcycles")
print(f"admission probes: {result.probes} ({result.rejections} rejected)")
for job in result.jobs[:3]:
    print(
        f"  job {job.job_id}: start {job.start_time * 1e3:.1f} ms, "
        f"complete {job.completion_time * 1e3:.1f} ms, "
        f"deadline {job.deadline * 1e3:.1f} ms, "
        f"met={job.met_deadline}"
    )
print("  …")
