"""Fault injection and graceful degradation (repro.faults).

Two scenarios under a deterministic, seeded fault schedule:

(1) A lightly-loaded node: two Strict jobs with relaxed deadlines.
    A core failure displaces one job mid-run; the LAC re-admits it
    into a fresh timeslot (with exponential backoff between attempts)
    and both jobs still meet their deadlines.

(2) A congested node: ten Strict jobs, aggressive core failures.
    Re-admission cannot find a window before the deadlines, so the
    displaced jobs walk the degradation ladder — Strict → Elastic →
    Opportunistic — trading their guarantee for forward progress.
    Every job still completes.

The same fault seed always produces the same timeline, downgrades and
metrics; re-run the script and compare the digests.

Run with:  python examples/fault_injection_demo.py
"""

from repro import (
    ALL_STRICT,
    ExecutionMode,
    FaultConfig,
    QoSSystemSimulator,
    SimulationConfig,
    single_benchmark_workload,
)
from repro.analysis.report import downgrade_ladder_lines, resilience_table
from repro.workloads.arrival import DeadlineClass
from repro.workloads.composer import JobSpec, WorkloadSpec


def sparse_scenario():
    """Two relaxed-deadline Strict jobs: displacement then re-admission."""
    jobs = tuple(
        JobSpec(
            benchmark="bzip2",
            mode=ExecutionMode.strict(),
            deadline_class=DeadlineClass.RELAXED,
            requested_ways=7,
        )
        for _ in range(2)
    )
    workload = WorkloadSpec(
        name="sparse", jobs=jobs, configuration=ALL_STRICT
    )
    faults = FaultConfig(
        seed=3, core_failure_rate=6.0, core_repair_time=0.08, horizon=0.25
    )
    simulator = QoSSystemSimulator(
        workload,
        sim_config=SimulationConfig(accepted_jobs_target=2),
        fault_config=faults,
    )
    return simulator.run()


def congested_scenario():
    """Ten Strict jobs under aggressive failures: the downgrade ladder."""
    workload = single_benchmark_workload("bzip2", ALL_STRICT)
    faults = FaultConfig(seed=11, core_failure_rate=8.0)
    simulator = QoSSystemSimulator(workload, fault_config=faults)
    return simulator.run()


def show(result, title):
    print(resilience_table(result, title=title))
    ladder = downgrade_ladder_lines(result)
    if ladder:
        print("downgrade ladder:")
        for line in ladder:
            print(f"  {line}")
    completed = sum(1 for job in result.jobs if job.completion_time is not None)
    print(
        f"jobs completed: {completed}/{len(result.jobs)}, deadline hit "
        f"rate {result.deadline_report.hit_rate:.0%}"
    )
    print(f"fault timeline digest: {result.fault_timeline_digest}")
    print()


def main():
    sparse = sparse_scenario()
    show(sparse, "(1) sparse node — displacement and re-admission")
    assert sparse.resilience.readmissions >= 1, "expected a re-admission"

    congested = congested_scenario()
    show(congested, "(2) congested node — the degradation ladder")
    assert congested.resilience.downgrade_count >= 1, "expected downgrades"

    print(
        "graceful degradation kept every job running: displaced jobs are "
        "re-admitted when capacity exists, and downgraded one rung at a "
        "time when it does not."
    )


if __name__ == "__main__":
    main()
