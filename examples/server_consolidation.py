"""Server consolidation with SLA tiers across multiple CMP nodes.

The paper's motivating scenario (Section 1): a utility-computing
provider runs jobs with gold/silver/bronze service-level agreements on
a cluster of CMP nodes.  The Global Admission Controller (Figure 2)
probes each node's LAC and places a job on the first node that can
guarantee its QoS target; when no node can, it computes a counter-offer
deadline the client could accept instead.

SLA mapping used here:

- **gold**   → the 'large' preset (2 cores + 12 ways), Strict.
- **silver** → the 'medium' preset (1 core + 7 ways), Elastic(10%).
- **bronze** → the 'small' preset (1 core + 3 ways), Opportunistic.

Run with:  python examples/server_consolidation.py
"""

from repro import (
    ExecutionMode,
    GlobalAdmissionController,
    Job,
    LocalAdmissionController,
    PRESET_TARGETS,
    QoSTarget,
    ResourceVector,
    TimeslotRequest,
)

NUM_NODES = 3
NODE_CAPACITY = ResourceVector(cores=4, cache_ways=16)

SLA_TIERS = {
    "gold": (PRESET_TARGETS["large"], ExecutionMode.strict()),
    "silver": (PRESET_TARGETS["medium"], ExecutionMode.elastic(0.10)),
    "bronze": (PRESET_TARGETS["small"], ExecutionMode.opportunistic()),
}


def make_job(job_id, tier, *, tw=1.0, slack=0.5, now=0.0):
    """Build a job for an SLA tier with deadline ta + tw*(1+slack)."""
    resources, mode = SLA_TIERS[tier]
    promised = mode.reservation_duration(tw) or tw
    return Job(
        job_id=job_id,
        benchmark="bzip2",
        target=QoSTarget(
            resources=resources,
            timeslot=TimeslotRequest(
                max_wall_clock=tw, deadline=now + promised * (1 + slack)
            ),
            mode=mode,
        ),
        arrival_time=now,
        instructions=200_000_000,
    )


def main():
    gac = GlobalAdmissionController(
        [LocalAdmissionController(NODE_CAPACITY) for _ in range(NUM_NODES)]
    )
    print(
        f"cluster: {NUM_NODES} nodes x {NODE_CAPACITY} "
        f"({gac.total_capacity_cores()} cores total)\n"
    )

    submissions = [
        ("gold", 0.0), ("silver", 0.0), ("silver", 0.0), ("bronze", 0.0),
        ("gold", 0.1), ("gold", 0.1), ("silver", 0.2), ("gold", 0.3),
        ("gold", 0.3), ("bronze", 0.4), ("gold", 0.4), ("gold", 0.5),
    ]

    placed = {tier: 0 for tier in SLA_TIERS}
    rejected = 0
    for job_id, (tier, now) in enumerate(submissions, start=1):
        job = make_job(job_id, tier, now=now)
        result = gac.place(job, now=now)
        if result.accepted:
            placed[tier] += 1
            start = (
                result.decision.reserved_start
                if result.decision.reservation
                else now
            )
            print(
                f"job {job_id:2d} [{tier:6s}] -> node {result.node_index}, "
                f"starts {start:.2f}s "
                f"(probed {len(result.probes)} node(s))"
            )
        else:
            rejected += 1
            offer = result.counter_offer_deadline
            negotiation = (
                f"counter-offer: deadline {offer:.2f}s"
                if offer is not None
                else "request exceeds every node"
            )
            print(f"job {job_id:2d} [{tier:6s}] -> REJECTED; {negotiation}")
            # Accept the negotiated deadline, as Section 3.1 suggests.
            relaxed = gac.renegotiated_target(job, now=now)
            if relaxed is not None:
                retry = Job(
                    job_id=job_id,
                    benchmark=job.benchmark,
                    target=relaxed,
                    arrival_time=now,
                    instructions=job.instructions,
                )
                retry_result = gac.place(retry, now=now)
                if retry_result.accepted:
                    placed[tier] += 1
                    rejected -= 1
                    print(
                        f"         renegotiated -> node "
                        f"{retry_result.node_index} ✓"
                    )

    print(f"\nplaced per tier: {placed}; rejected outright: {rejected}")
    print(f"cluster core load at t=0.5s: {gac.load_at(0.5):.0%}")


if __name__ == "__main__":
    main()
