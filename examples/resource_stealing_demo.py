"""Resource stealing on the real microarchitecture (Section 4).

Runs an Elastic(5%) cache-insensitive job (gobmk) next to an
Opportunistic cache-hungry job (bzip2) on a trace-driven CMP node with
a genuinely partitioned L2 and duplicate (shadow) tag arrays.  The
stealing controller takes one way per repartitioning interval from the
Elastic donor and hands it to the Opportunistic recipient, watching the
shadow tags; if the donor's cumulative L2 misses ever exceed the
no-stealing baseline by more than 5%, everything is returned at once.

This is the Mix-1 scenario of Table 3 at cache granularity: the flat
donor gives up almost its whole partition while staying inside its
slack, and the recipient's miss rate falls.

Run with:  python examples/resource_stealing_demo.py
"""

from repro import CmpNode, MachineConfig, CacheGeometry, PartitionClass
from repro.core.stealing import ResourceStealingController, StealingAction
from repro.cpu.core import MemoryAccess
from repro.util.rng import DeterministicRng
from repro.workloads.benchmarks import get_benchmark

DONOR_CORE, RECIPIENT_CORE = 0, 1
DONOR_WAYS = 7
SLACK = 0.05
INTERVAL_ACCESSES = 4_000  # repartitioning interval, in L2 accesses
INTERVALS = 14


def endless_trace(benchmark, base, seed):
    generator = get_benchmark(benchmark).make_generator()
    generator.bind(
        num_sets=64,
        block_bytes=64,
        rng=DeterministicRng(seed, benchmark),
        base_address=base,
    )

    def stream():
        while True:
            for address, is_write in generator.address_stream(1024):
                yield MemoryAccess(address, is_write)

    return stream()


def main():
    # A scaled-down node (64-set L2) keeps the demo fast; the mechanism
    # is identical at full scale.
    machine = MachineConfig(
        num_cores=2,
        l1_geometry=CacheGeometry.from_sets(16, 2, 64),
        l2_geometry=CacheGeometry.from_sets(64, 16, 64),
        shadow_sample_period=8,
    )
    node = CmpNode(machine)
    node.assign_partition(DONOR_CORE, DONOR_WAYS, PartitionClass.RESERVED)
    node.assign_partition(RECIPIENT_CORE, 0, PartitionClass.BEST_EFFORT)
    node.redistribute_spare()

    shadow = node.attach_shadow(DONOR_CORE, baseline_ways=DONOR_WAYS)
    # Floor the donor at 2 ways: gobmk's tiny hot set lives in its last
    # way or two, so stopping above the cliff lets the donation be
    # sustained instead of oscillating through cancel-and-return.
    controller = ResourceStealingController(
        slack=SLACK, baseline_ways=DONOR_WAYS, min_ways=2
    )

    donor_trace = endless_trace("gobmk", base=0, seed=11)
    recipient_trace = endless_trace("bzip2", base=1 << 30, seed=13)

    print(
        f"donor: gobmk Elastic({SLACK:.0%}) with {DONOR_WAYS} ways | "
        f"recipient: bzip2 Opportunistic\n"
    )
    print(
        f"{'interval':>8} | {'donor ways':>10} | {'miss incr':>9} | "
        f"{'action':>9} | {'recipient miss rate':>19}"
    )

    stolen_outstanding = 0
    for interval in range(1, INTERVALS + 1):
        node.run_interleaved(
            {
                DONOR_CORE: donor_trace,
                RECIPIENT_CORE: recipient_trace,
            },
            accesses_per_core=INTERVAL_ACCESSES,
        )
        decision = controller.on_interval(shadow)
        # Apply the decision to the real partition ledger.
        if decision.action is StealingAction.STEAL_ONE:
            node.partitions.transfer(DONOR_CORE, RECIPIENT_CORE, 1)
            stolen_outstanding += 1
        elif decision.action is StealingAction.CANCEL:
            if stolen_outstanding:
                # Return exactly the stolen ways; the recipient keeps
                # its original spare-capacity grant.
                node.partitions.restore(
                    to_core=DONOR_CORE, from_core=RECIPIENT_CORE,
                    ways=stolen_outstanding,
                )
                stolen_outstanding = 0
        node.partitions.apply_to_cache(node.l2)

        recipient = node.l2.stats.core(RECIPIENT_CORE)
        print(
            f"{interval:>8} | {decision.elastic_ways:>10} | "
            f"{decision.miss_increase:>8.1%} | "
            f"{decision.action.value:>9} | {recipient.miss_rate:>19.1%}"
        )

    print(
        f"\nfinal: donor kept {controller.current_ways} way(s), donated "
        f"{controller.stolen_ways}; cumulative donor miss increase "
        f"{shadow.miss_increase_fraction():.1%} (slack {SLACK:.0%}); "
        f"shadow-tag storage overhead "
        f"{shadow.storage_overhead_fraction():.1%} of the main tags"
    )


if __name__ == "__main__":
    main()
