"""Figure 3: how execution-mode downgrade recovers throughput.

Recreates the paper's illustrative scenario: six jobs, each needing
40% of the shared cache to finish in time T, deadlines of 1.5 T, on a
4-core CMP.  Three schedules are compared:

(a) all six Strict          — only two run at a time (3 T total),
(b) two downgraded to Opportunistic — they soak up the fragments,
(c) two more downgraded to Elastic  — stealing feeds the Opportunistic
    jobs even more capacity.

The numbers differ from the idealised figure (the simulator charges
Opportunistic jobs for the small allocations they actually get), but
the ordering — (c) ≤ (b) < (a) — and the mechanism are the same.

Run with:  python examples/mode_downgrade_demo.py
"""

from repro import (
    ExecutionMode,
    MachineConfig,
    ModeMixConfig,
    QoSSystemSimulator,
    SimulationConfig,
)
from repro.workloads.arrival import DeadlineClass
from repro.workloads.composer import JobSpec, WorkloadSpec
from repro.workloads.profiler import MissRatioCurve

# A synthetic benchmark curve: needs ~40% of the cache (6-7 of 16
# ways); below that the miss rate climbs quickly.
CURVE = MissRatioCurve(
    benchmark="bzip2",
    l2_accesses_per_instruction=0.0275,
    points={
        1: 0.55, 2: 0.50, 3: 0.45, 4: 0.40, 5: 0.32, 6: 0.22,
        7: 0.20, 8: 0.19, 16: 0.18,
    },
)


def schedule(name, modes):
    """Run six jobs with the given modes; return (makespan, result)."""
    config = ModeMixConfig(
        name=name, strict_fraction=1.0
    )  # placeholder; modes are set per job below
    jobs = tuple(
        JobSpec(
            benchmark="bzip2",
            mode=mode,
            # 1.5 T deadlines: between 'tight' and 'moderate'; use the
            # moderate class (2 tw) so Elastic stretches still fit.
            deadline_class=DeadlineClass.MODERATE,
            requested_ways=6,  # ~40% of the 16-way cache
        )
        for mode in modes
    )
    workload = WorkloadSpec(name=name, jobs=jobs, configuration=config)
    simulator = QoSSystemSimulator(
        workload,
        machine=MachineConfig(),
        sim_config=SimulationConfig(accepted_jobs_target=6),
        curves={"bzip2": CURVE},
        record_trace=True,
    )
    return simulator.run()


def describe(result):
    last = max(j.completion_time for j in result.jobs)
    t_unit = min(j.wall_clock_time for j in result.jobs)
    lines = []
    for job in result.jobs:
        bar_start = job.start_time / t_unit
        bar_end = job.completion_time / t_unit
        lines.append(
            f"  job {job.job_id}: {job.requested_mode.describe():14s} "
            f"[{bar_start:5.2f} T → {bar_end:5.2f} T]  "
            f"deadline met: {job.met_deadline}"
        )
    return last / t_unit, lines


def main():
    strict = ExecutionMode.strict()
    opportunistic = ExecutionMode.opportunistic()
    elastic = ExecutionMode.elastic(0.05)

    scenarios = [
        ("(a) all Strict", [strict] * 6),
        (
            "(b) jobs 3 & 6 manually downgraded to Opportunistic",
            [strict, strict, opportunistic, strict, strict, opportunistic],
        ),
        (
            "(c) jobs 2 & 5 also downgraded to Elastic(5%)",
            [strict, elastic, opportunistic, strict, elastic, opportunistic],
        ),
    ]

    makespans = {}
    for name, modes in scenarios:
        result = schedule(name, modes)
        makespan, lines = describe(result)
        makespans[name] = makespan
        print(f"{name}: completes in {makespan:.2f} T")
        print("\n".join(lines))
        print()

    a, b, c = (makespans[name] for name, _ in scenarios)
    print(f"summary: (a) {a:.2f} T vs (b) {b:.2f} T vs (c) {c:.2f} T")
    print(
        "downgrading to Opportunistic recovers ~1 T of makespan while "
        "every reserved job still meets its deadline."
    )
    if c > b:
        print(
            "note: (c) is slightly slower than (b) here — exactly the "
            "Section 3.4 caveat that Elastic downgrade stretches "
            "reservations by (1+X) and only pays off when Opportunistic "
            "jobs gain more from the stolen capacity than the stretch "
            "costs (compare the Mix-1 workload, where it does)."
        )


if __name__ == "__main__":
    main()
