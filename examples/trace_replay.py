"""Replaying recorded address traces through the cache substrate.

The synthetic workloads stand in for SPEC2006, but the caches are
trace-driven: anyone with real traces (Pin, DynamoRIO, a hardware
trace unit, another simulator) can run them directly.  This example:

1. records a synthetic gobmk run to a gzip trace file (stand-in for a
   real capture);
2. replays the file through a partitioned L2 at several allocations to
   profile its miss-ratio curve;
3. mixes the recorded trace with a synthetic co-runner on a real
   two-core CMP node.

Run with:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import CacheGeometry, MachineConfig, PartitionClass
from repro.cache.basic import SetAssociativeCache
from repro.sim.cmp import CmpNode
from repro.util.rng import DeterministicRng
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.tracefile import (
    FileTracePattern,
    read_trace,
    record_trace,
)
from repro.util.tables import format_table

NUM_SETS = 64
TRACE_LENGTH = 20_000


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = workdir / "capture.trace.gz"

    # 1. "Capture" a run (in the real world this file comes from your
    #    instrumentation tool).
    generator = get_benchmark("gobmk").make_generator()
    generator.bind(
        num_sets=NUM_SETS, block_bytes=64, rng=DeterministicRng(7, "cap")
    )
    count = record_trace(generator, trace_path, count=TRACE_LENGTH)
    print(f"recorded {count} accesses to {trace_path}")

    # 2. Profile the captured trace's miss-ratio curve.
    rows = []
    for ways in (1, 2, 4, 8):
        cache = SetAssociativeCache(
            CacheGeometry.from_sets(NUM_SETS, ways, 64)
        )
        for access in read_trace(trace_path):
            cache.access(access.address, is_write=access.is_write)
        rows.append([ways, cache.stats.miss_rate])
    print()
    print(
        format_table(
            ["ways", "miss rate"],
            rows,
            title="captured trace: miss-ratio curve",
        )
    )

    # 3. Replay next to a synthetic co-runner on a real CMP node.
    machine = MachineConfig(
        num_cores=2,
        l1_geometry=CacheGeometry.from_sets(16, 2, 64),
        l2_geometry=CacheGeometry.from_sets(NUM_SETS, 16, 64),
    )
    node = CmpNode(machine)
    node.assign_partition(0, 4, PartitionClass.RESERVED)
    node.assign_partition(1, 12, PartitionClass.RESERVED)

    replay = FileTracePattern(trace_path)
    replay.bind(
        num_sets=NUM_SETS,
        block_bytes=64,
        region_base=0,
        rng=DeterministicRng(1, "replay"),
    )
    co_runner = get_benchmark("bzip2").make_generator()
    co_runner.bind(
        num_sets=NUM_SETS,
        block_bytes=64,
        rng=DeterministicRng(3, "co"),
        base_address=1 << 30,
    )

    from repro.cpu.core import MemoryAccess

    def replay_stream():
        while True:
            yield replay.next_access()

    def synthetic_stream():
        while True:
            for address, is_write in co_runner.address_stream(1024):
                yield MemoryAccess(address, is_write)

    results = node.run_interleaved(
        {0: replay_stream(), 1: synthetic_stream()},
        accesses_per_core=TRACE_LENGTH,
    )
    print()
    print(
        f"replayed trace on core 0 (4-way partition): miss rate "
        f"{results[0].l2_miss_rate:.1%}; synthetic bzip2 on core 1 "
        f"(12-way): {results[1].l2_miss_rate:.1%}"
    )
    print(
        f"footprint of the captured trace: "
        f"{replay.footprint_ways:.2f} ways-worth of blocks"
    )


if __name__ == "__main__":
    main()
