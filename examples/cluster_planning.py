"""Capacity-planning a CMP server (the Figure 2 architecture at scale).

The paper evaluates a single 4-core node and assumes a Global
Admission Controller in front of many of them.  This example answers
the operator's questions with the reservation-level cluster simulator:

1. How does the acceptance rate degrade as offered load grows on a
   fixed cluster?
2. How many nodes does a given SLA mix need for 95% acceptance?
3. Does least-loaded placement buy anything over first-fit?

Run with:  python examples/cluster_planning.py
"""

from repro import ClusterJobProfile, ClusterSimulator, size_cluster
from repro.analysis.sweeps import sweep_arrival_rate
from repro.core.spec import PRESET_TARGETS
from repro.util.tables import format_table

PROFILES = [
    ClusterJobProfile(
        name="gold",
        weight=0.25,
        resources=PRESET_TARGETS["large"],
        mean_wall_clock=1.0,
        deadline_multiplier=1.2,
    ),
    ClusterJobProfile(
        name="silver",
        weight=0.50,
        resources=PRESET_TARGETS["medium"],
        mean_wall_clock=0.6,
        deadline_multiplier=2.0,
    ),
    ClusterJobProfile(
        name="bronze",
        weight=0.25,
        resources=PRESET_TARGETS["small"],
        mean_wall_clock=0.4,
        deadline_multiplier=3.0,
    ),
]


def main():
    print("1. Acceptance vs offered load on a 4-node cluster:\n")
    points = sweep_arrival_rate(
        PROFILES, (1.0, 0.5, 0.25, 0.1, 0.05), num_nodes=4
    )
    print(
        format_table(
            ["mean inter-arrival (s)", "acceptance rate", "mean core load"],
            [
                [p.mean_interarrival, p.acceptance_rate, p.mean_load]
                for p in points
            ],
            title="load sweep",
        )
    )

    print("\n2. Sizing for 95% acceptance at inter-arrival 0.1 s:\n")
    nodes = size_cluster(
        profiles=PROFILES,
        mean_interarrival=0.1,
        target_acceptance=0.95,
    )
    print(f"   -> {nodes} node(s)")

    print("\n3. Placement policy at that load on the sized cluster:\n")
    for policy in ("first_fit", "least_loaded"):
        report = ClusterSimulator(
            num_nodes=nodes,
            profiles=PROFILES,
            mean_interarrival=0.1,
            placement_policy=policy,
        ).run(horizon=50.0)
        print(
            f"   {policy:12s}: acceptance {report.acceptance_rate:.1%}, "
            f"gold {report.class_acceptance_rate('gold'):.1%}, "
            f"counter-offers {report.counter_offers}"
        )


if __name__ == "__main__":
    main()
